"""RkNN queries on directed networks (paper Section 7 future work).

In a directed network the distance is asymmetric, so
``RkNN(q) = {p | d(p -> q) <= d(p -> p_k(p))}`` with every distance
measured *from* the data point.  The undirected machinery adapts as
follows:

* the main traversal expands **backwards** from the query over incoming
  arcs, visiting nodes in ascending ``d(n -> q)`` -- the reverse
  expansion enumerates exactly the nodes that can reach the query;
* Lemma 1 becomes: if ``k`` points ``x`` satisfy
  ``d(n -> x) < d(n -> q)``, no point beyond ``n`` (whose shortest path
  to the query passes through ``n``) can be a reverse neighbor, because
  ``d(p -> x) <= d(p -> n) + d(n -> x) < d(p -> n) + d(n -> q) = d(p -> q)``.
  The prune test is a **forward** range-NN probe from ``n``.  One
  exception survives the argument: when the candidate beyond ``n`` *is*
  one of the ``k`` witnesses, that witness does not count against it (a
  point is never its own competitor), so the witnesses themselves are
  verified as candidates before the node is pruned -- exactly like the
  undirected eager algorithm, whose probes double as candidate
  discovery;
* verification expands **forwards** from a candidate point until the
  query is met, counting points that are strictly closer.

Candidates are the points residing on backward-visited nodes: a point
that cannot reach the query is never a reverse neighbor, and a point
whose node pops at an inflated distance (its true backward paths were
pruned) is disqualified by the directed Lemma 1, so the exact pop
distance ``d(p -> q)`` is available whenever it matters.

Unlike the undirected case, lazy evaluation does not transfer: a
verification discovers forward distances ``d(p -> m)``, which say
nothing about ``d(m -> p)``, so discovered points cannot prune the
backward traversal.  The module therefore provides ``eager``,
``eager-m`` (whose verification collapses to a single list read) and
the ``naive`` full backward sweep as the baseline.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import AbstractSet

from repro.core.materialize import MaterializedKNN
from repro.core.numeric import inflate_bound, strictly_less
from repro.core.pq import CountingHeap
from repro.errors import QueryError
from repro.points.points import NodePointSet
from repro.storage.disk_directed import DiskDiGraph
from repro.storage.stats import CostTracker

_EMPTY: frozenset[int] = frozenset()

#: Methods accepted by :func:`directed_rknn`.
METHODS = ("eager", "eager-m", "naive")


class DirectedView:
    """Query-time access to a disk-resident directed network."""

    def __init__(
        self,
        disk: DiskDiGraph,
        points: NodePointSet,
        tracker: CostTracker,
    ):
        self.disk = disk
        self.points = points
        self.tracker = tracker

    @property
    def num_nodes(self) -> int:
        return self.disk.num_nodes

    def out_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        return self.disk.out_neighbors(node)

    def in_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        return self.disk.in_neighbors(node)

    def point_at(self, node: int) -> int | None:
        return self.points.point_at(node)

    def node_of(self, pid: int) -> int:
        return self.points.node_of(pid)


def directed_knn(
    view: DirectedView,
    source: int,
    k: int,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[tuple[int, float]]:
    """The k nearest points *from* ``source`` (ascending ``d(source -> x)``)."""
    return directed_range_nn(view, source, k, math.inf, exclude)


def directed_range_nn(
    view: DirectedView,
    source: int,
    k: int,
    radius: float,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[tuple[int, float]]:
    """Forward range-NN: up to ``k`` points with ``d(source -> x)``
    strictly below ``radius``."""
    view.tracker.range_nn_calls += 1
    result: list[tuple[int, float]] = []
    if k <= 0 or radius <= 0:
        return result
    heap = CountingHeap(view.tracker)
    heap.push(0.0, source)
    visited: set[int] = set()
    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        if not strictly_less(dist, radius):
            break
        visited.add(node)
        view.tracker.nodes_visited += 1
        pid = view.point_at(node)
        if pid is not None and pid not in exclude:
            result.append((pid, dist))
            if len(result) == k:
                break
        neighbors = view.out_neighbors(node)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in visited:
                heap.push(dist + weight, nbr)
    return result


def directed_verify(
    view: DirectedView,
    pid: int,
    k: int,
    query_node: int,
    bound: float,
    exclude: AbstractSet[int] = _EMPTY,
) -> bool:
    """Forward verification: is the query among ``p``'s k nearest
    (by ``d(p -> .)``) points?  ``bound`` upper-bounds ``d(p -> q)``."""
    view.tracker.verifications += 1
    bound = inflate_bound(bound)
    heap = CountingHeap(view.tracker)
    heap.push(0.0, view.node_of(pid))
    visited: set[int] = set()
    point_dists: list[float] = []
    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        if dist > bound:
            break
        visited.add(node)
        view.tracker.nodes_visited += 1
        strictly_closer = bisect_left(point_dists, dist)
        if node == query_node:
            return strictly_closer < k
        if strictly_closer >= k:
            return False
        other = view.point_at(node)
        if other is not None and other != pid and other not in exclude:
            insort(point_dists, dist)
        neighbors = view.out_neighbors(node)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in visited:
                ndist = dist + weight
                if ndist <= bound:
                    heap.push(ndist, nbr)
    return False


def directed_all_nn(
    view: DirectedView,
    capacity: int,
) -> dict[int, list[tuple[int, float]]]:
    """Materialize, per node ``n``, its ``capacity`` nearest points by
    the *forward* distance ``d(n -> x)``.

    A single multi-source **backward** expansion from every point
    (incoming arcs relax ``d(n -> x) = w(n, m) + d(m -> x)``), the
    directed counterpart of the paper's all-NN (Fig. 8).
    """
    heap = CountingHeap(view.tracker)
    for pid, node in view.points.items():
        heap.push(0.0, (node, pid))
    lists: dict[int, list[tuple[int, float]]] = {}
    closed: set[tuple[int, int]] = set()
    while heap:
        dist, (node, pid) = heap.pop()
        if (node, pid) in closed:
            continue
        closed.add((node, pid))
        entries = lists.setdefault(node, [])
        if len(entries) >= capacity:
            continue
        entries.append((pid, dist))
        neighbors = view.in_neighbors(node)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if (nbr, pid) not in closed and len(lists.get(nbr, ())) < capacity:
                heap.push(dist + weight, (nbr, pid))
    return lists


def directed_rknn(
    view: DirectedView,
    query_node: int,
    k: int = 1,
    method: str = "eager",
    materialized: MaterializedKNN | None = None,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Directed monochromatic RkNN of a query located on a node."""
    if method == "eager":
        return _directed_eager(view, query_node, k, exclude)
    if method == "eager-m":
        if materialized is None:
            raise QueryError("method 'eager-m' needs materialized K-NN lists")
        return _directed_eager_m(view, materialized, query_node, k, exclude)
    if method == "naive":
        return _directed_naive(view, query_node, k, exclude)
    raise QueryError(f"unknown method {method!r}; choose one of {METHODS}")


def _directed_eager(
    view: DirectedView,
    query_node: int,
    k: int,
    exclude: AbstractSet[int],
) -> list[int]:
    heap = CountingHeap(view.tracker)
    heap.push(0.0, query_node)
    visited: set[int] = set()
    checked: set[int] = set()  # points already verified
    result: list[int] = []
    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        visited.add(node)
        view.tracker.nodes_visited += 1
        pid = view.point_at(node)
        if pid is not None and pid not in exclude and pid not in checked:
            checked.add(pid)
            # dist is d(p -> q) (exact whenever p can qualify)
            if directed_verify(view, pid, k, query_node, dist, exclude):
                result.append(pid)
        closer = directed_range_nn(view, node, k, dist, exclude)
        if len(closer) >= k:
            # Directed Lemma 1: beyond this node, only the witnesses
            # themselves can still qualify (a point never counts
            # against itself) -- verify them, then prune.
            for wpid, _ in closer:
                if wpid not in checked:
                    checked.add(wpid)
                    if directed_verify(view, wpid, k, query_node,
                                       math.inf, exclude):
                        result.append(wpid)
            continue
        neighbors = view.in_neighbors(node)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in visited:
                heap.push(dist + weight, nbr)
    return sorted(result)


def _directed_eager_m(
    view: DirectedView,
    materialized: MaterializedKNN,
    query_node: int,
    k: int,
    exclude: AbstractSet[int],
) -> list[int]:
    if k > materialized.capacity:
        raise QueryError(
            f"k={k} exceeds the materialized capacity K={materialized.capacity}"
        )
    heap = CountingHeap(view.tracker)
    heap.push(0.0, query_node)
    visited: set[int] = set()
    checked: set[int] = set()  # points already verified
    result: list[int] = []
    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        visited.add(node)
        view.tracker.nodes_visited += 1
        raw = materialized.get(node)
        entries = [(p, d) for p, d in raw if p not in exclude]
        pid = view.point_at(node)
        if pid is not None and pid not in exclude and pid not in checked:
            checked.add(pid)
            if _list_verify(view, materialized, raw, entries, pid, k,
                            query_node, dist, exclude):
                result.append(pid)
        closer = [e for e in entries if strictly_less(e[1], dist)]
        if len(closer) >= k:
            # same witness exception as _directed_eager: a candidate
            # beyond this node escapes the k witnesses only by being
            # one of them, so verify each witness before pruning
            for wpid, _ in closer:
                if wpid not in checked:
                    checked.add(wpid)
                    if _witness_qualifies(view, materialized, wpid, k,
                                          query_node, exclude):
                        result.append(wpid)
            continue
        neighbors = view.in_neighbors(node)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in visited:
                heap.push(dist + weight, nbr)
    return sorted(result)


def _witness_qualifies(
    view: DirectedView,
    materialized: MaterializedKNN,
    pid: int,
    k: int,
    query_node: int,
    exclude: AbstractSet[int],
) -> bool:
    """Verify a pruning witness as a candidate (no known ``d(p -> q)``).

    The witness's own list yields the exact k-th-competitor distance,
    which bounds the forward verification expansion; a truncated or
    exclusion-shortened list falls back to an unbounded expansion.
    """
    raw = materialized.get(view.node_of(pid))
    others = [e for e in raw if e[0] != pid and e[0] not in exclude]
    bound = others[k - 1][1] if len(others) >= k else math.inf
    return directed_verify(view, pid, k, query_node, bound, exclude)


def _list_verify(
    view: DirectedView,
    materialized: MaterializedKNN,
    raw: tuple[tuple[int, float], ...],
    entries: list[tuple[int, float]],
    pid: int,
    k: int,
    query_node: int,
    dist: float,
    exclude: AbstractSet[int],
) -> bool:
    """Verification through the candidate's own list.

    The list of ``p``'s node stores ``d(n_p -> x) = d(p -> x)`` exactly,
    so ``p`` qualifies iff ``d(p -> q) <= t`` with ``t`` the k-th other
    entry; no expansion needed unless exclusions truncate the list.
    """
    others = [e for e in entries if e[0] != pid]
    if len(others) >= k:
        threshold = others[k - 1][1]
    elif len(raw) < materialized.capacity:
        threshold = math.inf  # untruncated: fewer than k others exist
    else:
        return directed_verify(view, pid, k, query_node, dist, exclude)
    return not strictly_less(threshold, dist)


def _directed_naive(
    view: DirectedView,
    query_node: int,
    k: int,
    exclude: AbstractSet[int],
) -> list[int]:
    """Backward sweep without pruning: the directed baseline."""
    heap = CountingHeap(view.tracker)
    heap.push(0.0, query_node)
    visited: set[int] = set()
    result: list[int] = []
    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        visited.add(node)
        view.tracker.nodes_visited += 1
        pid = view.point_at(node)
        if pid is not None and pid not in exclude:
            if directed_verify(view, pid, k, query_node, dist, exclude):
                result.append(pid)
        neighbors = view.in_neighbors(node)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in visited:
                heap.push(dist + weight, nbr)
    return sorted(result)


def brute_force_directed_rknn(
    graph,
    points: NodePointSet,
    query_node: int,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Directed oracle: full forward Dijkstra per data point."""
    import heapq

    def forward_dists(source: int, cutoff: float) -> dict[int, float]:
        dists: dict[int, float] = {}
        heap = [(0.0, source)]
        while heap:
            dist, node = heapq.heappop(heap)
            if node in dists or dist > cutoff:
                continue
            dists[node] = dist
            for nbr, weight in graph.out_neighbors(node):
                if nbr not in dists:
                    heapq.heappush(heap, (dist + weight, nbr))
        return dists

    result = []
    for pid, node in points.items():
        if pid in exclude:
            continue
        reach = forward_dists(node, math.inf)
        dist_pq = reach.get(query_node)
        if dist_pq is None:
            continue
        strictly_closer = 0
        for other, onode in points.items():
            if other == pid or other in exclude:
                continue
            dist = reach.get(onode)
            if dist is not None and dist < dist_pq:
                strictly_closer += 1
                if strictly_closer >= k:
                    break
        if strictly_closer < k:
            result.append(pid)
    return sorted(result)


def directed_insert(
    view: DirectedView,
    materialized: MaterializedKNN,
    pid: int,
    node: int,
) -> int:
    """Propagate a new point into the forward K-NN lists.

    Mirror image of the undirected insertion (Section 4.1): the new
    point improves ``d(n -> p)``, which relaxes along *incoming* arcs.
    Returns the number of updated nodes.
    """
    heap = CountingHeap(view.tracker)
    heap.push(0.0, node)
    visited: set[int] = set()
    updated = 0
    while heap:
        dist, current = heap.pop()
        if current in visited:
            continue
        visited.add(current)
        view.tracker.nodes_visited += 1
        entries = list(materialized.get(current))
        if any(existing == pid for existing, _ in entries):
            raise QueryError(f"point {pid} already materialized")
        if len(entries) >= materialized.capacity and dist >= entries[-1][1]:
            continue
        insort(entries, (pid, dist), key=lambda item: item[1])
        del entries[materialized.capacity:]
        materialized.store.put(current, entries)
        updated += 1
        neighbors = view.in_neighbors(current)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in visited:
                heap.push(dist + weight, nbr)
    return updated


def directed_delete(
    view: DirectedView,
    materialized: MaterializedKNN,
    pid: int,
    node: int,
) -> int:
    """Remove a point from the forward K-NN lists and refill them.

    Mirror image of the undirected deletion (Fig. 10): step 1 expands
    backwards from the deleted point's node, dropping it from every
    affected list and stopping at border nodes; step 2 refills the
    affected lists from the borders' entries and the affected nodes'
    survivors, relaying along incoming arcs.  Returns the number of
    affected nodes.
    """
    capacity = materialized.capacity
    heap = CountingHeap(view.tracker)
    heap.push(0.0, node)
    visited: set[int] = set()
    affected: dict[int, list[tuple[int, float]]] = {}
    while heap:
        dist, current = heap.pop()
        if current in visited:
            continue
        visited.add(current)
        view.tracker.nodes_visited += 1
        entries = list(materialized.get(current))
        survivors = [entry for entry in entries if entry[0] != pid]
        if len(survivors) == len(entries):
            continue  # border: list unchanged, do not expand
        affected[current] = survivors
        neighbors = view.in_neighbors(current)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in visited:
                heap.push(dist + weight, nbr)

    refill = CountingHeap(view.tracker)
    for current, survivors in affected.items():
        for other, dist in survivors:
            refill.push(dist, (current, other))
        neighbors = view.out_neighbors(current)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr in affected:
                continue
            for other, dist in materialized.get(nbr):
                if other != pid:
                    refill.push(dist + weight, (current, other))
    closed: set[tuple[int, int]] = set()
    while refill:
        dist, (current, other) = refill.pop()
        if (current, other) in closed:
            continue
        closed.add((current, other))
        entries = affected[current]
        known = any(existing == other for existing, _ in entries)
        if not known:
            if len(entries) >= capacity:
                continue
            entries.append((other, dist))
        neighbors = view.in_neighbors(current)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr in affected and (nbr, other) not in closed:
                refill.push(dist + weight, (nbr, other))
    for current, entries in affected.items():
        materialized.store.put(current, entries)
    return len(affected)
