"""In-route nearest-neighbor queries (paper Section 2.2, ref. [16]).

Shekhar & Yoo's IRNN problem: a traveler follows a fixed route and
wants, *at every route node*, the k nearest data points -- e.g. the
nearest fuel stops available at each leg of a trip.  This differs from
the paper's continuous RkNN (Section 5.1), which unions reverse
results over the route; here each route node gets its own forward
kNN answer.

Two query shapes:

* :func:`in_route_knn` -- exact ``(point, distance)`` lists, one kNN
  expansion per distinct route node (the per-node distances genuinely
  differ, so each node pays its own -- local -- expansion);
* :func:`in_route_nn_ids` -- the k nearest *identities* per route
  node, with [16]-style certification: an anchor node's (k+1)-NN
  expansion yields a safety margin ``d_{k+1} - d_k``, and while twice
  the accumulated hop distance stays below that margin the top-k set
  provably cannot change, so en-route nodes are answered without any
  expansion.  Re-anchoring happens only when the certificate expires.

The certificate: walking distance ``W`` from anchor ``a`` bounds every
point's distance change by ``W`` (triangle inequality), so
``d(b, p_i) <= d(a, p_i) + W <= d_k + W`` for the top-k and
``d(b, q) >= d(a, q) - W >= d_{k+1} - W`` for every other point;
``2W < d_{k+1} - d_k`` keeps the two ranges strictly separated.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Sequence

from repro.core.network import NetworkView
from repro.core.nn import knn
from repro.core.numeric import strictly_less
from repro.errors import QueryError

_EMPTY: frozenset[int] = frozenset()

#: One route stop: the node and its k nearest points (ascending).
RouteStop = tuple[int, list[tuple[int, float]]]

#: One identity-only route stop: the node and its k nearest point ids.
RouteStopIds = tuple[int, frozenset[int]]


def _validate_route(view: NetworkView, route: Sequence[int], k: int) -> None:
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if not route:
        raise QueryError("the route must contain at least one node")
    for node in route:
        if not 0 <= node < view.num_nodes:
            raise QueryError(f"route node {node} out of range")
    for a, b in zip(route, route[1:]):
        if a != b and all(nbr != b for nbr, _ in view.neighbors(a)):
            raise QueryError(f"route nodes {a} and {b} are not adjacent")


def in_route_knn(
    view: NetworkView,
    route: Sequence[int],
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[RouteStop]:
    """Exact per-node kNN lists along a route.

    Repeated route nodes are answered from a local cache; every
    distinct node runs one (locally terminating) kNN expansion.
    """
    _validate_route(view, route, k)
    results: list[RouteStop] = []
    cache: dict[int, list[tuple[int, float]]] = {}
    for node in route:
        neighbors = cache.get(node)
        if neighbors is None:
            neighbors = knn(view, node, k, exclude)
            cache[node] = neighbors
        results.append((node, neighbors))
    return results


def in_route_nn_ids(
    view: NetworkView,
    route: Sequence[int],
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[RouteStopIds]:
    """Per-node k-nearest *identity sets* with certified skipping.

    Returns, for every route node, the set of its k nearest point ids
    (fewer when fewer points are reachable).  Ties at the k-th
    distance force a re-anchor, so the returned set is always the
    unique strict top-k when one exists and an arbitrary-but-correct
    expansion answer otherwise (matching :func:`in_route_knn`).
    """
    _validate_route(view, route, k)
    results: list[RouteStopIds] = []
    anchor_set: frozenset[int] = frozenset()
    margin = -math.inf   # d_{k+1} - d_k at the current anchor
    walked = 0.0         # accumulated hop distance since the anchor
    previous: int | None = None
    for node in route:
        if previous is not None and node != previous:
            walked += _hop_weight(view, previous, node)
        if previous is None or not strictly_less(2.0 * walked, margin):
            neighbors = knn(view, node, k + 1, exclude)
            top = neighbors[:k]
            anchor_set = frozenset(pid for pid, _ in top)
            if len(neighbors) <= k:
                margin = math.inf  # no (k+1)-th point can ever intrude
            else:
                margin = neighbors[k][1] - top[-1][1]
            walked = 0.0
        results.append((node, anchor_set))
        previous = node
    return results


def _hop_weight(view: NetworkView, u: int, v: int) -> float:
    for nbr, weight in view.neighbors(u):
        if nbr == v:
            return weight
    raise QueryError(f"route nodes {u} and {v} are not adjacent")
