"""Continuous RkNN queries along routes (Section 5.1).

For objects moving on a graph the paper replaces Euclidean continuous
queries by route queries: given a route ``r = <n_1, ..., n_r>`` (a walk
along edges), ``cRkNN(r)`` is the union of the RkNN sets of the route's
nodes.  All four algorithms support routes natively by seeding their
heaps with every route node at distance 0, which realizes the route
distance ``d(r, n) = min_i d(n_i, n)``; this module adds route
validation and a method dispatcher.
"""

from __future__ import annotations

from typing import AbstractSet, Sequence

from repro.core.eager import eager_rknn_route
from repro.core.eager_m import eager_m_rknn_route
from repro.core.lazy import lazy_rknn_route
from repro.core.lazy_ep import lazy_ep_rknn_route
from repro.core.materialize import MaterializedKNN
from repro.core.network import NetworkView
from repro.errors import QueryError

_EMPTY: frozenset[int] = frozenset()

#: Methods accepted by :func:`continuous_rknn`.
METHODS = ("eager", "lazy", "eager-m", "lazy-ep")


def validate_route(view: NetworkView, route: Sequence[int]) -> None:
    """Check that ``route`` is a walk: consecutive nodes share an edge.

    Raises :class:`QueryError` on an empty route, an out-of-range node
    or a missing edge.  Reads adjacency lists through the buffer (the
    route is part of the query and its inspection is charged work).
    """
    if not route:
        raise QueryError("route must contain at least one node")
    for node in route:
        if not 0 <= node < view.num_nodes:
            raise QueryError(f"route node {node} out of range")
    for prev, nxt in zip(route, route[1:]):
        if prev == nxt:
            raise QueryError(f"route repeats node {prev} consecutively")
        if all(nbr != nxt for nbr, _ in view.neighbors(prev)):
            raise QueryError(f"route hop ({prev}, {nxt}) is not an edge")


def continuous_rknn(
    view: NetworkView,
    route: Sequence[int],
    k: int = 1,
    method: str = "eager",
    *,
    materialized: MaterializedKNN | None = None,
    exclude: AbstractSet[int] = _EMPTY,
    validate: bool = True,
) -> list[int]:
    """Continuous RkNN of every node on ``route`` (their union).

    ``method`` selects the processing algorithm; ``eager-m`` requires a
    ``materialized`` K-NN structure.
    """
    if validate:
        validate_route(view, route)
    if method == "eager":
        return eager_rknn_route(view, route, k, exclude)
    if method == "lazy":
        return lazy_rknn_route(view, route, k, exclude)
    if method == "lazy-ep":
        return lazy_ep_rknn_route(view, route, k, exclude)
    if method == "eager-m":
        if materialized is None:
            raise QueryError("method 'eager-m' needs materialized K-NN lists")
        return eager_m_rknn_route(view, materialized, route, k, exclude)
    raise QueryError(f"unknown method {method!r}; choose one of {METHODS}")
