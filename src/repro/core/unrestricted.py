"""RkNN processing in unrestricted networks (Section 5.2).

In an unrestricted network data points lie anywhere on edges, addressed
by ``<n_i, n_j, pos>`` triplets, and the query itself may be a node or
an edge position.  Distances combine node-mediated paths with the
*direct* same-edge segment (paper's ``d_L``), and the point file is a
separate paged store (Fig. 14b).

All four algorithms are provided.  The discovery of candidate points
differs from the paper's restricted setting in one deliberate way: in
addition to the range-NN probes, every non-pruned node scans the points
on its incident edges and submits them for verification.  This closes a
completeness gap of probe-only discovery -- a point just beyond a node
``n`` with ``d(n, p) >= d(n, q)`` is returned by no probe, yet can still
be a reverse neighbor (its shortest path to the query leaves through
``n``).  Since every node on a reverse neighbor's shortest path to the
query is unprunable under Lemma 1, scanning incident edges of non-pruned
nodes discovers every result; verification remains exact, so extra
candidates only cost work, never correctness.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import AbstractSet, Callable, Sequence

from repro.core.lazy import _LazyState
from repro.core.materialize import MaterializedKNN
from repro.core.network import NetworkView
from repro.core.numeric import inflate_bound, strictly_less, tie_threshold
from repro.core.pq import CountingHeap
from repro.errors import QueryError
from repro.graph.graph import edge_key

_EMPTY: frozenset[int] = frozenset()

#: A location: a node id, or a canonical ``(u, v, pos)`` edge triplet.
Location = int | tuple[int, int, float]

_NODE = 0
_POINT = 1


# ---------------------------------------------------------------------------
# location helpers
# ---------------------------------------------------------------------------

def normalize_location(location: Location) -> Location:
    """Canonicalize an edge location to ``u < v`` with ``pos`` from ``u``."""
    if isinstance(location, int):
        return location
    u, v, pos = location
    if u == v:
        raise QueryError(f"location ({u}, {v}, {pos}) lies on a self-loop")
    if pos < 0:
        raise QueryError(f"negative edge offset {pos}")
    if (u, v) != edge_key(u, v):
        raise QueryError(
            f"pass edge locations in canonical order ({min(u, v)}, {max(u, v)}) "
            f"with the offset measured from node {min(u, v)}"
        )
    return (u, v, float(pos))


def location_seeds(view: NetworkView, location: Location) -> list[tuple[int, float]]:
    """Node seeds ``(node, offset)`` representing a location."""
    if isinstance(location, int):
        return [(location, 0.0)]
    u, v, pos = location
    weight = view.edge_weight(u, v)
    if pos > weight:
        raise QueryError(f"offset {pos} exceeds weight {weight} of edge ({u}, {v})")
    return [(u, pos), (v, weight - pos)]


def direct_distance(loc1: Location, loc2: Location) -> float | None:
    """Same-edge direct distance, or ``None`` for different edges/nodes."""
    if isinstance(loc1, int) or isinstance(loc2, int):
        return None
    if (loc1[0], loc1[1]) != (loc2[0], loc2[1]):
        return None
    return abs(loc1[2] - loc2[2])


def _offset_from(node: int, other: int, weight: float, pos: float) -> float:
    """Distance along the edge from ``node`` to a point at offset ``pos``
    (``pos`` is measured from the smaller endpoint)."""
    return pos if node < other else weight - pos


# ---------------------------------------------------------------------------
# primitives: kNN / range-NN / verification
# ---------------------------------------------------------------------------

def unrestricted_range_nn(
    view: NetworkView,
    source: int,
    k: int,
    radius: float,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[tuple[int, float]]:
    """``range-NN`` from a node over edge points (paper Section 5.2).

    Points on the edges incident to a de-heaped node re-enter the heap
    as point entries, so points pop in ascending distance order and the
    same point discovered over two paths is reported once, at its true
    distance.  Returns up to ``k`` points strictly closer than
    ``radius``.
    """
    view.tracker.range_nn_calls += 1
    if k <= 0 or radius <= 0:
        return []
    return _expand_points(view, [(source, 0.0)], [], k, radius, exclude)


def unrestricted_knn(
    view: NetworkView,
    location: Location,
    k: int,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[tuple[int, float]]:
    """The k nearest edge points of an arbitrary location."""
    location = normalize_location(location)
    point_seeds: list[tuple[int, float]] = []
    if not isinstance(location, int):
        u, v, pos = location
        for pid, ppos in view.edge_points(u, v):
            if pid not in exclude:
                point_seeds.append((pid, abs(pos - ppos)))
    return _expand_points(
        view, location_seeds(view, location), point_seeds, k, math.inf, exclude
    )


def _expand_points(
    view: NetworkView,
    node_seeds: Sequence[tuple[int, float]],
    point_seeds: Sequence[tuple[int, float]],
    k: int,
    radius: float,
    exclude: AbstractSet[int],
) -> list[tuple[int, float]]:
    heap = CountingHeap(view.tracker)
    for node, dist in node_seeds:
        heap.push(dist, (_NODE, node))
    for pid, dist in point_seeds:
        if dist < radius:
            heap.push(dist, (_POINT, pid))
    seen_nodes: set[int] = set()
    seen_points: set[int] = set()
    result: list[tuple[int, float]] = []
    while heap:
        dist, (kind, obj) = heap.pop()
        if not strictly_less(dist, radius):
            break
        if kind == _POINT:
            if obj in seen_points:
                continue
            seen_points.add(obj)
            result.append((obj, dist))
            if len(result) == k:
                break
            continue
        if obj in seen_nodes:
            continue
        seen_nodes.add(obj)
        view.tracker.nodes_visited += 1
        adjacency = view.neighbors(obj)
        view.tracker.edges_expanded += len(adjacency)
        for nbr, weight in adjacency:
            if view.has_points_on(obj, nbr):
                for pid, pos in view.edge_points(obj, nbr):
                    if pid in exclude or pid in seen_points:
                        continue
                    reach = dist + _offset_from(obj, nbr, weight, pos)
                    if strictly_less(reach, radius):
                        heap.push(reach, (_POINT, pid))
            if nbr not in seen_nodes:
                ndist = dist + weight
                if strictly_less(ndist, radius):
                    heap.push(ndist, (_NODE, nbr))
    return result


def unrestricted_verify(
    view: NetworkView,
    count_view: NetworkView,
    p_loc: Location,
    skip_pid: int | None,
    k: int,
    target_nodes: AbstractSet[int],
    target_loc: Location | None,
    bound: float,
    exclude: AbstractSet[int] = _EMPTY,
    on_visit: Callable[[int, float], None] | None = None,
) -> bool:
    """Exact verification: is the query among the k NNs of a point?

    Expands around ``p_loc``; ``count_view`` supplies the points that
    compete with the query (equal to ``view`` for monochromatic, the
    reference view for bichromatic queries).  The query is "met" when a
    ``target_node`` is de-heaped, when an endpoint of ``target_loc``
    tightens the node-mediated bound, or via the same-edge direct
    segment; the smallest of these is the exact ``d(p, q)``.  ``bound``
    is any upper bound of ``d(p, q)``.  ``on_visit`` is the lazy
    algorithm's counting hook, called for every node the verification
    de-heaps.

    Returns ``True`` iff fewer than ``k`` counted points lie strictly
    closer to ``p`` than the query.
    """
    view.tracker.verifications += 1
    bound = inflate_bound(bound)  # survive fp noise when d(p, q) == bound
    p_loc = normalize_location(p_loc)
    best_q = math.inf
    if target_loc is not None:
        target_loc = normalize_location(target_loc)
        direct = direct_distance(p_loc, target_loc)
        if direct is not None:
            best_q = direct
        target_u, target_v, target_pos = target_loc
        target_weight = view.edge_weight(target_u, target_v)
    heap = CountingHeap(view.tracker)
    for node, offset in location_seeds(view, p_loc):
        heap.push(offset, (_NODE, node))
    if not isinstance(p_loc, int):
        u, v, pos = p_loc
        for pid, ppos in count_view.edge_points(u, v):
            if pid != skip_pid and pid not in exclude:
                heap.push(abs(pos - ppos), (_POINT, pid))
    seen_nodes: set[int] = set()
    seen_points: set[int] = set()
    point_dists: list[float] = []
    while heap:
        dist, (kind, obj) = heap.pop()
        if dist >= best_q or dist > bound:
            break
        if bisect_left(point_dists, tie_threshold(dist)) >= k:
            # k points strictly below every remaining candidate d(p, q)
            return False
        if kind == _POINT:
            if obj not in seen_points:
                seen_points.add(obj)
                insort(point_dists, dist)
            continue
        if obj in seen_nodes:
            continue
        seen_nodes.add(obj)
        view.tracker.nodes_visited += 1
        if on_visit is not None:
            on_visit(obj, dist)
        if obj in target_nodes:
            best_q = min(best_q, dist)
            continue
        if target_loc is not None:
            if obj == target_u:
                best_q = min(best_q, dist + target_pos)
            elif obj == target_v:
                best_q = min(best_q, dist + (target_weight - target_pos))
        limit = min(best_q, bound)
        adjacency = view.neighbors(obj)
        view.tracker.edges_expanded += len(adjacency)
        for nbr, weight in adjacency:
            if count_view.has_points_on(obj, nbr):
                for pid, pos in count_view.edge_points(obj, nbr):
                    if pid == skip_pid or pid in exclude or pid in seen_points:
                        continue
                    reach = dist + _offset_from(obj, nbr, weight, pos)
                    if reach < limit:
                        heap.push(reach, (_POINT, pid))
            if nbr not in seen_nodes:
                ndist = dist + weight
                if ndist <= limit:
                    heap.push(ndist, (_NODE, nbr))
    if math.isinf(best_q):
        return False
    return bisect_left(point_dists, tie_threshold(best_q)) < k


# ---------------------------------------------------------------------------
# query preparation shared by the algorithms
# ---------------------------------------------------------------------------

class _QuerySpec:
    """Seeds and targets derived from a query location or route."""

    def __init__(
        self,
        view: NetworkView,
        query: Location | None,
        route: Sequence[int] | None,
    ):
        if (query is None) == (route is None):
            raise QueryError("pass exactly one of query location or route")
        if route is not None:
            self.target_nodes: frozenset[int] = frozenset(route)
            self.target_loc: Location | None = None
            self.seeds = [(node, 0.0) for node in self.target_nodes]
            self.query_edge_points: list[tuple[int, float]] = []
            return
        query = normalize_location(query)
        if isinstance(query, int):
            self.target_nodes = frozenset((query,))
            self.target_loc = None
            self.seeds = [(query, 0.0)]
            self.query_edge_points = []
        else:
            self.target_nodes = frozenset()
            self.target_loc = query
            self.seeds = location_seeds(view, query)
            u, v, pos = query
            self.query_edge_points = [
                (pid, abs(pos - ppos)) for pid, ppos in view.edge_points(u, v)
            ]


# ---------------------------------------------------------------------------
# eager
# ---------------------------------------------------------------------------

def unrestricted_eager(
    view: NetworkView,
    query: Location | None = None,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
    route: Sequence[int] | None = None,
) -> list[int]:
    """Eager RkNN over edge points (single location or route query)."""
    spec = _QuerySpec(view, query, route)
    heap = CountingHeap(view.tracker)
    for node, dist in spec.seeds:
        heap.push(dist, node)
    visited: set[int] = set()
    checked: set[int] = set()
    result: list[int] = []

    def consider(pid: int, bound: float) -> None:
        if pid in exclude or pid in checked:
            return
        checked.add(pid)
        if unrestricted_verify(
            view, view, view.point_location(pid), pid, k,
            spec.target_nodes, spec.target_loc, bound, exclude,
        ):
            result.append(pid)

    for pid, bound in spec.query_edge_points:
        consider(pid, bound)

    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        visited.add(node)
        view.tracker.nodes_visited += 1
        found = unrestricted_range_nn(view, node, k, dist, exclude)
        for pid, pdist in found:
            consider(pid, dist + pdist)
        if len(found) < k:
            neighbors = view.neighbors(node)
            view.tracker.edges_expanded += len(neighbors)
            for nbr, weight in neighbors:
                if view.has_points_on(node, nbr):
                    for pid, pos in view.edge_points(node, nbr):
                        consider(pid, dist + _offset_from(node, nbr, weight, pos))
                if nbr not in visited:
                    heap.push(dist + weight, nbr)
    return sorted(result)


# ---------------------------------------------------------------------------
# eager-M
# ---------------------------------------------------------------------------

def unrestricted_eager_m(
    view: NetworkView,
    materialized: MaterializedKNN,
    query: Location | None = None,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
    route: Sequence[int] | None = None,
) -> list[int]:
    """Eager-M over edge points: probes come from materialized lists and
    candidate verification is short-circuited through the k-th-neighbor
    distance computed by merging the lists of the candidate's edge
    endpoints (paper Section 5.2, last paragraph of 4.1)."""
    if k > materialized.capacity:
        raise QueryError(
            f"k={k} exceeds the materialized capacity K={materialized.capacity}"
        )
    spec = _QuerySpec(view, query, route)
    heap = CountingHeap(view.tracker)
    for node, dist in spec.seeds:
        heap.push(dist, node)
    visited: set[int] = set()
    checked: set[int] = set()
    result: list[int] = []

    def consider(pid: int, bound: float) -> None:
        if pid in exclude or pid in checked:
            return
        checked.add(pid)
        threshold = _kth_other_distance(view, materialized, pid, k, exclude)
        if threshold is not None and bound <= threshold:
            result.append(pid)
            return
        if unrestricted_verify(
            view, view, view.point_location(pid), pid, k,
            spec.target_nodes, spec.target_loc, bound, exclude,
        ):
            result.append(pid)

    for pid, bound in spec.query_edge_points:
        consider(pid, bound)

    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        visited.add(node)
        view.tracker.nodes_visited += 1
        entries = [
            (pid, pdist)
            for pid, pdist in materialized.get(node)
            if pid not in exclude
        ]
        candidates = [(pid, pdist) for pid, pdist in entries if pdist < dist][:k]
        for pid, pdist in candidates:
            consider(pid, dist + pdist)
        if len(candidates) < k:
            neighbors = view.neighbors(node)
            view.tracker.edges_expanded += len(neighbors)
            for nbr, weight in neighbors:
                if view.has_points_on(node, nbr):
                    for pid, pos in view.edge_points(node, nbr):
                        consider(pid, dist + _offset_from(node, nbr, weight, pos))
                if nbr not in visited:
                    heap.push(dist + weight, nbr)
    return sorted(result)


def _kth_other_distance(
    view: NetworkView,
    materialized: MaterializedKNN,
    pid: int,
    k: int,
    exclude: AbstractSet[int],
) -> float | None:
    """Exact distance from point ``pid`` to its k-th *other* neighbor,
    derived from the materialized lists of its edge's endpoints plus the
    points sharing its edge.  Returns ``None`` when the truncated lists
    cannot answer exactly (the caller then runs a verify query).

    Merging is exact: if a point's true shortest path to ``pid`` leaves
    through endpoint ``a`` but the point is absent from ``a``'s list,
    the K stored points of ``a`` are all at least as close to ``pid``,
    so the k-th merged distance (k <= K) is unaffected.
    """
    u, v, pos = view.point_location(pid)
    weight = view.edge_weight(u, v)
    merged: dict[int, float] = {}

    def offer(other: int, dist: float) -> None:
        if other != pid and other not in exclude:
            current = merged.get(other)
            if current is None or dist < current:
                merged[other] = dist

    list_u = materialized.get(u)
    list_v = materialized.get(v)
    for other, dist in list_u:
        offer(other, pos + dist)
    for other, dist in list_v:
        offer(other, (weight - pos) + dist)
    for other, opos in view.edge_points(u, v):
        offer(other, abs(pos - opos))
    distances = sorted(merged.values())
    if len(distances) >= k:
        return distances[k - 1]
    capacity = materialized.capacity
    if len(list_u) < capacity and len(list_v) < capacity:
        # Both lists are complete, so every reachable point was merged:
        # fewer than k others exist and the point always qualifies.
        return math.inf
    return None


# ---------------------------------------------------------------------------
# lazy
# ---------------------------------------------------------------------------

def unrestricted_lazy(
    view: NetworkView,
    query: Location | None = None,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
    route: Sequence[int] | None = None,
) -> list[int]:
    """Lazy RkNN over edge points.

    Pruning happens while processing edges (Section 5.2): a relaxation
    across an edge carrying ``k``-or-more points (strictly closer to the
    far endpoint than the query along that path) is suppressed, and the
    verification queries of discovered points bump per-node counters
    exactly as in the restricted algorithm.
    """
    spec = _QuerySpec(view, query, route)
    state = _LazyState(view, k)
    for node, dist in spec.seeds:
        state.heap.push(dist, node)
    checked: set[int] = set()
    result: list[int] = []

    def consider(pid: int, bound: float, frontier: float) -> None:
        if pid in exclude or pid in checked:
            return
        checked.add(pid)

        def on_visit(visited_node: int, vdist: float) -> None:
            processed_dist = state.processed.get(visited_node)
            if processed_dist is None:
                if strictly_less(vdist, frontier):
                    state.bump_count(visited_node)
            elif strictly_less(vdist, processed_dist):
                state.bump_count(visited_node)

        if unrestricted_verify(
            view, view, view.point_location(pid), pid, k,
            spec.target_nodes, spec.target_loc, bound, exclude,
            on_visit=on_visit,
        ):
            result.append(pid)

    for pid, bound in spec.query_edge_points:
        consider(pid, bound, 0.0)

    while state.heap:
        dist, _, node = state.heap.pop()
        if node in state.processed:
            continue
        state.processed[node] = dist
        view.tracker.nodes_visited += 1
        if state.count.get(node, 0) >= k:
            continue
        entry_ids: list[int] = []
        neighbors = view.neighbors(node)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            closer_on_edge = 0
            if view.has_points_on(node, nbr):
                for pid, pos in view.edge_points(node, nbr):
                    if pid in exclude:
                        continue
                    offset = _offset_from(node, nbr, weight, pos)
                    if strictly_less(weight - offset, dist + weight):
                        # strictly closer to nbr than the query would be
                        # along this relaxation (d(nbr, q) <= dist + weight)
                        closer_on_edge += 1
                    consider(pid, dist + offset, dist)
            if nbr not in state.processed and closer_on_edge < k:
                entry_ids.append(state.heap.push(dist + weight, nbr))
        if entry_ids:
            state.entries_of[node] = entry_ids
    return sorted(result)


# ---------------------------------------------------------------------------
# lazy-EP
# ---------------------------------------------------------------------------

def unrestricted_lazy_ep(
    view: NetworkView,
    query: Location | None = None,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
    route: Sequence[int] | None = None,
) -> list[int]:
    """Lazy-EP over edge points: the second heap expands discovered
    points from their edge locations and prunes the main expansion via
    each node's k-th discovered-point distance."""
    spec = _QuerySpec(view, query, route)
    heap = CountingHeap(view.tracker)
    for node, dist in spec.seeds:
        heap.push(dist, node)
    parallel = _EdgeParallelExpansion(view, k, exclude)
    visited: set[int] = set()
    checked: set[int] = set()
    result: list[int] = []

    def consider(pid: int, bound: float) -> None:
        parallel.add_point(pid)
        if pid in checked:
            return
        checked.add(pid)
        if unrestricted_verify(
            view, view, view.point_location(pid), pid, k,
            spec.target_nodes, spec.target_loc, bound, exclude,
        ):
            result.append(pid)

    for pid, bound in spec.query_edge_points:
        if pid not in exclude:
            consider(pid, bound)

    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        visited.add(node)
        view.tracker.nodes_visited += 1
        parallel.advance(dist)
        if strictly_less(parallel.kth_dist(node), dist):
            continue  # Lemma 1 via discovered points
        neighbors = view.neighbors(node)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if view.has_points_on(node, nbr):
                for pid, pos in view.edge_points(node, nbr):
                    if pid not in exclude:
                        consider(pid, dist + _offset_from(node, nbr, weight, pos))
            if nbr not in visited:
                heap.push(dist + weight, nbr)
    return sorted(result)


class _EdgeParallelExpansion:
    """Second heap of lazy-EP for edge-point networks."""

    def __init__(self, view: NetworkView, k: int, exclude: AbstractSet[int]):
        self.view = view
        self.k = k
        self.exclude = exclude
        self.heap = CountingHeap(view.tracker)
        self.closed: set[tuple[int, int]] = set()
        self.knn_dists: dict[int, list[float]] = {}
        self.discovered: set[int] = set()

    def add_point(self, pid: int) -> None:
        """Seed ``H'`` with a point the main expansion discovered.

        ``H'`` never scans for points itself: expanding only
        main-discovered (hence already-verified) points keeps Lemma 1
        pruning sound and prevents a discovery cascade through the
        network.
        """
        if pid in self.discovered or pid in self.exclude:
            return
        self.discovered.add(pid)
        for node, offset in location_seeds(self.view, self.view.point_location(pid)):
            self.heap.push(offset, (node, pid))

    def advance(self, limit: float) -> None:
        # Entries are not globally ascending over time (late-discovered
        # points re-seed H' at small distances), so the per-node lists
        # use sorted insertion with eviction of the largest entry.
        heap = self.heap
        while heap and heap.peek_distance() < limit:
            dist, (node, pid) = heap.pop()
            if (node, pid) in self.closed:
                continue
            self.closed.add((node, pid))
            dists = self.knn_dists.setdefault(node, [])
            if len(dists) >= self.k and dist >= dists[-1]:
                continue  # k discovered points at least as close: dominated
            insort(dists, dist)
            del dists[self.k:]
            neighbors = self.view.neighbors(node)
            self.view.tracker.edges_expanded += len(neighbors)
            for nbr, weight in neighbors:
                if (nbr, pid) in self.closed:
                    continue
                nbr_dists = self.knn_dists.get(nbr)
                reach = dist + weight
                if nbr_dists and len(nbr_dists) >= self.k and reach >= nbr_dists[-1]:
                    continue
                heap.push(reach, (nbr, pid))

    def kth_dist(self, node: int) -> float:
        dists = self.knn_dists.get(node)
        if dists is None or len(dists) < self.k:
            return math.inf
        return dists[self.k - 1]


# ---------------------------------------------------------------------------
# bichromatic
# ---------------------------------------------------------------------------

def unrestricted_bichromatic_eager(
    data_view: NetworkView,
    ref_view: NetworkView,
    query: Location,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Bichromatic RkNN with both point sets on edges.

    The expansion and pruning run over the reference set Q; candidate P
    points are collected from the incident edges of non-pruned nodes
    (plus the query's own edge) and verified exactly against Q.
    """
    query = normalize_location(query)
    if isinstance(query, int):
        target_nodes: frozenset[int] = frozenset((query,))
        target_loc: Location | None = None
        seeds = [(query, 0.0)]
    else:
        target_nodes = frozenset()
        target_loc = query
        seeds = location_seeds(ref_view, query)
    heap = CountingHeap(ref_view.tracker)
    for node, dist in seeds:
        heap.push(dist, node)
    visited: set[int] = set()
    checked: set[int] = set()
    result: list[int] = []

    def consider(pid: int, bound: float) -> None:
        if pid in checked:
            return
        checked.add(pid)
        if unrestricted_verify(
            ref_view, ref_view, data_view.point_location(pid), None, k,
            target_nodes, target_loc, bound, exclude,
        ):
            result.append(pid)

    if target_loc is not None:
        u, v, pos = target_loc
        for pid, ppos in data_view.edge_points(u, v):
            consider(pid, abs(pos - ppos))

    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        visited.add(node)
        ref_view.tracker.nodes_visited += 1
        closer = unrestricted_range_nn(ref_view, node, k, dist, exclude)
        if len(closer) >= k:
            continue
        neighbors = data_view.neighbors(node)
        data_view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if data_view.has_points_on(node, nbr):
                for pid, pos in data_view.edge_points(node, nbr):
                    consider(pid, dist + _offset_from(node, nbr, weight, pos))
            if nbr not in visited:
                heap.push(dist + weight, nbr)
    return sorted(result)
