"""Plain-text rendering of experiment tables and series.

Benchmarks print the same rows/series the paper's tables and figures
report, and persist them under ``benchmarks/out/`` (a scratch
directory; wall-clock numbers are machine-dependent and never
committed) so runs can be compared against the expectations recorded
in EXPERIMENTS.md.  The committed machine-independent baselines live
separately in ``benchmarks/results/BENCH_*.json`` (see
``benchmarks/emit.py``).
"""

from __future__ import annotations

import os
from typing import Mapping, Sequence

from repro.bench.chart import format_chart

Row = Mapping[str, object]


def format_figure(
    title: str,
    rows: Sequence[Row],
    group_by: str,
    series: str = "method",
    value: str = "total_s",
    log_scale: bool = True,
) -> str:
    """A paper-style figure: the data table plus an ASCII bar chart."""
    table = format_table(title, rows)
    chart = format_chart(title, rows, group_by, series, value, log_scale)
    return f"{table}\n{chart}"


def format_table(title: str, rows: Sequence[Row]) -> str:
    """Render rows (dicts sharing a key set) as an aligned text table."""
    if not rows:
        return f"{title}\n(no data)\n"
    columns = list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(_cell(row.get(col))) for row in rows))
        for col in columns
    }
    lines = [title]
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(
            " | ".join(_cell(row.get(col)).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines) + "\n"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def results_dir() -> str:
    """Directory that persists benchmark outputs (created on demand)."""
    base = os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "out"),
    )
    os.makedirs(base, exist_ok=True)
    return base


def save_report(name: str, text: str) -> str:
    """Write a rendered table to ``benchmarks/out/<name>.txt``."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path
