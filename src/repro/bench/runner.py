"""Experiment scaling profiles.

The paper's graphs (90K-360K nodes) are impractical for a pure-Python
substrate at full size, so every benchmark reads a scale profile:

* ``smoke``  -- minimal sizes for CI sanity (seconds per experiment);
* ``small``  -- the default: ~10x below the paper, large enough for the
  qualitative shapes (algorithm ranking, crossovers) to match;
* ``paper``  -- the paper's original sizes, for patient machines.

Select with the ``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class ScaleProfile:
    """Sizing knobs consumed by the benchmark modules."""

    name: str
    #: node counts for the Fig. 15 sweep (paper: 90K..360K)
    brite_nodes: tuple[int, ...]
    #: fixed node count for Fig. 16 (paper: 160K)
    brite_fixed_nodes: int
    #: node count for the SF-like spatial network (paper: ~175K)
    spatial_nodes: int
    #: node counts for Fig. 20a (paper: 40K..360K)
    grid_nodes: tuple[int, ...]
    #: fixed node count for Fig. 20b (paper: 160K)
    grid_fixed_nodes: int
    #: queries per workload (paper: 50)
    workload_size: int
    #: density sweep (paper: 0.002..0.1 variants)
    densities: tuple[float, ...]
    #: k sweep for Fig. 18 (paper: 1..8)
    k_values: tuple[int, ...]
    #: route lengths for Fig. 19 (paper: 5..40)
    route_lengths: tuple[int, ...]
    #: buffer sizes (pages) for Fig. 21 (paper: 0..1024)
    buffer_sizes: tuple[int, ...]
    #: K values for Fig. 22b (paper: 1..8)
    capacity_values: tuple[int, ...]
    #: updates per update workload
    update_count: int
    #: LRU buffer pages, scaled with the graphs (paper: 256 at ~175K nodes)
    buffer_pages: int


_PROFILES = {
    "smoke": ScaleProfile(
        name="smoke",
        brite_nodes=(600, 1_200),
        brite_fixed_nodes=1_000,
        spatial_nodes=1_200,
        grid_nodes=(400, 900),
        grid_fixed_nodes=400,
        workload_size=4,
        densities=(0.01, 0.05),
        k_values=(1, 2),
        route_lengths=(2, 5),
        buffer_sizes=(0, 8, 64),
        capacity_values=(1, 2),
        update_count=4,
        buffer_pages=8,
    ),
    "small": ScaleProfile(
        name="small",
        brite_nodes=(6_000, 10_000, 16_000, 24_000),
        brite_fixed_nodes=16_000,
        spatial_nodes=16_000,
        grid_nodes=(4_000, 9_000, 16_000),
        grid_fixed_nodes=9_000,
        workload_size=12,
        densities=(0.002, 0.005, 0.01, 0.02, 0.05, 0.1),
        k_values=(1, 2, 4, 8),
        route_lengths=(5, 10, 20, 40),
        buffer_sizes=(0, 4, 16, 64, 256),
        capacity_values=(1, 2, 4, 8),
        update_count=10,
        buffer_pages=64,
    ),
    "paper": ScaleProfile(
        name="paper",
        brite_nodes=(90_000, 180_000, 270_000, 360_000),
        brite_fixed_nodes=160_000,
        spatial_nodes=175_000,
        grid_nodes=(40_000, 90_000, 160_000, 250_000, 360_000),
        grid_fixed_nodes=160_000,
        workload_size=50,
        densities=(0.002, 0.005, 0.01, 0.02, 0.05, 0.1),
        k_values=(1, 2, 4, 8),
        route_lengths=(5, 10, 20, 40),
        buffer_sizes=(0, 4, 16, 64, 256, 1024),
        capacity_values=(1, 2, 4, 8),
        update_count=50,
        buffer_pages=256,
    ),
}


def current_profile() -> ScaleProfile:
    """The profile selected by ``REPRO_BENCH_SCALE`` (default small)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    try:
        return _PROFILES[name]
    except KeyError:
        raise ReproError(
            f"unknown REPRO_BENCH_SCALE {name!r}; "
            f"choose one of {sorted(_PROFILES)}"
        ) from None
