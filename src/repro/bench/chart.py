"""ASCII bar charts for the experiment suite.

The paper's evaluation communicates through grouped bar charts
(Figs. 15-22): one group per x-value (|V|, density, k, ...), one bar
per method, usually on a log scale because the methods differ by
orders of magnitude.  :func:`format_chart` renders exactly that shape
in plain text, so ``benchmarks/out/*.txt`` contain a literal
figure next to each table::

    Figure 16 -- cost vs D (BRITE)           total_s, log scale
    D=0.005 | eager   ################################## 280.8
            | eager-m ###########################        22.7
            ...

Charts are deterministic and dependency-free; they exist for the
human scanning the results directory, not for parsing.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

Row = Mapping[str, object]

#: Width of the widest bar, in characters.
BAR_WIDTH = 44


def format_chart(
    title: str,
    rows: Sequence[Row],
    group_by: str,
    series: str,
    value: str,
    log_scale: bool = True,
) -> str:
    """Render a grouped bar chart from table rows.

    ``group_by`` names the x-axis column (one block per distinct
    value, in first-appearance order), ``series`` the per-bar label
    column (method), and ``value`` the numeric column to plot.
    Non-positive values plot as empty bars (log scale has no zero).
    """
    if not rows:
        return f"{title}\n(no data)\n"
    groups: list[object] = []
    for row in rows:
        key = row.get(group_by)
        if key not in groups:
            groups.append(key)
    labels = [str(row.get(series)) for row in rows]
    label_width = max(len(label) for label in labels)
    group_width = max(len(f"{group_by}={g}") for g in groups)

    values = [_as_float(row.get(value)) for row in rows]
    positive = [v for v in values if v > 0]
    if not positive:
        return f"{title}\n(no positive values to plot)\n"
    top = max(positive)
    bottom = min(positive)

    def bar(v: float) -> int:
        if v <= 0:
            return 0
        if not log_scale:
            return max(1, round(BAR_WIDTH * v / top))
        if math.isclose(top, bottom):
            return BAR_WIDTH
        # map [bottom, top] onto [1, BAR_WIDTH] logarithmically
        span = math.log(top) - math.log(bottom)
        frac = (math.log(v) - math.log(bottom)) / span
        return max(1, round(1 + frac * (BAR_WIDTH - 1)))

    scale_note = "log scale" if log_scale else "linear scale"
    lines = [f"{title}    [{value}, {scale_note}]"]
    for group in groups:
        first = True
        for row, v in zip(rows, values):
            if row.get(group_by) != group:
                continue
            prefix = f"{group_by}={group}" if first else ""
            first = False
            label = str(row.get(series))
            lines.append(
                f"{prefix:<{group_width}} | {label:<{label_width}} "
                f"{'#' * bar(v)} {_format_value(v)}"
            )
        lines.append("")
    return "\n".join(lines)


def _as_float(value: object) -> float:
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return 0.0


def _format_value(v: float) -> str:
    if v == 0:
        return "0"
    if v >= 100:
        return f"{v:.0f}"
    if v >= 1:
        return f"{v:.2f}"
    return f"{v:.4f}"
