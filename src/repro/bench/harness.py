"""Workload execution and cost aggregation for the experiment suite.

The paper reports, per workload of 50 queries, the average number of
page faults and the average CPU time, combined into a total cost by
charging 10 ms per random I/O (Section 6).  :func:`run_workload`
reproduces exactly that protocol: it replays a list of queries against
a database with a chosen algorithm and aggregates the per-query counter
diffs that the public API returns.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.api import GraphDatabase
from repro.datasets.workload import Query
from repro.storage.stats import CostModel


@dataclass(frozen=True)
class WorkloadCost:
    """Aggregate cost of one (method, workload) combination."""

    method: str
    queries: int
    io_mean: float
    io_std: float
    cpu_mean_s: float
    total_mean_s: float
    result_size_mean: float
    nodes_visited_mean: float
    heap_ops_mean: float

    def row(self) -> dict[str, float | str]:
        """Flat mapping used by the table formatter."""
        return {
            "method": self.method,
            "io": round(self.io_mean, 1),
            "io_std%": round(100.0 * self.io_std / self.io_mean, 0)
            if self.io_mean else 0.0,
            "cpu_s": round(self.cpu_mean_s, 4),
            "total_s": round(self.total_mean_s, 4),
            "|result|": round(self.result_size_mean, 2),
            "visited": round(self.nodes_visited_mean, 1),
        }


def run_workload(
    db: GraphDatabase,
    queries: Sequence[Query],
    k: int,
    method: str,
    cost_model: CostModel | None = None,
    warm_buffer: bool = False,
) -> WorkloadCost:
    """Execute a query workload and aggregate its costs.

    Unless ``warm_buffer`` is set, the buffer is cleared before every
    query so each query pays its own faults (the paper's per-query cost
    with an initially cold 1 MB buffer).
    """
    model = cost_model or CostModel()
    ios: list[int] = []
    cpus: list[float] = []
    totals: list[float] = []
    sizes: list[int] = []
    visited: list[int] = []
    heap_ops: list[int] = []
    for query in queries:
        if not warm_buffer:
            db.clear_buffer()
        result = db.rknn(query.location, k, method=method, exclude=query.exclude)
        ios.append(result.io)
        cpus.append(result.cpu_seconds)
        totals.append(result.total_seconds(model))
        sizes.append(len(result))
        visited.append(result.counters.nodes_visited)
        heap_ops.append(result.counters.heap_pushes + result.counters.heap_pops)
    return _aggregate(method, ios, cpus, totals, sizes, visited, heap_ops)


def run_continuous_workload(
    db: GraphDatabase,
    routes: Sequence[Sequence[int]],
    k: int,
    method: str,
    cost_model: CostModel | None = None,
    warm_buffer: bool = False,
) -> WorkloadCost:
    """Execute a continuous-RkNN workload over the given routes."""
    model = cost_model or CostModel()
    ios: list[int] = []
    cpus: list[float] = []
    totals: list[float] = []
    sizes: list[int] = []
    visited: list[int] = []
    heap_ops: list[int] = []
    for route in routes:
        if not warm_buffer:
            db.clear_buffer()
        result = db.continuous_rknn(route, k, method=method)
        ios.append(result.io)
        cpus.append(result.cpu_seconds)
        totals.append(result.total_seconds(model))
        sizes.append(len(result))
        visited.append(result.counters.nodes_visited)
        heap_ops.append(result.counters.heap_pushes + result.counters.heap_pops)
    return _aggregate(method, ios, cpus, totals, sizes, visited, heap_ops)


def run_update_workload(
    db: GraphDatabase,
    insert_locations: Sequence,
    delete_ids: Sequence[int],
    cost_model: CostModel | None = None,
) -> dict[str, float]:
    """Alternate insertions and deletions, reporting mean costs of each.

    Mirrors Fig. 22: inserted points follow the data distribution and
    deleted points are random existing points; the materialized lists
    are maintained on every operation.
    """
    model = cost_model or CostModel()
    insert_io: list[int] = []
    insert_total: list[float] = []
    delete_io: list[int] = []
    delete_total: list[float] = []
    next_pid = 1 + max(db.points.ids(), default=0)
    for location in insert_locations:
        db.clear_buffer()
        outcome = db.insert_point(next_pid, location)
        next_pid += 1
        insert_io.append(outcome.io)
        insert_total.append(outcome.total_seconds(model))
    for pid in delete_ids:
        db.clear_buffer()
        outcome = db.delete_point(pid)
        delete_io.append(outcome.io)
        delete_total.append(outcome.total_seconds(model))
    return {
        "insert_io": statistics.fmean(insert_io) if insert_io else 0.0,
        "insert_total_s": statistics.fmean(insert_total) if insert_total else 0.0,
        "delete_io": statistics.fmean(delete_io) if delete_io else 0.0,
        "delete_total_s": statistics.fmean(delete_total) if delete_total else 0.0,
    }


def _aggregate(
    method: str,
    ios: list[int],
    cpus: list[float],
    totals: list[float],
    sizes: list[int],
    visited: list[int],
    heap_ops: list[int],
) -> WorkloadCost:
    return WorkloadCost(
        method=method,
        queries=len(ios),
        io_mean=statistics.fmean(ios),
        io_std=statistics.pstdev(ios) if len(ios) > 1 else 0.0,
        cpu_mean_s=statistics.fmean(cpus),
        total_mean_s=statistics.fmean(totals),
        result_size_mean=statistics.fmean(sizes),
        nodes_visited_mean=statistics.fmean(visited),
        heap_ops_mean=statistics.fmean(heap_ops),
    )
