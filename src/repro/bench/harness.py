"""Workload execution and cost aggregation for the experiment suite.

The paper reports, per workload of 50 queries, the average number of
page faults and the average CPU time, combined into a total cost by
charging 10 ms per random I/O (Section 6).  :func:`run_workload`
reproduces exactly that protocol: it replays a list of queries against
a database with a chosen algorithm and aggregates the per-query counter
diffs that the public API returns.
"""

from __future__ import annotations

import math
import random
import statistics
import time
from dataclasses import dataclass
from typing import Sequence

from repro.api import GraphDatabase
from repro.datasets.workload import Query, data_queries
from repro.engine.spec import QuerySpec
from repro.obs.trace import Tracer
from repro.storage.stats import CostModel


@dataclass(frozen=True)
class WorkloadCost:
    """Aggregate cost of one (method, workload) combination."""

    method: str
    queries: int
    io_mean: float
    io_std: float
    cpu_mean_s: float
    total_mean_s: float
    result_size_mean: float
    nodes_visited_mean: float
    heap_ops_mean: float

    def row(self) -> dict[str, float | str]:
        """Flat mapping used by the table formatter."""
        return {
            "method": self.method,
            "io": round(self.io_mean, 1),
            "io_std%": round(100.0 * self.io_std / self.io_mean, 0)
            if self.io_mean else 0.0,
            "cpu_s": round(self.cpu_mean_s, 4),
            "total_s": round(self.total_mean_s, 4),
            "|result|": round(self.result_size_mean, 2),
            "visited": round(self.nodes_visited_mean, 1),
        }


def run_workload(
    db: GraphDatabase,
    queries: Sequence[Query],
    k: int,
    method: str,
    cost_model: CostModel | None = None,
    warm_buffer: bool = False,
) -> WorkloadCost:
    """Execute a query workload and aggregate its costs.

    Unless ``warm_buffer`` is set, the buffer is cleared before every
    query so each query pays its own faults (the paper's per-query cost
    with an initially cold 1 MB buffer).
    """
    model = cost_model or CostModel()
    ios: list[int] = []
    cpus: list[float] = []
    totals: list[float] = []
    sizes: list[int] = []
    visited: list[int] = []
    heap_ops: list[int] = []
    for query in queries:
        if not warm_buffer:
            db.clear_buffer()
        result = db.rknn(query.location, k, method=method, exclude=query.exclude)
        ios.append(result.io)
        cpus.append(result.cpu_seconds)
        totals.append(result.total_seconds(model))
        sizes.append(len(result))
        visited.append(result.counters.nodes_visited)
        heap_ops.append(result.counters.heap_pushes + result.counters.heap_pops)
    return _aggregate(method, ios, cpus, totals, sizes, visited, heap_ops)


def run_continuous_workload(
    db: GraphDatabase,
    routes: Sequence[Sequence[int]],
    k: int,
    method: str,
    cost_model: CostModel | None = None,
    warm_buffer: bool = False,
) -> WorkloadCost:
    """Execute a continuous-RkNN workload over the given routes."""
    model = cost_model or CostModel()
    ios: list[int] = []
    cpus: list[float] = []
    totals: list[float] = []
    sizes: list[int] = []
    visited: list[int] = []
    heap_ops: list[int] = []
    for route in routes:
        if not warm_buffer:
            db.clear_buffer()
        result = db.continuous_rknn(route, k, method=method)
        ios.append(result.io)
        cpus.append(result.cpu_seconds)
        totals.append(result.total_seconds(model))
        sizes.append(len(result))
        visited.append(result.counters.nodes_visited)
        heap_ops.append(result.counters.heap_pushes + result.counters.heap_pops)
    return _aggregate(method, ios, cpus, totals, sizes, visited, heap_ops)


def run_update_workload(
    db: GraphDatabase,
    insert_locations: Sequence,
    delete_ids: Sequence[int],
    cost_model: CostModel | None = None,
) -> dict[str, float]:
    """Alternate insertions and deletions, reporting mean costs of each.

    Mirrors Fig. 22: inserted points follow the data distribution and
    deleted points are random existing points; the materialized lists
    are maintained on every operation.
    """
    model = cost_model or CostModel()
    insert_io: list[int] = []
    insert_total: list[float] = []
    delete_io: list[int] = []
    delete_total: list[float] = []
    next_pid = 1 + max(db.points.ids(), default=0)
    for location in insert_locations:
        db.clear_buffer()
        outcome = db.insert_point(next_pid, location)
        next_pid += 1
        insert_io.append(outcome.io)
        insert_total.append(outcome.total_seconds(model))
    for pid in delete_ids:
        db.clear_buffer()
        outcome = db.delete_point(pid)
        delete_io.append(outcome.io)
        delete_total.append(outcome.total_seconds(model))
    return {
        "insert_io": statistics.fmean(insert_io) if insert_io else 0.0,
        "insert_total_s": statistics.fmean(insert_total) if insert_total else 0.0,
        "delete_io": statistics.fmean(delete_io) if delete_io else 0.0,
        "delete_total_s": statistics.fmean(delete_total) if delete_total else 0.0,
    }


def span_breakdown(trace) -> dict:
    """Aggregate a trace into the span-level profile BENCH files carry.

    ``trace`` is a :class:`~repro.obs.trace.Tracer` (or anything with
    ``spans``).  Returns ``{"spans": {name: {"count", "total_ms"}},
    "edges_expanded", "nodes_visited", "io"}`` -- per-span-name wall
    clock plus the trace's counter-attribute totals, small enough to
    embed in an emitted ``BENCH_*.json``.
    """
    by_name: dict[str, dict[str, float]] = {}
    totals = {"edges_expanded": 0, "nodes_visited": 0, "io": 0}
    for span in trace.spans:
        entry = by_name.setdefault(span.name, {"count": 0, "total_ms": 0.0})
        entry["count"] += 1
        entry["total_ms"] = round(
            entry["total_ms"] + span.duration * 1000.0, 3
        )
        for key in totals:
            totals[key] += span.attributes.get(key, 0)
    return {"spans": by_name, **totals}


def profile_batch(engine, specs: Sequence[QuerySpec], workers: int = 1):
    """Execute one traced batch; return ``(outcome, profile)``.

    The opt-in profiling hook for benchmarks: runs ``specs`` through
    ``engine`` under a fresh :class:`~repro.obs.trace.Tracer` and
    summarizes the span tree with :func:`span_breakdown`.  Benchmarks
    that measure untraced throughput should call this on a *separate*
    pass -- tracing adds per-span timing overhead by design.
    """
    tracer = Tracer()
    outcome = engine.run_batch(specs, workers=workers, tracer=tracer)
    return outcome, span_breakdown(tracer)


def latency_percentiles(latencies: Sequence[float]) -> dict[str, float]:
    """p50/p95/p99 of a latency sample, in milliseconds.

    Uses the nearest-rank method (the convention of serving-latency
    dashboards): pXX is the smallest observation such that XX% of the
    sample is at or below it.  An empty sample reports zeros.
    """
    if not latencies:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    ordered = sorted(latencies)
    count = len(ordered)

    def rank(percent: float) -> float:
        index = max(math.ceil(percent / 100.0 * count) - 1, 0)
        return ordered[min(index, count - 1)] * 1000.0

    return {
        "p50_ms": rank(50.0),
        "p95_ms": rank(95.0),
        "p99_ms": rank(99.0),
    }


@dataclass(frozen=True)
class ThroughputReport:
    """Batched-vs-sequential serving throughput on one workload.

    ``speedup`` is sequential seconds / batched seconds for the *same*
    repeated workload: the sequential loop re-executes every query
    through the facade, while the engine serves repeats and warmed
    entries from its result cache and runs misses across workers.

    ``sequential_latencies`` holds the per-query service times of the
    measured sequential pass, summarized by :meth:`percentiles`;
    ``batched_mean_ms`` is the per-query amortized latency of the warm
    batch (one batch execution divided over its queries).
    """

    queries: int
    distinct: int
    workers: int
    sequential_seconds: float
    batched_seconds: float
    batched_cold_seconds: float
    cache_hits: int
    cache_misses: int
    batch_io: int
    sequential_latencies: tuple[float, ...] = ()
    #: Span-level breakdown of the traced cold batch (only when the
    #: benchmark ran with profiling on; see :func:`span_breakdown`).
    profile: dict | None = None

    def percentiles(self) -> dict[str, float]:
        """p50/p95/p99 of the sequential per-query latencies (ms)."""
        return latency_percentiles(self.sequential_latencies)

    @property
    def batched_mean_ms(self) -> float:
        """Amortized per-query latency of the warm batch (ms)."""
        if not self.queries:
            return 0.0
        return self.batched_seconds / self.queries * 1000.0

    @property
    def sequential_qps(self) -> float:
        return self.queries / self.sequential_seconds if self.sequential_seconds else 0.0

    @property
    def batched_qps(self) -> float:
        return self.queries / self.batched_seconds if self.batched_seconds else 0.0

    @property
    def speedup(self) -> float:
        return (
            self.sequential_seconds / self.batched_seconds
            if self.batched_seconds
            else float("inf")
        )

    def summary_lines(self) -> list[str]:
        tail = self.percentiles()
        return [
            f"workload: {self.queries} queries ({self.distinct} distinct), "
            f"{self.workers} workers",
            f"sequential: {self.sequential_seconds:.4f} s "
            f"({self.sequential_qps:.0f} q/s)",
            f"sequential latency: p50 {tail['p50_ms']:.3f} ms, "
            f"p95 {tail['p95_ms']:.3f} ms, p99 {tail['p99_ms']:.3f} ms",
            f"batched (cold cache): {self.batched_cold_seconds:.4f} s",
            f"batched (warm cache): {self.batched_seconds:.4f} s "
            f"({self.batched_qps:.0f} q/s, {self.cache_hits} hits / "
            f"{self.cache_misses} misses, {self.batch_io} page I/Os, "
            f"{self.batched_mean_ms:.3f} ms/query amortized)",
            f"speedup: {self.speedup:.1f}x",
        ]


def throughput_specs(
    db: GraphDatabase,
    distinct: int = 25,
    repeat: int = 4,
    k: int = 2,
    method: str = "eager",
    seed: int = 0,
) -> list[QuerySpec]:
    """A serving workload: ``distinct`` data-distributed RkNN queries,
    each arriving ``repeat`` times, interleaved at random.

    Repetition models real traffic (popular locations are queried over
    and over); it is what a result cache exists to exploit.
    """
    base = data_queries(db.points, count=distinct, seed=seed)
    specs = [
        QuerySpec("rknn", query.location, k=k, method=method, exclude=query.exclude)
        for query in base
    ] * repeat
    random.Random(seed + 1).shuffle(specs)
    return specs


def run_throughput_benchmark(
    db: GraphDatabase,
    specs: Sequence[QuerySpec],
    workers: int = 4,
    profile: bool = False,
) -> ThroughputReport:
    """Measure sequential facade calls against warm-cache batch serving.

    Protocol: one unmeasured sequential pass warms the page buffer;
    the measured sequential pass then replays every query through the
    facade.  The engine side measures a cold-cache batch (which also
    populates the cache) and then the warm-cache batch the acceptance
    numbers quote -- both with ``workers`` worker sessions.

    ``profile`` traces the cold batch and attaches its span-level
    breakdown to the report (``REPRO_BENCH_PROFILE`` in the pytest
    wrapper); the default run stays on the no-op tracer so the gated
    numbers never carry tracing overhead.
    """
    engine = db.engine(cache_entries=max(1024, len(specs)))

    def run_one(spec: QuerySpec) -> None:
        # the baseline is the plain facade, exactly as a caller without
        # the engine would issue the query
        if spec.kind == "rknn":
            db.rknn(spec.query, spec.k, method=spec.method, exclude=spec.exclude)
        elif spec.kind == "knn":
            db.knn(spec.query, spec.k, exclude=spec.exclude)
        elif spec.kind == "range":
            db.range_nn(spec.query, spec.k, spec.radius, exclude=spec.exclude)
        else:
            db.bichromatic_rknn(spec.query, spec.k, method=spec.method,
                                exclude=spec.exclude)

    def run_sequential() -> tuple[float, list[float]]:
        latencies: list[float] = []
        start = time.perf_counter()
        for spec in specs:
            began = time.perf_counter()
            run_one(spec)
            latencies.append(time.perf_counter() - began)
        return time.perf_counter() - start, latencies

    run_sequential()  # warm the page buffer
    sequential_seconds, latencies = run_sequential()

    breakdown = None
    if profile:
        cold, breakdown = profile_batch(engine, specs, workers=workers)
    else:
        cold = engine.run_batch(specs, workers=workers)
    warm = engine.run_batch(specs, workers=workers)
    return ThroughputReport(
        queries=len(specs),
        distinct=len({spec.key() for spec in specs}),
        workers=workers,
        sequential_seconds=sequential_seconds,
        batched_seconds=warm.elapsed_seconds,
        batched_cold_seconds=cold.elapsed_seconds,
        cache_hits=warm.hits,
        cache_misses=warm.misses,
        batch_io=warm.io,
        sequential_latencies=tuple(latencies),
        profile=breakdown,
    )


def _aggregate(
    method: str,
    ios: list[int],
    cpus: list[float],
    totals: list[float],
    sizes: list[int],
    visited: list[int],
    heap_ops: list[int],
) -> WorkloadCost:
    return WorkloadCost(
        method=method,
        queries=len(ios),
        io_mean=statistics.fmean(ios),
        io_std=statistics.pstdev(ios) if len(ios) > 1 else 0.0,
        cpu_mean_s=statistics.fmean(cpus),
        total_mean_s=statistics.fmean(totals),
        result_size_mean=statistics.fmean(sizes),
        nodes_visited_mean=statistics.fmean(visited),
        heap_ops_mean=statistics.fmean(heap_ops),
    )
