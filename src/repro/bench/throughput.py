"""Serving-throughput benchmark: batched engine vs sequential facade.

Builds the harness's default graph (a grid network with data-density
0.1, the Fig. 20 family), draws a repeated data-distributed RkNN
workload, and compares a sequential query loop against
:class:`~repro.engine.engine.QueryEngine` batch execution with a warm
result cache.  This is the PR-acceptance benchmark: batched execution
with 4 workers and a warm cache must beat 2x the sequential
throughput.

Run with::

    python -m repro.bench.throughput
    python -m repro.bench.throughput --nodes 200 --distinct 10 --repeat 3
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.api import GraphDatabase
from repro.bench.harness import (
    ThroughputReport,
    run_throughput_benchmark,
    throughput_specs,
)
from repro.datasets.grid import generate_grid
from repro.datasets.workload import place_node_points

#: Default graph size: large enough for non-trivial expansions, small
#: enough that the benchmark finishes in seconds on CI.
DEFAULT_NODES = 400
DEFAULT_DENSITY = 0.1


def default_benchmark_db(
    nodes: int = DEFAULT_NODES,
    density: float = DEFAULT_DENSITY,
    seed: int = 0,
) -> GraphDatabase:
    """The benchmark's default database: a grid network with node points."""
    graph = generate_grid(nodes, average_degree=4.0, seed=seed)
    points = place_node_points(graph, density, seed=seed + 1)
    return GraphDatabase(graph, points)


def run(
    nodes: int = DEFAULT_NODES,
    density: float = DEFAULT_DENSITY,
    distinct: int = 25,
    repeat: int = 4,
    k: int = 2,
    method: str = "eager",
    workers: int = 4,
    seed: int = 0,
    profile: bool = False,
) -> ThroughputReport:
    """Build the default database and run the throughput comparison.

    ``profile`` additionally traces the cold batch and attaches its
    span-level breakdown as ``report.profile`` (see
    :func:`repro.bench.harness.span_breakdown`).
    """
    db = default_benchmark_db(nodes, density, seed=seed)
    specs = throughput_specs(
        db, distinct=distinct, repeat=repeat, k=k, method=method, seed=seed
    )
    return run_throughput_benchmark(db, specs, workers=workers,
                                    profile=profile)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.throughput",
        description="batched QueryEngine vs sequential query throughput",
    )
    parser.add_argument("--nodes", type=int, default=DEFAULT_NODES)
    parser.add_argument("--density", type=float, default=DEFAULT_DENSITY)
    parser.add_argument("--distinct", type=int, default=25,
                        help="distinct queries in the workload")
    parser.add_argument("--repeat", type=int, default=4,
                        help="arrivals per distinct query")
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--method", default="eager",
                        choices=("eager", "lazy", "eager-m", "lazy-ep"))
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--profile", action="store_true",
                        help="trace the cold batch and print its "
                        "span-level breakdown")
    args = parser.parse_args(argv)
    report = run(
        nodes=args.nodes,
        density=args.density,
        distinct=args.distinct,
        repeat=args.repeat,
        k=args.k,
        method=args.method,
        workers=args.workers,
        seed=args.seed,
        profile=args.profile,
    )
    for line in report.summary_lines():
        print(line)
    if report.profile is not None:
        print("cold-batch profile (span name: count, total ms):")
        for name, entry in sorted(report.profile["spans"].items()):
            print(f"  {name}: {entry['count']}x, {entry['total_ms']:.3f} ms")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
