"""Benchmark harness: workload execution, scaling profiles, reporting."""

from repro.bench.harness import (
    ThroughputReport,
    WorkloadCost,
    latency_percentiles,
    run_continuous_workload,
    run_throughput_benchmark,
    run_update_workload,
    run_workload,
    throughput_specs,
)
from repro.bench.report import format_table, save_report
from repro.bench.runner import ScaleProfile, current_profile

__all__ = [
    "ScaleProfile",
    "ThroughputReport",
    "WorkloadCost",
    "current_profile",
    "format_table",
    "latency_percentiles",
    "run_continuous_workload",
    "run_throughput_benchmark",
    "run_update_workload",
    "run_workload",
    "save_report",
    "throughput_specs",
]
