"""``python -m repro`` entry point."""

import sys

from repro.cli import main

# guarded so multiprocessing's spawn bootstrap (which re-imports the
# main module in every serve-fleet worker) doesn't re-run the CLI
if __name__ == "__main__":
    sys.exit(main())
