"""Data-set generators mirroring the paper's evaluation test beds."""

from repro.datasets.brite import generate_brite
from repro.datasets.dblp import CoauthorshipGraph, generate_dblp
from repro.datasets.grid import generate_grid
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import (
    Query,
    data_queries,
    node_queries,
    place_edge_points,
    place_node_points,
    random_route,
    random_routes,
)

__all__ = [
    "CoauthorshipGraph",
    "Query",
    "data_queries",
    "generate_brite",
    "generate_dblp",
    "generate_grid",
    "generate_spatial",
    "node_queries",
    "place_edge_points",
    "place_node_points",
    "random_route",
    "random_routes",
]
