"""Workload generation: point placements, queries and routes.

Paper Section 6: the data density is ``D = |P| / |V|`` (capped at 0.1);
workloads contain 50 queries "randomly chosen from the set of data
points, so that the queries follow the data distribution"; continuous
queries use routes that are "random walks without repeated nodes".

A monochromatic query drawn from the data set models a *new arrival*
(the paper's P2P scenario), so the coincident data point is excluded
for the query's duration; :class:`Query` carries that exclusion set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.points.points import EdgePointSet, NodePointSet

#: Workload size used throughout the paper's evaluation.
PAPER_WORKLOAD_SIZE = 50

Location = int | tuple[int, int, float]


@dataclass(frozen=True)
class Query:
    """One workload query: a location plus the points it hides."""

    location: Location
    exclude: frozenset[int] = field(default_factory=frozenset)


def place_node_points(
    graph: Graph,
    density: float,
    seed: int = 0,
    first_id: int = 0,
) -> NodePointSet:
    """Scatter ``round(density * |V|)`` points on distinct random nodes."""
    count = _point_count(graph, density)
    rng = random.Random(seed)
    nodes = rng.sample(range(graph.num_nodes), count)
    return NodePointSet({first_id + i: node for i, node in enumerate(nodes)})


def place_edge_points(
    graph: Graph,
    density: float,
    seed: int = 0,
    first_id: int = 0,
) -> EdgePointSet:
    """Scatter ``round(density * |V|)`` points uniformly on random edges."""
    count = _point_count(graph, density)
    rng = random.Random(seed)
    edges = list(graph.edges())
    locations = {}
    for i in range(count):
        u, v, weight = edges[rng.randrange(len(edges))]
        locations[first_id + i] = (u, v, rng.uniform(0.0, weight))
    return EdgePointSet(locations)


def _point_count(graph: Graph, density: float) -> int:
    if not 0.0 < density <= 1.0:
        raise QueryError(f"density must be in (0, 1], got {density}")
    count = round(density * graph.num_nodes)
    if count < 1:
        raise QueryError(
            f"density {density} yields no points on {graph.num_nodes} nodes"
        )
    return count


def data_queries(
    points: NodePointSet | EdgePointSet,
    count: int = PAPER_WORKLOAD_SIZE,
    seed: int = 0,
    exclude_query_point: bool = True,
) -> list[Query]:
    """Draw ``count`` query locations from the data points (Section 6).

    With ``exclude_query_point`` (the default) each query hides the
    point it was drawn from, modelling a new arrival at that location.
    """
    rng = random.Random(seed)
    ids = sorted(points.ids())
    if not ids:
        raise QueryError("cannot draw queries from an empty point set")
    queries = []
    for _ in range(count):
        pid = ids[rng.randrange(len(ids))]
        if isinstance(points, NodePointSet):
            location: Location = points.node_of(pid)
        else:
            location = points.location(pid)
        exclude = frozenset((pid,)) if exclude_query_point else frozenset()
        queries.append(Query(location, exclude))
    return queries


def node_queries(
    graph: Graph,
    count: int = PAPER_WORKLOAD_SIZE,
    seed: int = 0,
) -> list[Query]:
    """Draw ``count`` uniform random query nodes (ad-hoc queries)."""
    rng = random.Random(seed)
    return [Query(rng.randrange(graph.num_nodes)) for _ in range(count)]


def random_route(
    graph: Graph,
    length: int,
    seed: int = 0,
) -> list[int]:
    """A random walk of ``length`` nodes without repeated nodes (Fig. 19).

    Retries from fresh start nodes when the walk dead-ends before
    reaching the requested length; raises :class:`QueryError` if the
    graph cannot support such a route at all.
    """
    if length < 1:
        raise QueryError(f"route length must be >= 1, got {length}")
    rng = random.Random(seed)
    for _ in range(200):
        start = rng.randrange(graph.num_nodes)
        route = [start]
        seen = {start}
        while len(route) < length:
            options = [nbr for nbr, _ in graph.neighbors(route[-1])
                       if nbr not in seen]
            if not options:
                break
            nxt = options[rng.randrange(len(options))]
            route.append(nxt)
            seen.add(nxt)
        if len(route) == length:
            return route
    raise QueryError(
        f"could not find a simple route of {length} nodes in 200 attempts"
    )


def random_routes(
    graph: Graph,
    length: int,
    count: int = PAPER_WORKLOAD_SIZE,
    seed: int = 0,
) -> list[list[int]]:
    """``count`` independent random routes of the given length."""
    return [random_route(graph, length, seed=seed * 10_007 + i)
            for i in range(count)]
