"""BRITE-style Internet topologies (paper Section 6.1, Figs. 15-16).

The paper generates P2P test networks with the BRITE topology generator
(www.cs.bu.edu/brite) at an average degree of 4.  BRITE's classic mode
is Barabasi-Albert preferential attachment: each new node connects to
``m`` existing nodes with probability proportional to their degree.
With ``m = 2`` the average degree converges to 4, matching the paper.

The resulting graphs have the paper's *exponential expansion* property:
the number of nodes within ``h`` hops of any node grows exponentially
in ``h``, so an expansion quickly converges to the whole network -- the
regime in which the lazy variants collapse (Figs. 15-16).

Edge weights model link latency; the paper's P2P discussion allows both
latency weights and unit (hop-count) weights.
"""

from __future__ import annotations

import random

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

#: Node counts used by the paper in Fig. 15 (we scale these down by
#: default in the benchmarks; see EXPERIMENTS.md).
PAPER_NODE_COUNTS = (90_000, 180_000, 270_000, 360_000)


def generate_brite(
    num_nodes: int,
    m: int = 2,
    seed: int = 0,
    weights: str = "latency",
) -> Graph:
    """Generate a preferential-attachment topology with ``m`` links per
    new node (average degree ``~2m``).

    ``weights`` is ``"latency"`` (uniform 1..10 link costs) or ``"hop"``
    (all weights 1, the Gnutella-style hop-count metric).
    """
    if num_nodes <= m:
        raise GraphError(f"need more than m={m} nodes, got {num_nodes}")
    if weights not in ("latency", "hop"):
        raise GraphError(f"weights must be 'latency' or 'hop', got {weights!r}")
    rng = random.Random(seed)
    builder = GraphBuilder(on_duplicate="ignore")
    # start from a small clique of m + 1 nodes
    attachment: list[int] = []
    for a in range(m + 1):
        for b in range(a + 1, m + 1):
            _add(builder, rng, a, b, weights)
            attachment.extend((a, b))
    for node in range(m + 1, num_nodes):
        chosen: set[int] = set()
        while len(chosen) < m:
            target = attachment[rng.randrange(len(attachment))]
            if target != node:
                chosen.add(target)
        for target in chosen:
            _add(builder, rng, node, target, weights)
            attachment.extend((node, target))
    return builder.build(num_nodes=num_nodes)


def _add(
    builder: GraphBuilder,
    rng: random.Random,
    u: int,
    v: int,
    weights: str,
) -> None:
    weight = 1.0 if weights == "hop" else float(rng.randint(1, 10))
    builder.add_edge(u, v, weight)
