"""Synthetic grid networks (paper Section 6.2, Fig. 20).

The paper borrows the grid maps of HiTi [7] and Jensen et al. [5]: a
standard grid has average degree 4; "to generate maps with higher
degree, new edges are randomly added between nearby nodes".  This
module reproduces that construction, with uniform random edge weights.
"""

from __future__ import annotations

import random

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph


def generate_grid(
    num_nodes: int,
    average_degree: float = 4.0,
    seed: int = 0,
    max_extra_hops: int = 2,
) -> Graph:
    """Generate a ``side x side`` grid network with extra local edges.

    ``average_degree`` >= 4 controls how many random edges between
    *nearby* nodes (within ``max_extra_hops`` grid steps) are added on
    top of the standard rook adjacency.  Weights are uniform in [1, 10].
    """
    if num_nodes < 4:
        raise GraphError(f"need at least 4 nodes, got {num_nodes}")
    if average_degree < 4.0:
        raise GraphError(f"grid average degree is at least 4, got {average_degree}")
    rng = random.Random(seed)
    side = max(2, round(num_nodes ** 0.5))
    total = side * side
    builder = GraphBuilder(on_duplicate="ignore")

    def node(row: int, col: int) -> int:
        return row * side + col

    for row in range(side):
        for col in range(side):
            if col + 1 < side:
                builder.add_edge(node(row, col), node(row, col + 1),
                                 rng.uniform(1.0, 10.0))
            if row + 1 < side:
                builder.add_edge(node(row, col), node(row + 1, col),
                                 rng.uniform(1.0, 10.0))

    target_edges = round(average_degree * total / 2.0)
    attempts = 0
    while builder.num_edges < target_edges and attempts < 50 * total:
        attempts += 1
        row = rng.randrange(side)
        col = rng.randrange(side)
        drow = rng.randint(-max_extra_hops, max_extra_hops)
        dcol = rng.randint(-max_extra_hops, max_extra_hops)
        nrow, ncol = row + drow, col + dcol
        if (drow, dcol) == (0, 0) or not (0 <= nrow < side and 0 <= ncol < side):
            continue
        a, b = node(row, col), node(nrow, ncol)
        if a != b:
            builder.add_edge(a, b, rng.uniform(1.0, 10.0))
    return builder.build(num_nodes=total)
