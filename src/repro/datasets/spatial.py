"""San-Francisco-style spatial road network (paper Section 6.2).

The paper's unrestricted experiments run on the San Francisco map from
the Digital Chart of the World server (maproom.psu.edu/dcw): 174,956
nodes and 223,001 edges after cleaning, coordinates normalized to
``[0, 10000]^2`` and edge weights set to the Euclidean distance between
endpoints.  The DCW server is long gone, so this module synthesizes a
road network with the same structural signature:

* *planar locality* -- junctions connect only to nearby junctions, so
  network expansions grow polynomially (no exponential expansion);
* *edge/node ratio ~= 1.27* -- a perturbed grid with a fraction of the
  edges deleted and occasional diagonals reproduces SF's ratio;
* *Euclidean weights* over jittered coordinates in ``[0, 10000]^2``.

The generator is deterministic per seed; the benchmark harness records
the realized |V| and |E| alongside the paper's figures.
"""

from __future__ import annotations

import math
import random

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

#: Size of the paper's cleaned San Francisco network.
PAPER_NUM_NODES = 174_956
PAPER_NUM_EDGES = 223_001

#: Coordinate range used by the paper.
COORD_RANGE = 10_000.0


def generate_spatial(
    num_nodes: int,
    seed: int = 0,
    edge_node_ratio: float = PAPER_NUM_EDGES / PAPER_NUM_NODES,
    jitter: float = 0.35,
) -> Graph:
    """Generate a road-like planar network with ``~num_nodes`` nodes.

    Construction: lay a ``side x side`` grid of junctions, jitter each
    coordinate by ``jitter`` cells, connect rook-adjacent junctions plus
    a sprinkle of diagonals, then delete random edges (never bridges
    that would disconnect large parts -- we keep the largest component)
    until the target edge/node ratio is met.
    """
    if num_nodes < 4:
        raise GraphError(f"need at least 4 nodes, got {num_nodes}")
    if edge_node_ratio <= 1.0:
        raise GraphError("edge/node ratio must exceed 1.0 for a connected net")
    rng = random.Random(seed)
    side = max(2, round(math.sqrt(num_nodes)))
    cell = COORD_RANGE / side
    coords: list[tuple[float, float]] = []
    for row in range(side):
        for col in range(side):
            x = (col + 0.5 + rng.uniform(-jitter, jitter)) * cell
            y = (row + 0.5 + rng.uniform(-jitter, jitter)) * cell
            coords.append((min(COORD_RANGE, max(0.0, x)),
                           min(COORD_RANGE, max(0.0, y))))

    def node(row: int, col: int) -> int:
        return row * side + col

    candidate_edges: list[tuple[int, int]] = []
    for row in range(side):
        for col in range(side):
            if col + 1 < side:
                candidate_edges.append((node(row, col), node(row, col + 1)))
            if row + 1 < side:
                candidate_edges.append((node(row, col), node(row + 1, col)))
            # occasional diagonal shortcut (freeways / non-grid streets)
            if row + 1 < side and col + 1 < side and rng.random() < 0.08:
                candidate_edges.append((node(row, col), node(row + 1, col + 1)))

    target_edges = round(edge_node_ratio * side * side)
    rng.shuffle(candidate_edges)
    keep = candidate_edges[: max(target_edges, side * side - 1)]
    builder = GraphBuilder(on_duplicate="ignore")
    for u, v in keep:
        builder.add_edge(u, v, _euclidean(coords[u], coords[v]))
    graph = builder.build(num_nodes=side * side, coords=coords)
    component, _ = graph.largest_component_subgraph()
    return component


def _euclidean(a: tuple[float, float], b: tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])
