"""Synthetic DBLP-style co-authorship graph (paper Section 6.1).

The paper's first test bed is the co-authorship graph of SIGMOD / VLDB /
ICDE / PODS authors (database.cs.ualberta.ca/coauthorship): 4,260 nodes,
13,199 edges, unit weights ("degree of separation"), cleaned to a single
connected component.  The crawl is no longer reachable, so this module
generates a *statistically equivalent* collaboration network:

* papers are born as small cliques (2-4 authors, the co-authorship
  motif), with authors drawn by preferential attachment plus a steady
  influx of new authors -- this yields the power-law degree tail and
  high clustering coefficient of real co-authorship graphs;
* all edge weights are 1, so shortest paths measure the degree of
  separation exactly as in the paper;
* the result is reduced to its largest connected component and scaled
  to the paper's node/edge budget.

Each author also carries a ``sigmod_papers`` attribute with the highly
skewed distribution the paper's ad-hoc queries condition on (Table 1:
most authors have 0 papers; selectivity rises with the paper count).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

#: Size of the paper's cleaned co-authorship network.
PAPER_NUM_NODES = 4260
PAPER_NUM_EDGES = 13199


@dataclass(frozen=True)
class CoauthorshipGraph:
    """A generated co-authorship network with per-author attributes."""

    graph: Graph
    #: number of "SIGMOD papers" per author (indexed by node id)
    sigmod_papers: list[int]

    def authors_with_papers(self, count: int) -> list[int]:
        """Nodes whose attribute equals ``count`` (Table 1's condition)."""
        return [
            node
            for node, papers in enumerate(self.sigmod_papers)
            if papers == count
        ]


def generate_dblp(
    num_nodes: int = PAPER_NUM_NODES,
    num_edges: int = PAPER_NUM_EDGES,
    seed: int = 0,
) -> CoauthorshipGraph:
    """Generate a DBLP-like collaboration network.

    ``num_nodes`` / ``num_edges`` default to the paper's graph size; the
    generator overshoots slightly and trims to the largest connected
    component, then reports whatever landed inside it (within a few
    percent of the request).
    """
    rng = random.Random(seed)
    builder = GraphBuilder(on_duplicate="ignore")
    # endpoint multiset for preferential attachment (repeats ~ degree)
    attachment: list[int] = []
    authors = 0

    def new_author() -> int:
        nonlocal authors
        authors += 1
        return authors - 1

    # seed community: one small clique
    first = [new_author() for _ in range(3)]
    _link_clique(builder, first, attachment)
    while builder.num_edges < num_edges:
        team_size = rng.choice((2, 2, 3, 3, 3, 4))
        team: list[int] = []
        while len(team) < team_size:
            # mix veterans (preferential attachment) with debutant
            # authors while the author budget lasts; once the node count
            # is reached, further papers only involve veterans, driving
            # the edge count to the target
            recruit_veteran = (
                attachment
                and authors >= team_size
                and (rng.random() < 0.62 or authors >= num_nodes)
            )
            if recruit_veteran:
                candidate = attachment[rng.randrange(len(attachment))]
            else:
                candidate = new_author()
            if candidate not in team:
                team.append(candidate)
        _link_clique(builder, team, attachment)
    graph = builder.build(num_nodes=authors)
    component, _ = graph.largest_component_subgraph()
    papers = _sigmod_paper_counts(rng, component)
    return CoauthorshipGraph(component, papers)


def _link_clique(builder: GraphBuilder, team: list[int], attachment: list[int]) -> None:
    for i, a in enumerate(team):
        for b in team[i + 1:]:
            builder.add_edge(a, b, 1.0)
    attachment.extend(team)


def _sigmod_paper_counts(rng: random.Random, graph: Graph) -> list[int]:
    """Skewed per-author publication counts (Table 1's conditions).

    Roughly half the authors have no SIGMOD papers; the counts of the
    rest follow a geometric tail, correlated with degree (prolific
    authors collaborate more) -- matching the paper's observation that
    "most authors have 0 papers and the selectivity increases with the
    number of papers".
    """
    counts = []
    for node in graph.nodes():
        degree = graph.degree(node)
        # higher-degree authors are more likely to have published
        publish_prob = min(0.85, 0.25 + 0.04 * degree)
        if rng.random() > publish_prob:
            counts.append(0)
            continue
        count = 1
        while rng.random() < 0.45:
            count += 1
        counts.append(count)
    return counts
