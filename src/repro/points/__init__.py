"""Data-point sets on nodes (restricted) or edges (unrestricted)."""

from repro.points.points import EdgePointSet, NodePointSet, PointSet

__all__ = ["EdgePointSet", "NodePointSet", "PointSet"]
