"""Data-point sets over a network.

The paper separates the (static) network from the (dynamic) data points
(Section 1).  Two placements are supported:

* **restricted** networks -- every point lies on a node, and a node
  holds at most one relevant point (paper Fig. 1a, Section 3);
* **unrestricted** networks -- points lie anywhere on edges and are
  addressed as ``<n_i, n_j, pos>`` with ``i < j`` and ``pos`` measured
  from ``n_i`` (paper Fig. 14, Section 5.2).

Point ids are arbitrary non-negative integers chosen by the caller
(e.g. author ids, block ids).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import PointError
from repro.graph.graph import Graph, edge_key


class PointSet:
    """Common interface of :class:`NodePointSet` and :class:`EdgePointSet`."""

    restricted: bool

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, pid: int) -> bool:
        raise NotImplementedError

    def ids(self) -> Iterator[int]:
        raise NotImplementedError

    def validate(self, graph: Graph) -> None:
        """Raise :class:`PointError` if the set is inconsistent with ``graph``."""
        raise NotImplementedError


class NodePointSet(PointSet):
    """Points lying on graph nodes; at most one point per node."""

    restricted = True

    def __init__(self, locations: Mapping[int, int] | Iterable[tuple[int, int]]):
        items = locations.items() if isinstance(locations, Mapping) else locations
        self._node_of: dict[int, int] = {}
        self._point_at: dict[int, int] = {}
        for pid, node in items:
            if pid < 0:
                raise PointError(f"point id must be non-negative, got {pid}")
            if pid in self._node_of:
                raise PointError(f"duplicate point id {pid}")
            if node in self._point_at:
                raise PointError(
                    f"node {node} already holds point {self._point_at[node]}; "
                    "restricted networks allow one point per node"
                )
            self._node_of[pid] = node
            self._point_at[node] = pid

    def __len__(self) -> int:
        return len(self._node_of)

    def __contains__(self, pid: int) -> bool:
        return pid in self._node_of

    def ids(self) -> Iterator[int]:
        return iter(self._node_of)

    def items(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(point_id, node)`` pairs."""
        return iter(self._node_of.items())

    def node_of(self, pid: int) -> int:
        """Node that holds point ``pid``."""
        try:
            return self._node_of[pid]
        except KeyError:
            raise PointError(f"unknown point id {pid}") from None

    def point_at(self, node: int) -> int | None:
        """Point residing on ``node``, or ``None`` if the node is empty."""
        return self._point_at.get(node)

    def validate(self, graph: Graph) -> None:
        for pid, node in self._node_of.items():
            if not 0 <= node < graph.num_nodes:
                raise PointError(f"point {pid} lies on unknown node {node}")

    def with_point(self, pid: int, node: int) -> "NodePointSet":
        """A copy of the set with one extra point (used by update benches)."""
        items = dict(self._node_of)
        if pid in items:
            raise PointError(f"point id {pid} already present")
        items[pid] = node
        return NodePointSet(items)

    def without_point(self, pid: int) -> "NodePointSet":
        """A copy of the set with ``pid`` removed."""
        items = dict(self._node_of)
        if pid not in items:
            raise PointError(f"unknown point id {pid}")
        del items[pid]
        return NodePointSet(items)


class EdgePointSet(PointSet):
    """Points lying on edges, addressed as ``<u, v, pos>`` with ``u < v``."""

    restricted = False

    def __init__(
        self,
        locations: Mapping[int, tuple[int, int, float]]
        | Iterable[tuple[int, tuple[int, int, float]]],
    ):
        items = locations.items() if isinstance(locations, Mapping) else locations
        self._loc_of: dict[int, tuple[int, int, float]] = {}
        self._points_on: dict[tuple[int, int], list[tuple[int, float]]] = {}
        for pid, (u, v, pos) in items:
            if pid < 0:
                raise PointError(f"point id must be non-negative, got {pid}")
            if pid in self._loc_of:
                raise PointError(f"duplicate point id {pid}")
            if u == v:
                raise PointError(f"point {pid} lies on a self-loop ({u}, {v})")
            if pos < 0:
                raise PointError(f"point {pid} has negative offset {pos}")
            a, b = edge_key(u, v)
            # normalize: offsets are always measured from the smaller endpoint
            norm_pos = float(pos) if (u, v) == (a, b) else None
            if norm_pos is None:
                raise PointError(
                    f"point {pid}: pass the edge in canonical order "
                    f"({a}, {b}) with the offset measured from node {a}"
                )
            self._loc_of[pid] = (a, b, norm_pos)
            self._points_on.setdefault((a, b), []).append((pid, norm_pos))
        for plist in self._points_on.values():
            plist.sort(key=lambda item: (item[1], item[0]))

    def __len__(self) -> int:
        return len(self._loc_of)

    def __contains__(self, pid: int) -> bool:
        return pid in self._loc_of

    def ids(self) -> Iterator[int]:
        return iter(self._loc_of)

    def items(self) -> Iterator[tuple[int, tuple[int, int, float]]]:
        """Iterate ``(point_id, (u, v, pos))`` tuples."""
        return iter(self._loc_of.items())

    def location(self, pid: int) -> tuple[int, int, float]:
        """The ``(u, v, pos)`` triplet of point ``pid``."""
        try:
            return self._loc_of[pid]
        except KeyError:
            raise PointError(f"unknown point id {pid}") from None

    def points_on(self, u: int, v: int) -> list[tuple[int, float]]:
        """Points on edge ``(u, v)`` as ``(pid, offset-from-min-endpoint)``."""
        return list(self._points_on.get(edge_key(u, v), ()))

    def edges_with_points(self) -> Iterator[tuple[int, int]]:
        """Canonical edges that carry at least one point."""
        return iter(self._points_on)

    def validate(self, graph: Graph) -> None:
        for pid, (u, v, pos) in self._loc_of.items():
            if not graph.has_edge(u, v):
                raise PointError(f"point {pid} lies on missing edge ({u}, {v})")
            weight = graph.weight(u, v)
            if pos > weight:
                raise PointError(
                    f"point {pid} offset {pos} exceeds edge weight {weight}"
                )

    def with_point(self, pid: int, location: tuple[int, int, float]) -> "EdgePointSet":
        """A copy of the set with one extra point."""
        items = dict(self._loc_of)
        if pid in items:
            raise PointError(f"point id {pid} already present")
        items[pid] = location
        return EdgePointSet(items)

    def without_point(self, pid: int) -> "EdgePointSet":
        """A copy of the set with ``pid`` removed."""
        items = dict(self._loc_of)
        if pid not in items:
            raise PointError(f"unknown point id {pid}")
        del items[pid]
        return EdgePointSet(items)
