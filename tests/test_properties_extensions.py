"""Hypothesis property tests for the related-work subsystems.

Mirrors tests/test_properties.py: randomized connected graphs, every
new component checked against an oracle or a metric invariant.
"""

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import GraphDatabase, NodePointSet
from repro.core.baseline import brute_force_rknn
from repro.hier.fragments import partition_fragments
from repro.hier.hepv import HierarchicalDistanceIndex
from repro.metric.rnn import metric_rknn
from repro.metric.vptree import VPTree
from repro.paths.astar import astar_path
from repro.paths.bidirectional import bidirectional_search
from repro.paths.dijkstra import shortest_path, single_source_distances
from repro.paths.landmarks import LandmarkIndex
from repro.voronoi.nvd import NetworkVoronoi
from repro.voronoi.rnn import voronoi_rnn
from tests.test_properties import connected_graphs

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_pair(draw, int_weights=True):
    graph = draw(connected_graphs(int_weights=int_weights))
    source = draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
    target = draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
    return graph, source, target


@st.composite
def graph_and_points(draw):
    graph = draw(connected_graphs())
    count = draw(st.integers(min_value=1, max_value=max(1, graph.num_nodes // 2)))
    nodes = draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.num_nodes - 1),
            min_size=count, max_size=count, unique=True,
        )
    )
    points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
    query = draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
    return graph, points, query


class TestPathProperties:
    @settings(**SETTINGS)
    @given(graph_and_pair())
    def test_network_distance_is_a_metric(self, data):
        graph, u, v = data
        duv = shortest_path(graph, u, v).distance
        dvu = shortest_path(graph, v, u).distance
        assert duv == dvu  # symmetry
        assert (duv == 0.0) == (u == v)  # identity (positive weights)
        # triangle inequality through every node
        for w in range(graph.num_nodes):
            dw = shortest_path(graph, u, w).distance
            wv = shortest_path(graph, w, v).distance
            assert duv <= dw + wv + 1e-9 * max(1.0, duv)

    @settings(**SETTINGS)
    @given(graph_and_pair(int_weights=False))
    def test_all_searches_agree(self, data):
        graph, u, v = data
        expected = shortest_path(graph, u, v).distance
        assert astar_path(graph, u, v).distance == expected
        assert abs(bidirectional_search(graph, u, v).distance - expected) \
            <= 1e-9 * max(1.0, expected)

    @settings(**SETTINGS)
    @given(graph_and_pair())
    def test_path_realizes_distance(self, data):
        graph, u, v = data
        result = shortest_path(graph, u, v)
        total = sum(graph.weight(a, b)
                    for a, b in zip(result.nodes, result.nodes[1:]))
        assert total == result.distance  # int weights: exact sum

    @settings(**SETTINGS)
    @given(graph_and_pair(), st.integers(min_value=1, max_value=4))
    def test_landmark_bound_admissible_and_alt_exact(self, data, count):
        graph, u, v = data
        count = min(count, graph.num_nodes)
        index = LandmarkIndex.build(graph, graph.num_nodes, count=count)
        true = shortest_path(graph, u, v).distance
        assert index.lower_bound(u, v) <= true + 1e-9 * max(1.0, true)
        guided = astar_path(graph, u, v, heuristic=index.heuristic(v))
        assert abs(guided.distance - true) <= 1e-9 * max(1.0, true)


class TestHierProperties:
    @settings(**SETTINGS)
    @given(graph_and_pair(int_weights=False),
           st.integers(min_value=1, max_value=20))
    def test_hepv_distance_matches_dijkstra(self, data, fragment_size):
        graph, u, v = data
        index = HierarchicalDistanceIndex.build(graph, fragment_size)
        expected = shortest_path(graph, u, v).distance
        assert abs(index.distance(u, v) - expected) \
            <= 1e-9 * max(1.0, expected)

    @settings(**SETTINGS)
    @given(connected_graphs(), st.integers(min_value=1, max_value=10))
    def test_fragmentation_is_a_partition_of_connected_pieces(
        self, graph, max_size
    ):
        frag = partition_fragments(graph, max_size)
        seen = sorted(n for group in frag.members for n in group)
        assert seen == list(range(graph.num_nodes))
        assert all(len(group) <= max_size for group in frag.members)
        for fid, border in enumerate(frag.borders):
            assert set(border) <= set(frag.members[fid])


class TestVoronoiProperties:
    @settings(**SETTINGS)
    @given(graph_and_points())
    def test_nvd_distance_is_min_over_generators(self, data):
        graph, points, _ = data
        db = GraphDatabase(graph, points)
        nvd = NetworkVoronoi.build(db.view)
        fields = {
            pid: single_source_distances(graph, node)
            for pid, node in points.items()
        }
        for node in range(graph.num_nodes):
            expected = min(field[node] for field in fields.values())
            assert abs(nvd.distance_of(node) - expected) \
                <= 1e-9 * max(1.0, expected)
            # every thick owner attains the minimum
            for owner in nvd.owners_of(node):
                assert fields[owner][node] <= expected + 1e-6 * max(1.0, expected)

    @settings(**SETTINGS)
    @given(graph_and_points())
    def test_voronoi_rnn_matches_oracle(self, data):
        graph, points, query = data
        db = GraphDatabase(graph, points)
        assert voronoi_rnn(db.view, query) == brute_force_rknn(
            graph, points, query, 1
        )


class TestMetricProperties:
    @settings(**SETTINGS)
    @given(graph_and_points(), st.integers(min_value=1, max_value=3))
    def test_metric_rknn_matches_oracle(self, data, k):
        graph, points, query = data
        db = GraphDatabase(graph, points)
        assert metric_rknn(db.view, query, k=k) == brute_force_rknn(
            graph, points, query, k
        )

    @settings(**SETTINGS)
    @given(graph_and_points(), st.integers(min_value=1, max_value=5))
    def test_vptree_knn_matches_brute_force(self, data, k):
        graph, points, query = data
        db = GraphDatabase(graph, points)
        fields = {
            node: single_source_distances(graph, node)
            for _, node in points.items()
        }
        tree = VPTree(sorted(fields), lambda a, b: fields[a].get(b, math.inf)
                      if a in fields else fields[b][a])
        got = tree.knn(query, k)
        expected = sorted(
            ((node, fields[node].get(query, math.inf)) for node in fields),
            key=lambda pair: (pair[1], pair[0]),
        )[:k]
        # compare as multisets of distances (id ties may order differently)
        assert [d for _, d in got] == [d for _, d in expected]
        assert {n for n, _ in got} <= set(fields)


@st.composite
def stream_scenarios(draw):
    """A graph, standing queries, and an insert/delete event script."""
    graph = draw(connected_graphs(max_nodes=14))
    query_count = draw(
        st.integers(min_value=1, max_value=min(3, graph.num_nodes))
    )
    query_nodes = draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.num_nodes - 1),
            min_size=query_count, max_size=query_count, unique=True,
        )
    )
    script = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(min_value=0, max_value=graph.num_nodes - 1),
            ),
            min_size=1, max_size=10,
        )
    )
    return graph, dict(enumerate(query_nodes)), script


class TestStreamMonitorProperties:
    @settings(**SETTINGS)
    @given(stream_scenarios(), st.integers(min_value=1, max_value=2))
    def test_monitor_always_matches_recomputation(self, scenario, k):
        from repro import NodePointSet
        from repro.streams.monitor import RnnMonitor

        graph, queries, script = scenario
        db = GraphDatabase(graph, NodePointSet({}))
        monitor = RnnMonitor(db, queries, k=k)
        live: dict[int, int] = {}
        next_pid = 100
        for action, node in script:
            if action == "insert" and node not in live.values():
                live[next_pid] = node
                monitor.insert(next_pid, node)
                next_pid += 1
            elif action == "delete" and live:
                victim = sorted(live)[node % len(live)]
                del live[victim]
                monitor.delete(victim)
            else:
                continue
            points = NodePointSet(dict(live))
            for qid, qnode in queries.items():
                assert monitor.result(qid) == brute_force_rknn(
                    graph, points, qnode, k
                )

    @settings(**SETTINGS)
    @given(stream_scenarios())
    def test_events_are_consistent_with_results(self, scenario):
        from repro import NodePointSet
        from repro.streams.monitor import RnnMonitor

        graph, queries, script = scenario
        db = GraphDatabase(graph, NodePointSet({}))
        monitor = RnnMonitor(db, queries, k=1)
        shadow = {qid: set() for qid in queries}
        next_pid = 100
        live: dict[int, int] = {}
        for action, node in script:
            if action == "insert" and node not in live.values():
                live[next_pid] = node
                events = monitor.insert(next_pid, node)
                next_pid += 1
            elif action == "delete" and live:
                victim = sorted(live)[node % len(live)]
                del live[victim]
                events = monitor.delete(victim)
            else:
                continue
            for event in events:
                if event.kind == "join":
                    assert event.point_id not in shadow[event.query_id]
                    shadow[event.query_id].add(event.point_id)
                else:
                    shadow[event.query_id].discard(event.point_id)
            for qid in queries:
                assert sorted(shadow[qid]) == monitor.result(qid)
