"""Docstring-coverage gate: the public facade surfaces stay documented.

Runs the same checker CI uses (``tools/check_docstrings.py``) over the
database facades and the shard subsystem, so a missing public
docstring fails locally before it fails the CI gate.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_docstrings  # noqa: E402

TARGETS = [
    str(ROOT / "src" / "repro" / "api.py"),
    str(ROOT / "src" / "repro" / "api_directed.py"),
    str(ROOT / "src" / "repro" / "shard"),
    str(ROOT / "src" / "repro" / "compact"),
    str(ROOT / "src" / "repro" / "oracle"),
]


class TestDocstringCoverage:
    def test_facades_and_shard_fully_documented(self, capsys):
        assert check_docstrings.main(TARGETS) == 0
        assert "docstring coverage OK" in capsys.readouterr().out

    def test_checker_detects_missing_docstrings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            '"""Module docstring."""\n'
            "def documented():\n"
            '    """Has one."""\n'
            "def missing():\n"
            "    pass\n"
            "class Thing:\n"
            '    """Doc."""\n'
            "    def also_missing(self):\n"
            "        pass\n"
            "    def _private_is_fine(self):\n"
            "        pass\n"
        )
        assert check_docstrings.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "function missing" in out
        assert "Thing.also_missing" in out
        assert "_private_is_fine" not in out
