"""Tokenizer units: lexeme coverage and positioned error messages."""

import pytest

from repro.errors import QueryError
from repro.qlang.lexer import LexError, tokenize


def types_and_values(text):
    return [(t.type, t.value) for t in tokenize(text)]


def test_keywords_are_case_insensitive():
    for text in ("select", "SELECT", "SeLeCt"):
        assert types_and_values(text) == [("KEYWORD", "SELECT"), ("EOF", None)]


def test_identifiers_keep_their_spelling():
    assert types_and_values("rKnn_2") == [("IDENT", "rKnn_2"), ("EOF", None)]


def test_numbers_int_float_negative_exponent():
    assert types_and_values("7 -3 2.5 -0.5 1e3 2E-2") == [
        ("NUMBER", 7),
        ("NUMBER", -3),
        ("NUMBER", 2.5),
        ("NUMBER", -0.5),
        ("NUMBER", 1000.0),
        ("NUMBER", 0.02),
        ("EOF", None),
    ]


def test_int_stays_int_float_stays_float():
    tokens = tokenize("4 4.0")
    assert isinstance(tokens[0].value, int)
    assert isinstance(tokens[1].value, float)


def test_strings_both_quotes_and_escapes():
    assert types_and_values("'a' \"b\" 'it\\'s' 'x\\ny'") == [
        ("STRING", "a"),
        ("STRING", "b"),
        ("STRING", "it's"),
        ("STRING", "x\ny"),
        ("EOF", None),
    ]


def test_operators_longest_match_first():
    assert types_and_values("<= <") == [
        ("OP", "<="),
        ("OP", "<"),
        ("EOF", None),
    ]


def test_comments_run_to_end_of_line():
    text = "select -- the whole answer\nfrom"
    assert types_and_values(text) == [
        ("KEYWORD", "SELECT"),
        ("KEYWORD", "FROM"),
        ("EOF", None),
    ]


def test_positions_are_one_based_lines_and_columns():
    tokens = tokenize("select\n  knn")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_unexpected_character_reports_position():
    with pytest.raises(LexError, match=r"qlang syntax error at 1:1: "
                                       r"unexpected character '@'"):
        tokenize("@")


def test_unterminated_string_reports_opening_position():
    with pytest.raises(LexError, match=r"at 2:3: unterminated string"):
        tokenize("x\n  'oops")


def test_unsupported_escape_rejected():
    with pytest.raises(LexError, match="unsupported escape"):
        tokenize(r"'\q'")


def test_lex_errors_are_query_errors():
    with pytest.raises(QueryError):
        tokenize("?")
