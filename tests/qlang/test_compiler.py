"""Compiler units: statement lowering into validated QuerySpec plans."""

import pytest

from repro.engine.spec import QuerySpec
from repro.errors import QueryError
from repro.qlang import compile_statement, compile_text
from repro.qlang.compiler import SOURCES, CompileError
from repro.qlang.qast import Arg, Call, Select


def one(text) -> QuerySpec:
    specs = compile_text(text)
    assert len(specs) == 1
    return specs[0]


class TestLowering:
    def test_every_source_name_compiles(self):
        samples = {
            "knn": "knn(query=1, k=2)",
            "rknn": "rknn(query=1, k=2)",
            "bichromatic": "bichromatic(query=1, k=2)",
            "range": "range(query=1, k=2, radius=3.0)",
            "range_nn": "range_nn(query=1, k=2, radius=3.0)",
            "continuous": "continuous(route=[0, 1], k=2)",
            "topk_influence": "topk_influence(k=2)",
            "aggregate_nn": "aggregate_nn(group=[1, 2], k=2)",
        }
        assert set(samples) == set(SOURCES)
        for name, call in samples.items():
            assert one(f"SELECT * FROM {call}").kind == SOURCES[name]

    def test_arguments_become_payload_fields(self):
        spec = one("SELECT * FROM rknn(query=7, k=2, method='lazy', "
                   "exclude=[9])")
        assert spec == QuerySpec("rknn", query=7, k=2, method="lazy",
                                 exclude=frozenset({9}))

    def test_map_arguments_become_weights(self):
        spec = one("SELECT * FROM topk_influence(k=1, weights={3: 0.5, "
                   "4: 2.0})")
        assert spec.weights == ((3, 0.5), (4, 2.0))

    def test_scripts_compile_in_statement_order(self):
        specs = compile_text("SELECT * FROM knn(query=1, k=1);\n"
                             "SELECT * FROM rknn(query=2, k=1)")
        assert [s.kind for s in specs] == ["knn", "rknn"]

    def test_comments_are_ignored(self):
        spec = one("-- influence ranking\n"
                   "SELECT * FROM topk_influence(k=1) -- whole set\n")
        assert spec.kind == "topk_influence"


class TestWhereLowering:
    def test_knn_with_bound_is_a_range_query(self):
        spec = one("SELECT * FROM knn(query=1, k=3) WHERE distance < 4.5")
        assert (spec.kind, spec.radius) == ("range", 4.5)

    def test_range_nn_takes_bound_as_radius(self):
        spec = one("SELECT * FROM range_nn(query=1, k=3) WHERE distance < 2")
        assert (spec.kind, spec.radius) == ("range", 2.0)

    def test_rknn_bound_becomes_within(self):
        spec = one("SELECT * FROM rknn(query=1, k=2) WHERE distance < 6")
        assert (spec.kind, spec.within) == ("rknn", 6.0)

    def test_bichromatic_bound_becomes_within(self):
        spec = one("SELECT * FROM bichromatic(query=1, k=2) "
                   "WHERE distance < 6")
        assert (spec.kind, spec.within) == ("bichromatic", 6.0)

    @pytest.mark.parametrize(
        ("text", "fragment"),
        [
            ("SELECT * FROM knn(query=1) WHERE hops < 3",
             "unsupported predicate field 'hops'"),
            ("SELECT * FROM knn(query=1) WHERE distance <= 3",
             "bounds are strict"),
            ("SELECT * FROM knn(query=1) WHERE distance < 3 AND distance < 4",
             "one 'distance' bound per statement"),
            ("SELECT * FROM range(query=1, radius=2) WHERE distance < 3",
             "not both"),
            ("SELECT * FROM rknn(query=1, within=2) WHERE distance < 3",
             "not both"),
            ("SELECT * FROM continuous(route=[0, 1]) WHERE distance < 3",
             "does not apply to 'continuous'"),
        ],
    )
    def test_bad_where_clauses(self, text, fragment):
        with pytest.raises(CompileError, match=fragment):
            compile_text(text)


class TestLimitLowering:
    def test_limit_caps_topk_influence(self):
        assert one("SELECT * FROM topk_influence(k=1) LIMIT 5").limit == 5

    def test_limit_elsewhere_rejected(self):
        with pytest.raises(CompileError, match="LIMIT applies to "
                                               "topk_influence"):
            compile_text("SELECT * FROM knn(query=1) LIMIT 5")

    def test_limit_clause_and_argument_conflict(self):
        # 'limit' is a keyword in source text, so the conflicting
        # argument can only come from a hand-built tree
        select = Select(
            source=Call("topk_influence", (Arg("limit", 2),)), limit=5
        )
        with pytest.raises(CompileError, match="not both"):
            compile_statement(select)


class TestCompileErrors:
    def test_unknown_function_lists_the_allowed_set(self):
        with pytest.raises(CompileError) as info:
            compile_text("SELECT * FROM nope(query=1)")
        message = str(info.value)
        assert "unknown query function 'nope'" in message
        for name in SOURCES:
            assert name in message

    def test_kind_argument_rejected(self):
        with pytest.raises(CompileError, match="'kind' is not an argument"):
            compile_text("SELECT * FROM knn(kind='rknn')")

    def test_duplicate_argument_rejected(self):
        with pytest.raises(CompileError, match="duplicate argument 'k'"):
            compile_text("SELECT * FROM knn(query=1, k=1, k=2)")

    def test_payload_problems_use_the_spec_layer_errors(self):
        with pytest.raises(QueryError, match="invalid query spec: "):
            compile_text("SELECT * FROM knn(k=1)")  # missing query

    def test_compile_errors_are_query_errors(self):
        with pytest.raises(QueryError):
            compile_text("SELECT * FROM nope()")
