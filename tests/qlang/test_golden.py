"""Golden-file suite: statement -> compiled plan -> answer.

``goldens.jsonl`` pins, for one fixed workload, every statement's
compiled :class:`QuerySpec` (its JSONL wire line) and its answer on the
disk backend.  Regenerate after an intentional language or engine
change with::

    PYTHONPATH=src:. python tests/qlang/test_golden.py regenerate
"""

import json
import random
from pathlib import Path

import pytest

from repro import GraphDatabase, NodePointSet
from repro.engine.spec import QuerySpec
from repro.qlang import compile_text
from tests.conftest import build_random_graph

GOLDENS = Path(__file__).with_name("goldens.jsonl")


def golden_database() -> GraphDatabase:
    """The fixed workload every golden line was recorded against."""
    rng = random.Random(42)
    graph = build_random_graph(rng, 40, 25)
    nodes = rng.sample(range(40), 14)
    db = GraphDatabase(
        graph, NodePointSet({100 + i: node for i, node in enumerate(nodes[:8])})
    )
    db.attach_reference(
        NodePointSet({200 + i: node for i, node in enumerate(nodes[8:])})
    )
    db.materialize(4)
    db.materialize_reference(4)
    return db


#: The statements under pin -- every kind, clause, and alias.
STATEMENTS = (
    "SELECT * FROM knn(query=0, k=3)",
    "SELECT * FROM knn(query=0, k=8) WHERE distance < 6.0",
    "SELECT * FROM range_nn(query=5, k=8, radius=7.0)",
    "SELECT * FROM rknn(query=0, k=1)",
    "SELECT * FROM rknn(query=3, k=2, method='lazy')",
    "SELECT * FROM rknn(query=3, k=2) WHERE distance < 5.0",
    "SELECT * FROM bichromatic(query=0, k=1)",
    "SELECT * FROM bichromatic(query=0, k=2) WHERE distance < 8.0",
    "SELECT * FROM continuous(route=[0, 25, 9], k=2)",
    "SELECT * FROM topk_influence(k=1)",
    "SELECT * FROM topk_influence(k=2) LIMIT 3",
    "SELECT * FROM topk_influence(k=1, weights={101: 2.5, 104: 0.5}) LIMIT 4",
    "SELECT * FROM topk_influence(k=1, bichromatic=true) LIMIT 3",
    "SELECT * FROM aggregate_nn(group=[0, 9, 17], k=4)",
    "SELECT * FROM aggregate_nn(group=[0, 9, 17], k=4, agg='max')",
    "SELECT * FROM knn(query=2, k=2);\nSELECT * FROM rknn(query=2, k=2)",
)


def answer_payload(result) -> dict:
    if hasattr(result, "points"):
        return {"points": list(result.points)}
    return {"neighbors": [[pid, dist] for pid, dist in result.neighbors]}


def record(db, text) -> dict:
    specs = compile_text(text)
    outcome = db.engine().run_batch(specs)
    return {
        "statement": text,
        "specs": [json.loads(spec.to_json()) for spec in specs],
        "answers": [answer_payload(result) for result in outcome.results],
    }


@pytest.fixture(scope="module")
def db():
    return golden_database()


@pytest.fixture(scope="module")
def goldens():
    lines = GOLDENS.read_text().splitlines()
    return {entry["statement"]: entry
            for entry in map(json.loads, lines)}


def test_goldens_cover_exactly_the_statement_list(goldens):
    assert set(goldens) == set(STATEMENTS)


@pytest.mark.parametrize("text", STATEMENTS)
def test_compiled_plan_matches_golden(db, goldens, text):
    golden = goldens[text]
    specs = compile_text(text)
    assert [json.loads(spec.to_json()) for spec in specs] == golden["specs"]
    # the wire line round-trips through from_payload unchanged
    for spec in specs:
        assert QuerySpec.from_json(spec.to_json()) == spec


@pytest.mark.parametrize("text", STATEMENTS)
def test_answer_matches_golden(db, goldens, text):
    golden = goldens[text]
    outcome = db.engine().run_batch(compile_text(text))
    assert [answer_payload(r) for r in outcome.results] == golden["answers"]


def regenerate() -> None:
    db = golden_database()
    with GOLDENS.open("w") as handle:
        for text in STATEMENTS:
            handle.write(json.dumps(record(db, text)) + "\n")
    print(f"wrote {len(STATEMENTS)} goldens to {GOLDENS}")


if __name__ == "__main__":
    import sys

    if sys.argv[1:] == ["regenerate"]:
        regenerate()
    else:
        print(__doc__)
