"""The one public query surface: ``Database.query`` on every backend,
and the serve tier's ``statement`` request form.
"""

import json
import random
import socket

import pytest

from repro import (
    CompactDatabase,
    GraphDatabase,
    NodePointSet,
    QuerySpec,
    ShardedDatabase,
    serve_in_thread,
)
from repro.errors import QueryError
from repro.qlang import execute
from repro.serve import protocol
from tests.conftest import build_random_graph

STATEMENTS = (
    "SELECT * FROM rknn(query=4, k=2)",
    "SELECT * FROM knn(query=11, k=3) WHERE distance < 9.0",
    "SELECT * FROM topk_influence(k=1) LIMIT 3",
    "SELECT * FROM topk_influence(k=2, weights={100: 3.0}) LIMIT 2",
    "SELECT * FROM aggregate_nn(group=[4, 11], k=3)",
    "SELECT * FROM aggregate_nn(group=[4, 11, 19], k=3, agg='max')",
    "SELECT * FROM rknn(query=19, k=2) WHERE distance < 7.0",
)


def build_inputs():
    rng = random.Random(23)
    graph = build_random_graph(rng, 40, 30)
    placement = {100 + i: node
                 for i, node in enumerate(rng.sample(range(40), 9))}
    return graph, placement


def backend(kind):
    graph, placement = build_inputs()
    points = NodePointSet(dict(placement))
    if kind == "sharded":
        db = ShardedDatabase(graph, points, num_shards=4)
    elif kind == "compact":
        db = CompactDatabase(graph, points)
    else:
        db = GraphDatabase(graph, points)
    db.materialize(4)
    return db


def answer(result):
    return (tuple(result.points) if hasattr(result, "points")
            else tuple(result.neighbors))


class TestDatabaseQuery:
    def test_single_statement_answers_unwrapped(self):
        db = backend("disk")
        result = db.query("SELECT * FROM rknn(query=4, k=2)")
        assert answer(result) == answer(db.rknn(4, 2))

    def test_script_answers_as_a_list(self):
        db = backend("disk")
        results = db.query("SELECT * FROM knn(query=4, k=2);\n"
                           "SELECT * FROM rknn(query=4, k=2)")
        assert len(results) == 2
        assert answer(results[0]) == answer(db.knn(4, 2))

    def test_specs_and_mixed_sequences_accepted(self):
        db = backend("disk")
        spec = QuerySpec("rknn", query=4, k=2, method="eager")
        assert answer(db.query(spec)) == answer(db.rknn(4, 2))
        results = db.query([spec, "SELECT * FROM knn(query=4, k=1)"])
        assert len(results) == 2

    def test_rejects_other_types(self):
        db = backend("disk")
        with pytest.raises(QueryError, match="statements or QuerySpecs"):
            db.query(42)
        with pytest.raises(QueryError, match="statements or QuerySpecs"):
            db.query([42])

    def test_execute_reuses_a_caller_engine_cache(self):
        db = backend("disk")
        engine = db.engine()
        first = execute(db, "SELECT * FROM topk_influence(k=1) LIMIT 2",
                        engine=engine)
        again = execute(db, "SELECT * FROM topk_influence(k=1) LIMIT 2",
                        engine=engine)
        assert answer(first) == answer(again)
        assert again.io == 0  # served from the result cache

    def test_statements_answer_identically_across_backends(self):
        answers = {}
        for kind in ("disk", "sharded", "compact"):
            db = backend(kind)
            answers[kind] = [answer(r) for r in db.query(list(STATEMENTS))]
        assert answers["disk"] == answers["sharded"] == answers["compact"]


class TestServeStatements:
    def test_request_spec_accepts_a_statement(self):
        payload = {"op": "query", "id": 1,
                   "statement": "SELECT * FROM rknn(query=5, k=1)"}
        assert protocol.request_spec(payload) == QuerySpec(
            "rknn", query=5, k=1
        )

    @pytest.mark.parametrize(
        ("payload", "fragment"),
        [
            ({"statement": "SELECT * FROM knn(query=1)", "k": 2},
             "no spec fields"),
            ({"statement": 7}, "qlang string"),
            ({"statement": "SELECT * FROM knn(query=1); "
                           "SELECT * FROM knn(query=2)"},
             "exactly one statement"),
        ],
    )
    def test_bad_statement_requests(self, payload, fragment):
        with pytest.raises(QueryError, match=fragment):
            protocol.request_spec({"op": "query", **payload})

    def test_served_statements_match_direct_calls(self):
        db = backend("compact")
        direct = [answer(r) for r in db.query(list(STATEMENTS))]
        with serve_in_thread(db) as handle:
            with socket.create_connection((handle.host, handle.port)) as sock:
                stream = sock.makefile("rw")
                served = []
                for text in STATEMENTS:
                    stream.write(json.dumps(
                        {"op": "query", "statement": text}) + "\n")
                    stream.flush()
                    body = json.loads(stream.readline())
                    assert body["status"] == "ok"
                    if "points" in body:
                        served.append(tuple(body["points"]))
                    else:
                        served.append(tuple(
                            (pid, dist) for pid, dist in body["neighbors"]
                        ))
        assert served == direct

    def test_served_statement_errors_keep_the_connection(self):
        db = backend("disk")
        with serve_in_thread(db) as handle:
            with socket.create_connection((handle.host, handle.port)) as sock:
                stream = sock.makefile("rw")
                stream.write(json.dumps(
                    {"op": "query", "statement": "SELECT * FROM nope()"}
                ) + "\n")
                stream.flush()
                body = json.loads(stream.readline())
                assert body["status"] == "error"
                assert "unknown query function 'nope'" in body["error"]
                stream.write(json.dumps(
                    {"op": "query",
                     "statement": "SELECT * FROM knn(query=4, k=1)"}
                ) + "\n")
                stream.flush()
                assert json.loads(stream.readline())["status"] == "ok"
