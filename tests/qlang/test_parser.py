"""Parser units plus the property the formatter guarantees:

    parse(format_script(script)) == script

for every well-formed tree, whether or not it names a real query kind
(kind validation belongs to the compiler).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.qlang.lexer import KEYWORDS
from repro.qlang.parser import ParseError, parse
from repro.qlang.qast import (
    Arg,
    Call,
    Comparison,
    MapValue,
    Script,
    Select,
    format_script,
)


def one(text) -> Select:
    script = parse(text)
    assert len(script.statements) == 1
    return script.statements[0]


class TestGrammar:
    def test_minimal_statement(self):
        select = one("SELECT * FROM rknn(query=7, k=2)")
        assert select == Select(
            source=Call("rknn", (Arg("query", 7), Arg("k", 2))),
            where=(),
            limit=None,
        )

    def test_empty_argument_list(self):
        assert one("SELECT * FROM topk_influence()").source == Call(
            "topk_influence", ()
        )

    def test_where_and_limit_clauses(self):
        select = one(
            "SELECT * FROM topk_influence(k=1) WHERE distance < 4.5 LIMIT 3"
        )
        assert select.where == (Comparison("distance", "<", 4.5),)
        assert select.limit == 3

    def test_and_chains_predicates(self):
        select = one("SELECT * FROM knn(query=1) "
                     "WHERE distance < 9 AND distance <= 2")
        assert select.where == (
            Comparison("distance", "<", 9),
            Comparison("distance", "<=", 2),
        )

    def test_list_map_bool_and_string_values(self):
        select = one(
            "select * from f(group=[1, 2], weights={3: 0.5}, "
            "bichromatic=true, method='eager')"
        )
        assert select.source.args == (
            Arg("group", (1, 2)),
            Arg("weights", MapValue(((3, 0.5),))),
            Arg("bichromatic", True),
            Arg("method", "eager"),
        )

    def test_scripts_split_on_semicolons_trailing_allowed(self):
        script = parse("SELECT * FROM a(); SELECT * FROM b() ;")
        assert [s.source.name for s in script.statements] == ["a", "b"]

    def test_parser_accepts_unknown_function_names(self):
        # shape only -- the compiler owns kind validation
        assert one("SELECT * FROM no_such_kind(x=1)").source.name == \
            "no_such_kind"


class TestErrors:
    @pytest.mark.parametrize(
        ("text", "fragment"),
        [
            ("FROM knn()", "expected 'SELECT'"),
            ("SELECT k FROM knn()", "expected '\\*'"),
            ("SELECT * knn()", "expected 'FROM'"),
            ("SELECT * FROM 7()", "expected a query function name"),
            ("SELECT * FROM knn", "expected '\\('"),
            ("SELECT * FROM knn(7)", "expected an argument name"),
            ("SELECT * FROM knn(k 2)", "expected '=' after argument name"),
            ("SELECT * FROM knn(k=)", "expected a value"),
            ("SELECT * FROM knn(k=1", "expected '\\)'"),
            ("SELECT * FROM knn() WHERE 4 < 5", "expected a predicate field"),
            ("SELECT * FROM knn() WHERE distance = 5", "expected '<' or '<='"),
            ("SELECT * FROM knn() WHERE distance < x", "expected a numeric"),
            ("SELECT * FROM knn() LIMIT 2.5", "expected an integer LIMIT"),
            ("SELECT * FROM knn() SELECT", "expected ';' or end of script"),
            ("SELECT * FROM knn(g=[1, 2)", "expected '\\]'"),
            ("SELECT * FROM knn(w={1 2})", "expected ':' between map key"),
        ],
    )
    def test_shape_errors_name_the_expectation(self, text, fragment):
        with pytest.raises(ParseError, match=fragment):
            parse(text)

    def test_errors_carry_line_and_column(self):
        with pytest.raises(ParseError, match=r"at 2:8: "):
            parse("SELECT * FROM knn(k=1);\nSELECT knn")

    def test_parse_errors_are_query_errors(self):
        with pytest.raises(QueryError):
            parse("nope")


# -- the round-trip law -----------------------------------------------------

_RESERVED = set(KEYWORDS)

idents = st.from_regex(r"[a-z_][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda word: word.upper() not in _RESERVED
)
numbers = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)
scalars = st.one_of(numbers, st.booleans(), st.text(max_size=12))
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3).map(tuple),
        st.lists(st.tuples(children, children), max_size=3).map(
            lambda pairs: MapValue(tuple(pairs))
        ),
    ),
    max_leaves=6,
)
args = st.builds(Arg, name=idents, value=values)
calls = st.builds(
    Call, name=idents, args=st.lists(args, max_size=4).map(tuple)
)
comparisons = st.builds(
    Comparison,
    field=idents,
    op=st.sampled_from(("<", "<=")),
    value=numbers,
)
selects = st.builds(
    Select,
    source=calls,
    where=st.lists(comparisons, max_size=2).map(tuple),
    limit=st.one_of(st.none(), st.integers(min_value=-99, max_value=99)),
)
scripts = st.builds(
    Script, statements=st.lists(selects, min_size=1, max_size=3).map(tuple)
)


@settings(max_examples=120, deadline=None)
@given(scripts)
def test_round_trip_parse_of_formatted_script(script):
    assert parse(format_script(script)) == script


@settings(max_examples=60, deadline=None)
@given(scripts)
def test_formatting_is_a_fixed_point(script):
    text = format_script(script)
    assert format_script(parse(text)) == text
