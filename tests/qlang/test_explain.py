"""EXPLAIN through the qlang pipeline: parse, format, compile, run."""

import json

import pytest

from repro import GraphDatabase, NodePointSet
from repro.qlang import (
    ExplainResult,
    Statement,
    compile_statements,
    compile_text,
    execute,
    format_script,
    format_statement,
    parse,
)

STATEMENT = "EXPLAIN SELECT * FROM rknn(query=5, k=2, method='eager')"


@pytest.fixture
def db():
    nodes = 40
    edges = [(i, (i + 1) % nodes, 1.0) for i in range(nodes)]
    edges += [(i, (i + 7) % nodes, 2.5) for i in range(0, nodes, 4)]
    points = NodePointSet({pid: node for pid, node in
                           enumerate(range(0, nodes, 5))})
    return GraphDatabase.from_edges(edges, points)


class TestParseAndFormat:
    def test_explain_prefix_sets_the_ast_flag(self):
        script = parse(STATEMENT)
        assert script.statements[0].explain is True
        plain = parse("SELECT * FROM rknn(query=5, k=2)")
        assert plain.statements[0].explain is False

    def test_canonical_format_round_trips(self):
        script = parse(STATEMENT + "; SELECT * FROM knn(query=0, k=1)")
        assert parse(format_script(script)) == script
        assert format_statement(script.statements[0]).startswith(
            "EXPLAIN SELECT * FROM rknn(")

    def test_explain_is_case_insensitive(self):
        script = parse("explain select * from rknn(query=5, k=2)")
        assert script.statements[0].explain is True


class TestCompile:
    def test_compile_statements_keeps_the_flag(self):
        statements = compile_statements(
            STATEMENT + "; SELECT * FROM rknn(query=5, k=2, method='eager')"
        )
        assert [s.explain for s in statements] == [True, False]
        # same spec either way: EXPLAIN changes the answer, not the query
        assert statements[0].spec == statements[1].spec
        assert isinstance(statements[0], Statement)

    def test_compile_text_drops_the_flag(self):
        specs = compile_text(STATEMENT)
        assert len(specs) == 1
        assert specs[0].kind == "rknn"
        assert specs[0].k == 2


class TestExecute:
    def test_explain_answers_with_plan_and_trace(self, db):
        explained = db.query(STATEMENT)
        assert isinstance(explained, ExplainResult)
        assert explained.plan["backend"] == "disk"
        assert explained.plan["spec"]["kind"] == "rknn"
        names = {span["name"] for span in explained.trace["spans"]}
        assert "execute.rknn" in names
        direct = db.query("SELECT * FROM rknn(query=5, k=2, method='eager')")
        assert list(explained.result.points) == list(direct.points)

    def test_mixed_script_keeps_statement_order(self, db):
        results = execute(
            db,
            "SELECT * FROM knn(query=0, k=1); " + STATEMENT,
        )
        assert len(results) == 2
        assert not isinstance(results[0], ExplainResult)
        assert isinstance(results[1], ExplainResult)

    def test_payload_and_render_are_serializable(self, db):
        explained = db.query(STATEMENT)
        payload = json.loads(json.dumps(explained.to_payload()))
        assert payload["explain"] is True
        assert set(payload) == {"explain", "plan", "trace"}
        lines = explained.render()
        assert lines[0].startswith("plan: ")
        assert len(lines) > 1  # the span tree follows

    def test_plan_names_kernel_eligibility(self, db):
        explained = db.query(STATEMENT)
        plan = explained.plan
        assert {"spec", "backend", "method", "expands",
                "kernel_eligible", "cache_stamp", "planned"} <= set(plan)
        assert plan["expands"] is False
