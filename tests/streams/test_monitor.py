"""Tests for the continuous RkNN stream monitor."""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.core.baseline import brute_force_rknn
from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.points.points import EdgePointSet
from repro.streams.monitor import MembershipEvent, RnnMonitor
from tests.conftest import build_random_graph


class TestMonitorValidation:
    def test_requires_restricted_network(self):
        graph = Graph(3, [(0, 1, 4.0), (1, 2, 4.0)])
        db = GraphDatabase(graph, EdgePointSet({5: (0, 1, 1.0)}))
        with pytest.raises(QueryError):
            RnnMonitor(db, {0: 0})

    def test_requires_queries(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        with pytest.raises(QueryError):
            RnnMonitor(db, {})

    def test_rejects_bad_k(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        with pytest.raises(QueryError):
            RnnMonitor(db, {0: 0}, k=0)

    def test_rejects_out_of_range_query_node(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        with pytest.raises(QueryError):
            RnnMonitor(db, {0: 99})

    def test_rejects_undersized_existing_materialization(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 0}))
        db.materialize(1)
        with pytest.raises(QueryError):
            RnnMonitor(db, {0: 3}, k=2)

    def test_unknown_query_id(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        monitor = RnnMonitor(db, {0: 2})
        with pytest.raises(QueryError):
            monitor.result(99)


class TestMonitorInitialState:
    def test_initial_results_match_oracle(self, p2p_graph):
        placement = {1: 5, 2: 6, 3: 7}
        db = GraphDatabase(p2p_graph, NodePointSet(placement))
        monitor = RnnMonitor(db, {0: 2, 1: 4})
        for qid, node in ((0, 2), (1, 4)):
            expected = brute_force_rknn(p2p_graph, db.points, node, 1)
            assert monitor.result(qid) == expected

    def test_empty_point_set_has_empty_results(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        monitor = RnnMonitor(db, {0: 1})
        assert monitor.result(0) == []
        assert monitor.counts() == {0: 0}
        assert monitor.total_influence() == 0


class TestMonitorUpdates:
    def test_insert_produces_join_events(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        monitor = RnnMonitor(db, {0: 0})
        events = monitor.insert(10, 3)
        assert MembershipEvent(0, 10, "join") in events
        assert monitor.result(0) == [10]

    def test_closer_insert_evicts_member(self):
        # query at node 0 of a path; p at node 2 is its RNN until a
        # point lands at node 1 (which ties with the query for p's
        # attention -- ties keep the query, so p leaves)
        graph = Graph(6, [(i, i + 1, 1.0) for i in range(5)])
        db = GraphDatabase(graph, NodePointSet({10: 2}))
        monitor = RnnMonitor(db, {0: 0})
        assert monitor.result(0) == [10]
        events = monitor.insert(11, 1)
        kinds = {(e.point_id, e.kind) for e in events}
        assert (11, "join") in kinds
        assert (10, "leave") in kinds
        assert monitor.result(0) == [11]

    def test_delete_restores_membership(self):
        graph = Graph(6, [(i, i + 1, 1.0) for i in range(5)])
        db = GraphDatabase(graph, NodePointSet({10: 2, 11: 1}))
        monitor = RnnMonitor(db, {0: 0})
        assert monitor.result(0) == [11]
        events = monitor.delete(11)
        assert MembershipEvent(0, 10, "join") in events
        assert MembershipEvent(0, 11, "leave") in events
        assert monitor.result(0) == [10]

    def test_unreachable_point_never_joins(self):
        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        db = GraphDatabase(graph, NodePointSet({}))
        monitor = RnnMonitor(db, {0: 0})
        monitor.insert(10, 2)  # other component
        assert monitor.result(0) == []

    def test_aggregates(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 1, 11: 4}))
        monitor = RnnMonitor(db, {0: 0, 1: 3})
        counts = monitor.counts()
        assert counts == {0: 2, 1: 2}  # both points tie toward each query
        assert monitor.total_influence() == 4
        qid, size = monitor.most_influential()
        assert size == 2


class TestMonitorAgainstRecomputation:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 2])
    def test_random_streams_match_oracle(self, seed, k):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(8, 22), rng.randint(4, 20))
        query_nodes = rng.sample(range(graph.num_nodes), 3)
        queries = {qid: node for qid, node in enumerate(query_nodes)}
        db = GraphDatabase(graph, NodePointSet({}))
        monitor = RnnMonitor(db, queries, k=k)

        live: dict[int, int] = {}
        next_pid = 100
        for _ in range(14):
            if live and rng.random() < 0.4:
                victim = rng.choice(sorted(live))
                del live[victim]
                monitor.delete(victim)
            else:
                taken = set(live.values())
                free = [n for n in range(graph.num_nodes) if n not in taken]
                if not free:
                    continue
                node = rng.choice(free)
                live[next_pid] = node
                monitor.insert(next_pid, node)
                next_pid += 1
            points = NodePointSet(dict(live))
            for qid, qnode in queries.items():
                expected = brute_force_rknn(graph, points, qnode, k)
                assert monitor.result(qid) == expected, (
                    f"seed={seed} k={k} qid={qid} live={live}"
                )
