"""Tests for the bichromatic stream monitor."""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.paths.dijkstra import single_source_distances
from repro.streams.monitor import BichromaticRnnMonitor, MembershipEvent
from tests.conftest import build_random_graph


def oracle_bichromatic(graph, points, queries, qid, k):
    """p in bRkNN(q) iff fewer than k *other* queries are strictly
    closer to p than q (ties favor q)."""
    fields = {q: single_source_distances(graph, node)
              for q, node in queries.items()}
    result = []
    for pid in points.ids():
        node = points.node_of(pid)
        dq = fields[qid].get(node)
        if dq is None:
            continue
        closer = sum(
            1 for other in queries
            if other != qid and fields[other].get(node, float("inf")) < dq - 1e-12
        )
        if closer < k:
            result.append(pid)
    return sorted(result)


class TestBichromaticValidation:
    def test_needs_two_queries(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        with pytest.raises(QueryError):
            BichromaticRnnMonitor(db, {0: 1})

    def test_rejects_bad_k(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        with pytest.raises(QueryError):
            BichromaticRnnMonitor(db, {0: 1, 1: 4}, k=0)

    def test_rejects_out_of_range_node(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        with pytest.raises(QueryError):
            BichromaticRnnMonitor(db, {0: 1, 1: 99})


class TestBichromaticSemantics:
    def test_points_split_between_two_stands(self):
        # path of 7 nodes, stands at both ends: points go to the nearer
        graph = Graph(7, [(i, i + 1, 1.0) for i in range(6)])
        db = GraphDatabase(graph, NodePointSet({10: 1, 11: 5, 12: 3}))
        monitor = BichromaticRnnMonitor(db, {0: 0, 1: 6})
        assert monitor.result(0) == [10, 12]  # node 3 ties: favors each
        assert monitor.result(1) == [11, 12]

    def test_unreachable_points_belong_to_nobody(self):
        graph = Graph(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
        db = GraphDatabase(graph, NodePointSet({10: 1}))
        monitor = BichromaticRnnMonitor(db, {0: 2, 1: 4})
        assert monitor.result(0) == []
        assert monitor.result(1) == []

    def test_k2_admits_second_choice(self):
        graph = Graph(7, [(i, i + 1, 1.0) for i in range(6)])
        db = GraphDatabase(graph, NodePointSet({10: 1}))
        monitor = BichromaticRnnMonitor(db, {0: 0, 1: 3, 2: 6}, k=2)
        # the point's stand ranking is 0 (d=1), 1 (d=2), 2 (d=5)
        assert monitor.result(0) == [10]
        assert monitor.result(1) == [10]
        assert monitor.result(2) == []

    def test_insert_and_delete_events(self):
        graph = Graph(7, [(i, i + 1, 1.0) for i in range(6)])
        db = GraphDatabase(graph, NodePointSet({}))
        monitor = BichromaticRnnMonitor(db, {0: 0, 1: 6})
        events = monitor.insert(10, 1)
        assert events == [MembershipEvent(0, 10, "join")]
        events = monitor.delete(10)
        assert events == [MembershipEvent(0, 10, "leave")]
        assert monitor.total_influence() == 0

    def test_aggregates(self):
        graph = Graph(7, [(i, i + 1, 1.0) for i in range(6)])
        db = GraphDatabase(graph, NodePointSet({10: 1, 11: 2, 12: 5}))
        monitor = BichromaticRnnMonitor(db, {0: 0, 1: 6})
        assert monitor.counts() == {0: 2, 1: 1}
        assert monitor.total_influence() == 3
        assert monitor.most_influential() == (0, 2)


class TestBichromaticAgainstOracle:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 2])
    def test_random_streams_match_oracle(self, seed, k):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(8, 22), rng.randint(4, 20))
        query_nodes = rng.sample(range(graph.num_nodes), 3)
        queries = {qid: node for qid, node in enumerate(query_nodes)}
        db = GraphDatabase(graph, NodePointSet({}))
        monitor = BichromaticRnnMonitor(db, queries, k=k)

        live: dict[int, int] = {}
        next_pid = 100
        for _ in range(12):
            if live and rng.random() < 0.4:
                victim = rng.choice(sorted(live))
                del live[victim]
                monitor.delete(victim)
            else:
                taken = set(live.values())
                free = [n for n in range(graph.num_nodes) if n not in taken]
                if not free:
                    continue
                node = rng.choice(free)
                live[next_pid] = node
                monitor.insert(next_pid, node)
                next_pid += 1
            points = NodePointSet(dict(live))
            for qid in queries:
                expected = oracle_bichromatic(graph, points, queries, qid, k)
                assert monitor.result(qid) == expected
