"""Property test: monitor event streams replay to exact RkNN answers.

For random graphs and interleaved insert/delete bursts, the
:class:`~repro.streams.monitor.RnnMonitor`'s ``MembershipEvent``
stream must be *replayable*: a consumer that starts from the initial
results and applies only joins and leaves must hold, after every
burst, exactly the set a from-scratch ``rknn`` recomputation over the
surviving points produces for each standing query.  This is the
contract the serving tier relies on when it pushes membership events
to subscribers instead of result snapshots.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import GraphDatabase
from repro.points.points import NodePointSet
from repro.streams.monitor import RnnMonitor
from tests.conftest import build_random_graph


def _apply_events(replayed: dict[int, set[int]], events) -> None:
    """Apply a burst's events to the replayed result sets."""
    for event in events:
        members = replayed[event.query_id]
        if event.kind == "join":
            assert event.point_id not in members, (
                f"join for already-present point {event.point_id}"
            )
            members.add(event.point_id)
        else:
            assert event.kind == "leave"
            assert event.point_id in members, (
                f"leave for absent point {event.point_id}"
            )
            members.discard(event.point_id)


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_event_replay_matches_fresh_rknn_recomputation(data):
    seed = data.draw(st.integers(min_value=0, max_value=2**20), label="seed")
    rng = random.Random(seed)
    graph = build_random_graph(
        rng,
        data.draw(st.integers(min_value=8, max_value=20), label="nodes"),
        data.draw(st.integers(min_value=2, max_value=14), label="extra_edges"),
    )
    k = data.draw(st.integers(min_value=1, max_value=2), label="k")
    query_count = data.draw(st.integers(min_value=1, max_value=3),
                            label="queries")
    queries = {qid: node for qid, node in
               enumerate(rng.sample(range(graph.num_nodes), query_count))}

    db = GraphDatabase(graph, NodePointSet({}))
    monitor = RnnMonitor(db, queries, k=k)
    # the replayed state starts from the initial results (empty here)
    # and is maintained exclusively through membership events
    replayed = {qid: set(monitor.result(qid)) for qid in queries}

    live: dict[int, int] = {}
    next_pid = 100
    bursts = data.draw(st.integers(min_value=1, max_value=4), label="bursts")
    for _ in range(bursts):
        burst_len = data.draw(st.integers(min_value=1, max_value=5),
                              label="burst_len")
        for _ in range(burst_len):
            delete = live and data.draw(st.booleans(), label="delete?")
            if delete:
                victim = data.draw(st.sampled_from(sorted(live)),
                                   label="victim")
                del live[victim]
                events = monitor.delete(victim)
            else:
                free = [node for node in range(graph.num_nodes)
                        if node not in set(live.values())]
                if not free:
                    continue
                node = data.draw(st.sampled_from(free), label="node")
                live[next_pid] = node
                events = monitor.insert(next_pid, node)
                next_pid += 1
            _apply_events(replayed, events)

        # after every burst: replayed state == from-scratch recomputation
        fresh = GraphDatabase(graph, NodePointSet(dict(live)))
        for qid, node in queries.items():
            expected = fresh.rknn(node, k, method="eager").points
            assert sorted(replayed[qid]) == list(expected), (
                f"seed={seed} qid={qid} node={node} live={live}"
            )
            # the events also kept the monitor's own view consistent
            assert monitor.result(qid) == sorted(replayed[qid])


@given(st.integers(min_value=0, max_value=200))
@settings(max_examples=15, deadline=None)
def test_refresh_without_mutation_emits_nothing(seed):
    """`refresh()` is idempotent: no database change, no events."""
    rng = random.Random(seed)
    graph = build_random_graph(rng, rng.randint(6, 14), rng.randint(2, 8))
    placement = {}
    for pid in range(rng.randint(0, 4)):
        free = [n for n in range(graph.num_nodes)
                if n not in placement.values()]
        placement[100 + pid] = rng.choice(free)
    db = GraphDatabase(graph, NodePointSet(placement))
    monitor = RnnMonitor(db, {0: rng.randrange(graph.num_nodes)}, k=1)
    before = monitor.result(0)
    assert monitor.refresh() == []
    assert monitor.result(0) == before
