"""Tracer / Span / render_trace unit tests."""

import json
import threading

from repro.obs import NOOP_TRACER, Span, Tracer, render_trace
from repro.obs.trace import NoopTracer


class TestSpan:
    def test_payload_shape(self):
        span = Span(3, 1, "execute.rknn", start=0.5, duration=0.25,
                    attributes={"io": 4})
        payload = span.to_payload()
        assert payload == {
            "span_id": 3,
            "parent_id": 1,
            "name": "execute.rknn",
            "start_ms": 500.0,
            "duration_ms": 250.0,
            "attributes": {"io": 4},
        }

    def test_set_returns_span_and_overwrites(self):
        span = Span(1, None, "x", 0.0)
        assert span.set(io=1).set(io=2) is span
        assert span.attributes == {"io": 2}


class TestTracer:
    def test_spans_nest_through_the_thread_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # completion order: inner closes first
        assert [span.name for span in tracer.spans] == ["inner", "outer"]

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            parent = tracer.current_id()

            def work():
                with tracer.span("worker", parent=parent):
                    with tracer.span("leaf"):
                        pass

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["worker"].parent_id == root.span_id
        assert by_name["leaf"].parent_id == by_name["worker"].span_id

    def test_parent_none_forces_a_root(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("detached", parent=None) as detached:
                pass
        assert detached.parent_id is None

    def test_add_records_markers_without_stack_changes(self):
        tracer = Tracer()
        with tracer.span("kernel") as kernel:
            tracer.add("execute.rknn", parent=kernel.span_id,
                       duration=0.001, io=2)
            assert tracer.current_id() == kernel.span_id
        marker = tracer.spans[0]
        assert marker.name == "execute.rknn"
        assert marker.parent_id == kernel.span_id
        assert marker.duration == 0.001

    def test_attribute_total_sums_only_carrying_spans(self):
        tracer = Tracer()
        with tracer.span("root"):
            tracer.add("a", io=3)
            tracer.add("b", io=4)
            tracer.add("c")  # no io attribute
        assert tracer.attribute_total("io") == 7

    def test_payload_is_json_serializable(self):
        tracer = Tracer()
        with tracer.span("root", backend="disk"):
            pass
        payload = json.loads(json.dumps(tracer.to_payload()))
        assert payload["spans"][0]["name"] == "root"
        assert payload["spans"][0]["attributes"] == {"backend": "disk"}


class TestNoopTracer:
    def test_disabled_and_inert(self):
        assert NOOP_TRACER.enabled is False
        assert isinstance(NOOP_TRACER, NoopTracer)
        with NOOP_TRACER.span("anything", x=1) as span:
            span.set(io=5)
        assert span.span_id is None
        assert NOOP_TRACER.add("marker") is span
        assert NOOP_TRACER.spans == ()
        assert NOOP_TRACER.to_payload() == {"spans": []}
        assert NOOP_TRACER.current_id() is None


class TestRenderTrace:
    def test_indents_children_and_sorts_by_start(self):
        spans = [
            {"span_id": 1, "parent_id": None, "name": "root",
             "start_ms": 0.0, "duration_ms": 5.0, "attributes": {}},
            {"span_id": 3, "parent_id": 1, "name": "late",
             "start_ms": 2.0, "duration_ms": 1.0, "attributes": {}},
            {"span_id": 2, "parent_id": 1, "name": "early",
             "start_ms": 1.0, "duration_ms": 1.0, "attributes": {"io": 2}},
        ]
        lines = render_trace({"spans": spans})
        assert lines[0].startswith("root 5.000 ms")
        assert lines[1].startswith("  early 1.000 ms")
        assert "io=2" in lines[1]
        assert lines[2].startswith("  late 1.000 ms")

    def test_accepts_tracer_payload_and_bare_list(self):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        from_tracer = render_trace(tracer)
        from_payload = render_trace(tracer.to_payload())
        from_list = render_trace(tracer.to_payload()["spans"])
        assert from_tracer == from_payload == from_list
        assert len(from_tracer) == 1

    def test_orphaned_parents_render_as_roots(self):
        spans = [{"span_id": 9, "parent_id": 404, "name": "orphan",
                  "start_ms": 0.0, "duration_ms": 1.0, "attributes": {}}]
        lines = render_trace(spans)
        assert lines == ["orphan 1.000 ms"]

    def test_empty_trace_renders_no_lines(self):
        assert render_trace({"spans": []}) == []
