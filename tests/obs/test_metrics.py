"""MetricsRegistry / Counter / Gauge / Histogram / parser unit tests."""

import math

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)


class TestCounter:
    def test_owned_counter_increments(self):
        counter = Counter("served")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_owned_counter_refuses_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("served").inc(-1)

    def test_callback_counter_reads_source_and_refuses_inc(self):
        source = {"n": 7}
        counter = Counter("served", fn=lambda: source["n"])
        assert counter.value == 7
        source["n"] = 9
        assert counter.value == 9
        with pytest.raises(TypeError, match="callback-backed"):
            counter.inc()

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("bad name")


class TestGauge:
    def test_owned_gauge_set(self):
        gauge = Gauge("depth")
        gauge.set(12)
        assert gauge.value == 12
        gauge.set(3)
        assert gauge.value == 3

    def test_callback_gauge_refuses_set(self):
        gauge = Gauge("depth", fn=lambda: 2)
        assert gauge.value == 2
        with pytest.raises(TypeError, match="callback-backed"):
            gauge.set(5)


class TestHistogram:
    def test_observations_land_in_log_buckets(self):
        histogram = Histogram("latency", buckets=(0.001, 0.01, 0.1))
        histogram.observe(0.0005)
        histogram.observe(0.05)
        histogram.observe(5.0)  # beyond the last bound -> +Inf bucket
        pairs = histogram.bucket_counts()
        assert pairs[0] == (0.001, 1)
        assert pairs[1] == (0.01, 1)   # cumulative
        assert pairs[2] == (0.1, 2)
        assert pairs[3] == (math.inf, 3)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.0505)

    def test_quantiles_interpolate_within_buckets(self):
        histogram = Histogram("latency", buckets=(0.01, 0.02))
        histogram.observe(0.015, count=100)
        # all mass in the (0.01, 0.02] bucket: p50 lands mid-bucket
        assert 0.01 < histogram.quantile(0.5) <= 0.02
        assert histogram.quantile(1.0) == pytest.approx(0.02)

    def test_quantile_clamps_to_last_finite_bound(self):
        histogram = Histogram("latency", buckets=(0.01,))
        histogram.observe(10.0)
        assert histogram.quantile(0.99) == 0.01

    def test_empty_histogram_reports_zero(self):
        histogram = Histogram("latency")
        assert histogram.quantile(0.5) == 0.0
        assert histogram.to_dict()["count"] == 0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("latency").quantile(1.5)

    def test_percentiles_are_ordered_and_in_ms(self):
        histogram = Histogram("latency", buckets=(0.001, 0.01, 0.1, 1.0))
        for value, count in ((0.002, 90), (0.05, 9), (0.5, 1)):
            histogram.observe(value, count=count)
        tail = histogram.percentiles()
        assert tail["p50_ms"] <= tail["p95_ms"] <= tail["p99_ms"]
        assert tail["p50_ms"] > 0.0


class TestMetricsRegistry:
    def build(self) -> MetricsRegistry:
        registry = MetricsRegistry(namespace="t")
        counter = registry.counter("served", "queries answered")
        counter.inc(3)
        registry.gauge("depth", fn=lambda: 4)
        registry.histogram("batch_seconds",
                           buckets=(0.001, 0.01)).observe(0.005)
        return registry

    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("served")
        with pytest.raises(ValueError, match="duplicate"):
            registry.gauge("served")

    def test_to_dict_is_flat_json(self):
        body = self.build().to_dict()
        assert body["served"] == 3
        assert body["depth"] == 4
        assert body["batch_seconds"]["count"] == 1
        assert set(body["batch_seconds"]) == {
            "count", "sum_seconds", "p50_ms", "p95_ms", "p99_ms"}

    def test_prometheus_rendering_round_trips(self):
        registry = self.build()
        text = registry.render_prometheus()
        assert "# TYPE t_served_total counter" in text
        assert "# HELP t_served_total queries answered" in text
        assert "# TYPE t_depth gauge" in text
        assert "# TYPE t_batch_seconds histogram" in text
        samples = parse_prometheus_text(text)
        assert samples["t_served_total"] == 3.0
        assert samples["t_depth"] == 4.0
        assert samples['t_batch_seconds_bucket{le="+Inf"}'] == 1.0
        assert samples["t_batch_seconds_count"] == 1.0
        assert samples["t_batch_seconds_sum"] == pytest.approx(0.005)

    def test_invalid_namespace_rejected(self):
        with pytest.raises(ValueError, match="invalid namespace"):
            MetricsRegistry(namespace="9bad ns")


class TestParsePrometheusText:
    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus_text("this is { not exposition\n")

    def test_non_numeric_value_raises(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_prometheus_text("metric_name not_a_number\n")

    def test_empty_document_raises(self):
        with pytest.raises(ValueError, match="no samples"):
            parse_prometheus_text("# HELP only comments\n")

    def test_labels_kept_verbatim_in_key(self):
        samples = parse_prometheus_text('m_bucket{le="0.5"} 2\nm_count 2\n')
        assert samples == {'m_bucket{le="0.5"}': 2.0, "m_count": 2.0}
