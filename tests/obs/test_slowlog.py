"""SlowQueryLog gating, JSONL entries, and engine integration."""

import json
from types import SimpleNamespace

import pytest

from repro import GraphDatabase, NodePointSet, QuerySpec
from repro.obs import SlowQueryLog


def fake_result(io=3, edges=40, nodes=12, prunes=2):
    counters = SimpleNamespace(edges_expanded=edges, nodes_visited=nodes,
                               oracle_prunes=prunes)
    return SimpleNamespace(io=io, counters=counters)


def ring_db(nodes: int = 24) -> GraphDatabase:
    edges = [(i, (i + 1) % nodes, 1.0) for i in range(nodes)]
    points = NodePointSet({pid: node for pid, node in
                           enumerate(range(0, nodes, 3))})
    return GraphDatabase.from_edges(edges, points)


class TestSlowQueryLog:
    def test_negative_threshold_rejected(self, tmp_path):
        with pytest.raises(ValueError, match=">= 0"):
            SlowQueryLog(tmp_path / "slow.jsonl", threshold_ms=-1.0)

    def test_fast_queries_are_gated_out(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(path, threshold_ms=50.0)
        spec = QuerySpec(kind="rknn", query=1, k=2, method="eager")
        written = log.record(spec, fake_result(), 0.001, backend="disk")
        assert written is False
        assert log.recorded == 0
        assert not path.exists()

    def test_slow_query_writes_one_jsonl_entry(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(path, threshold_ms=50.0)
        spec = QuerySpec(kind="rknn", query=7, k=3, method="lazy")
        written = log.record(spec, fake_result(io=5, edges=90), 0.25,
                             backend="compact", via="kernel")
        assert written is True
        assert log.recorded == 1
        entry = json.loads(path.read_text().splitlines()[0])
        assert entry["kind"] == "rknn"
        assert entry["query"] == 7
        assert entry["k"] == 3
        assert entry["method"] == "lazy"
        assert entry["elapsed_ms"] == 250.0
        assert entry["io"] == 5
        assert entry["edges_expanded"] == 90
        assert entry["backend"] == "compact"
        assert entry["via"] == "kernel"
        assert entry["ts"] > 0

    def test_zero_threshold_records_everything(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(path, threshold_ms=0.0)
        spec = QuerySpec(kind="knn", query=0, k=1)
        for _ in range(3):
            assert log.record(spec, fake_result(), 0.0)
        assert log.recorded == 3
        assert len(path.read_text().splitlines()) == 3

    def test_queryless_spec_falls_back_to_its_route(self, tmp_path):
        log = SlowQueryLog(tmp_path / "slow.jsonl", threshold_ms=0.0)
        spec = SimpleNamespace(kind="continuous", query=None,
                               route=(2, 3, 4), k=1, method="eager")
        log.record(spec, fake_result(), 0.0)
        entry = json.loads((tmp_path / "slow.jsonl").read_text())
        assert entry["query"] == [2, 3, 4]


class TestEngineIntegration:
    def test_engine_records_executed_specs(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(path, threshold_ms=0.0)
        db = ring_db()
        engine = db.engine(slow_log=log)
        specs = [QuerySpec(kind="rknn", query=node, k=2, method="eager")
                 for node in (0, 6, 12)]
        engine.run_batch(specs)
        assert log.recorded == 3
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert sorted(entry["query"] for entry in entries) == [0, 6, 12]
        assert all(entry["backend"] == engine.backend for entry in entries)

    def test_cache_hits_are_not_logged(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(path, threshold_ms=0.0)
        db = ring_db()
        engine = db.engine(slow_log=log)
        spec = QuerySpec(kind="rknn", query=0, k=2, method="eager")
        engine.run(spec)
        engine.run(spec)  # cache hit: no execution, nothing to log
        assert log.recorded == 1

    def test_default_engine_has_no_slow_log(self):
        engine = ring_db().engine()
        assert engine.slow_log is None
