"""Serve conformance: every backend, mixed workload, exact answers.

The acceptance bar of the serving tier: under a concurrent mixed
workload (queries racing insert/delete mutations) over **every**
backend of the conformance matrix -- disk, sharded, compact, oracle on
and off -- each server response must be identical to a direct facade
call at the generation the response was computed at, and no response
may carry a generation the mutation log never produced.
"""

import threading
import time

import pytest

from repro.serve import ServeClient, serve_in_thread

from tests.serve.conftest import (
    BACKENDS,
    a_route,
    build_db,
    build_inputs,
    free_nodes,
)


@pytest.fixture(scope="module")
def inputs():
    return build_inputs()


def _query_payloads(graph):
    route = a_route(graph)
    payloads = []
    for node in range(0, 60, 7):
        payloads.append({"op": "query", "kind": "rknn", "query": node,
                         "k": 2, "method": "eager"})
        payloads.append({"op": "query", "kind": "knn", "query": node + 1,
                         "k": 2})
    payloads.append({"op": "query", "kind": "range", "query": 40, "k": 2,
                     "radius": 12.0})
    payloads.append({"op": "query", "kind": "rknn", "query": 9, "k": 1,
                     "method": "lazy"})
    payloads.append({"op": "query", "kind": "continuous", "route": route,
                     "k": 1, "method": "eager"})
    return payloads


def _direct_answer(db, payload):
    kind = payload["kind"]
    if kind == "rknn":
        return list(db.rknn(payload["query"], payload["k"],
                            method=payload["method"]).points)
    if kind == "knn":
        return [[p, d] for p, d in db.knn(payload["query"],
                                          payload["k"]).neighbors]
    if kind == "range":
        return [[p, d] for p, d in db.range_nn(
            payload["query"], payload["k"], payload["radius"]).neighbors]
    return list(db.continuous_rknn(payload["route"], payload["k"],
                                   method=payload["method"]).points)


def _answer_of(response):
    return response.get("points", response.get("neighbors"))


@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKENDS)
def test_served_answers_match_direct_calls_per_generation(backend, inputs):
    graph, placement = inputs
    db = build_db(backend, graph, placement)
    payloads = _query_payloads(graph)
    targets = free_nodes(graph, placement, 3)
    mutations = [("insert", 700 + i, node) for i, node in enumerate(targets)]
    mutations.append(("delete", 700, None))

    records = []  # (payload, response)
    with serve_in_thread(db, window=0.002, max_batch=8) as handle:
        stop = threading.Event()

        def hammer():
            with ServeClient(handle.host, handle.port) as client:
                while not stop.is_set():
                    for payload, response in zip(payloads,
                                                 client.pipeline(payloads)):
                        records.append((payload, response))

        thread = threading.Thread(target=hammer)
        thread.start()
        with ServeClient(handle.host, handle.port) as mutator:
            for op, pid, node in mutations:
                watermark = len(records) + 5
                deadline = time.monotonic() + 10
                while len(records) < watermark and time.monotonic() < deadline:
                    time.sleep(0.001)
                if op == "insert":
                    assert mutator.insert(pid, node)["status"] == "ok"
                else:
                    assert mutator.delete(pid)["status"] == "ok"
        stop.set()
        thread.join(timeout=30)

    assert records, f"{backend}: no queries completed"

    # rebuild a reference facade per generation by replaying the log
    placement_now = dict(placement)
    references = {0: build_db(backend, graph, placement_now)}
    for generation, (op, pid, node) in enumerate(mutations, start=1):
        if op == "insert":
            placement_now[pid] = node
        else:
            del placement_now[pid]
        references[generation] = build_db(backend, graph, dict(placement_now))

    seen = set()
    for payload, response in records:
        assert response["status"] == "ok", (backend, payload, response)
        generation = response["generation"]
        assert generation in references, (
            f"{backend}: response claims unknown generation {generation}"
        )
        seen.add(generation)
        expected = _direct_answer(references[generation], payload)
        assert _answer_of(response) == expected, (
            f"{backend}: {payload} diverged at generation {generation}"
        )
    assert len(seen) > 1, f"{backend}: workload never raced a mutation"
