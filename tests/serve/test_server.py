"""RknnServer: protocol surface, batching, backpressure, generation swap."""

import json
import threading
import time

import pytest

from repro.api import GraphDatabase
from repro.obs import SlowQueryLog, parse_prometheus_text
from repro.points.points import NodePointSet
from repro.serve import ServeClient, http_get, http_get_text, serve_in_thread
from repro.serve.server import GenerationGate

from tests.serve.conftest import a_route, build_db, build_inputs, free_nodes


@pytest.fixture(scope="module")
def inputs():
    return build_inputs()


@pytest.fixture
def db(inputs):
    graph, placement = inputs
    return build_db("disk", graph, placement)


@pytest.fixture
def reference(inputs):
    graph, placement = inputs
    return build_db("disk", graph, placement)


class TestQueries:
    def test_rknn_matches_direct_call(self, db, reference):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                response = client.rknn(5, k=2)
        direct = reference.rknn(5, 2, method="eager")
        assert response["status"] == "ok"
        assert response["generation"] == 0
        assert response["points"] == list(direct.points)

    def test_knn_serializes_exact_distances(self, db, reference):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                response = client.knn(7, k=3)
        direct = reference.knn(7, 3)
        assert response["neighbors"] == [[p, d] for p, d in direct.neighbors]

    def test_range_and_continuous_kinds(self, db, reference, inputs):
        graph, _ = inputs
        route = a_route(graph)
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                ranged = client.query("range", 5, k=2, radius=9.0)
                cont = client.query("continuous", route=route, k=1,
                                    method="eager")
        assert ranged["neighbors"] == [
            [p, d] for p, d in reference.range_nn(5, 2, 9.0).neighbors
        ]
        assert cont["points"] == list(
            reference.continuous_rknn(route, 1, method="eager").points
        )

    def test_pipelined_queries_coalesce(self, db):
        with serve_in_thread(db, window=0.02, max_batch=64) as handle:
            with ServeClient(handle.host, handle.port) as client:
                requests = [{"op": "query", "kind": "rknn", "query": q, "k": 1}
                            for q in range(12)]
                responses = client.pipeline(requests)
                metrics = client.metrics()
        assert all(r["status"] == "ok" for r in responses)
        assert metrics["admission"]["batches"] < 12  # requests shared batches
        assert metrics["admission"]["coalesced"] > 0

    def test_request_id_is_echoed(self, db):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                response = client.request(
                    {"op": "query", "kind": "knn", "query": 3, "id": "req-7"}
                )
        assert response["id"] == "req-7"


class TestErrors:
    def test_bad_request_keeps_connection_usable(self, db):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                bad = client.request({"op": "query", "kind": "walk", "query": 1})
                assert bad["status"] == "error"
                assert "walk" in bad["error"]
                good = client.rknn(5, k=1)
                assert good["status"] == "ok"

    def test_malformed_json_is_an_error_response(self, db):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client._file.write(b"this is not json\n")
                client._file.flush()
                response = client.recv()
        assert response["status"] == "error"

    def test_unknown_op_is_an_error(self, db):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                response = client.request({"op": "reboot"})
        assert response["status"] == "error"
        assert "reboot" in response["error"]

    def test_out_of_range_query_is_an_error(self, db):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                response = client.rknn(10_000, k=1)
        assert response["status"] == "error"

    def test_bad_query_cannot_fail_its_coalesced_neighbors(self, db,
                                                           reference):
        """One tenant's out-of-range query must not error the valid
        queries sharing its coalescing window."""
        with serve_in_thread(db, window=0.05, max_batch=8) as handle:
            with ServeClient(handle.host, handle.port) as client:
                bad, good = client.pipeline([
                    {"op": "query", "kind": "rknn", "query": 10_000, "k": 1},
                    {"op": "query", "kind": "rknn", "query": 5, "k": 2},
                ])
        assert bad["status"] == "error"
        assert good["status"] == "ok"
        assert good["points"] == list(reference.rknn(5, 2,
                                                     method="eager").points)


class TestBackpressure:
    def test_overload_sheds_with_explicit_response(self, db):
        with serve_in_thread(db, window=0.05, max_batch=64,
                             max_queue=2) as handle:
            with ServeClient(handle.host, handle.port) as client:
                requests = [{"op": "query", "kind": "rknn", "query": q, "k": 1}
                            for q in range(10)]
                responses = client.pipeline(requests)
                metrics = client.metrics()
        statuses = [r["status"] for r in responses]
        assert statuses.count("overloaded") >= 1
        assert statuses.count("ok") >= 2
        assert all(s in ("ok", "overloaded") for s in statuses)
        shed = [r for r in responses if r["status"] == "overloaded"]
        assert all(r["retry"] for r in shed)
        assert metrics["admission"]["shed"] == len(shed)


class TestMutationsAndGenerations:
    def test_mutations_bump_generation(self, db, inputs):
        graph, placement = inputs
        target = free_nodes(graph, placement, 1)[0]
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                inserted = client.insert(500, target)
                assert inserted["status"] == "ok"
                assert inserted["generation"] == 1
                deleted = client.delete(500)
                assert deleted["generation"] == 2
                query = client.rknn(5, k=1)
                assert query["generation"] == 2

    def test_insert_changes_answers_and_is_visible(self, db, reference, inputs):
        graph, placement = inputs
        target = free_nodes(graph, placement, 1)[0]
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                before = client.knn(target, k=1)
                client.insert(500, target)
                after = client.knn(target, k=1)
        reference.insert_point(500, target)
        assert after["neighbors"][0][0] == 500
        assert after["neighbors"] == [
            [p, d] for p, d in reference.knn(target, 1).neighbors
        ]
        assert before["generation"] == 0 and after["generation"] == 1

    def test_pipelined_mutation_barriers_later_requests(self, db, reference,
                                                        inputs):
        """Read-your-writes: a query pipelined behind an insert on the
        same connection must observe the bumped generation."""
        graph, placement = inputs
        target = free_nodes(graph, placement, 1)[0]
        burst = [
            {"op": "query", "kind": "knn", "query": target, "k": 1},
            {"op": "insert", "pid": 500, "location": target},
            {"op": "query", "kind": "knn", "query": target, "k": 1},
            {"op": "delete", "pid": 500},
            {"op": "query", "kind": "knn", "query": target, "k": 1},
        ]
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                before, ins, mid, del_, after = client.pipeline(burst)
        assert [r["generation"] for r in (before, ins, mid, del_, after)] \
            == [0, 1, 1, 2, 2]
        assert mid["neighbors"][0][0] == 500   # insert visible
        assert after["neighbors"] == before["neighbors"]  # delete visible
        assert before["neighbors"] == [
            [p, d] for p, d in reference.knn(target, 1).neighbors
        ]

    def test_duplicate_insert_is_a_clean_error(self, db, inputs):
        _, placement = inputs
        taken = next(iter(placement.values()))
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                response = client.insert(501, taken)
        assert response["status"] == "error"


class TestSubscriptions:
    def test_membership_events_are_pushed(self, db, inputs):
        graph, placement = inputs
        target = free_nodes(graph, placement, 1)[0]
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as subscriber, \
                    ServeClient(handle.host, handle.port) as mutator:
                ack = subscriber.subscribe({0: target}, k=1)
                assert ack["status"] == "ok"
                assert ack["subscribed"] == [0]
                mutator.insert(502, target)
                joined = subscriber.recv()
                mutator.delete(502)
                left = subscriber.recv()
        assert joined == {"event": "membership", "generation": 1,
                          "query_id": 0, "point_id": 502, "kind": "join"}
        assert left["kind"] == "leave" and left["generation"] == 2

    def test_interleaved_events_do_not_desync_pipelining(self, db, inputs):
        """Events pushed to a subscribed connection must not consume
        the response slots of requests pipelined on it."""
        graph, placement = inputs
        target = free_nodes(graph, placement, 1)[0]
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                ack = client.subscribe({0: target}, k=1)
                assert ack["status"] == "ok"
                responses = client.pipeline([
                    {"op": "insert", "pid": 502, "location": target},
                    {"op": "query", "kind": "knn", "query": target, "k": 1},
                    {"op": "delete", "pid": 502},
                ])
        assert [r["status"] for r in responses] == ["ok"] * 3
        assert responses[1]["neighbors"][0][0] == 502
        assert [(e["kind"], e["point_id"]) for e in client.events] \
            == [("join", 502), ("leave", 502)]

    def test_subscribe_ack_carries_initial_results(self, db, reference):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                ack = client.subscribe({0: 5, 1: 9}, k=1)
        monitor_expected = reference.rknn(5, 1, method="eager")
        assert ack["results"]["0"] == list(monitor_expected.points)


class TestIntrospection:
    def test_metrics_surface_counters_and_cache(self, db):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client.rknn(5, k=2)
                client.rknn(5, k=2)  # second call hits the result cache
                metrics = client.metrics()
        assert metrics["queries_served"] == 2
        assert metrics["cache"]["hits"] >= 1
        assert metrics["counters"]["edges_expanded"] > 0
        assert metrics["backend"] == "disk"
        assert metrics["queue_depth"] == 0

    def test_healthz_over_protocol_and_http(self, db):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                health = client.healthz()
            http_health = http_get(handle.host, handle.port, "/healthz")
            http_metrics = http_get(handle.host, handle.port, "/metrics")
        assert health["status"] == "ok"
        assert http_health["generation"] == health["generation"]
        assert "counters" in http_metrics

    def test_http_head_answers_headers_only(self, db):
        import socket

        with serve_in_thread(db) as handle:
            with socket.create_connection((handle.host, handle.port),
                                          timeout=10) as sock:
                sock.sendall(b"HEAD /healthz HTTP/1.1\r\nHost: x\r\n"
                             b"Connection: close\r\n\r\n")
                data = b""
                while chunk := sock.recv(65536):
                    data += chunk
        header, _, body = data.partition(b"\r\n\r\n")
        assert b"200 OK" in header and b"Content-Length" in header
        assert body == b""

    def test_http_unknown_path_is_404(self, db):
        with serve_in_thread(db) as handle:
            with pytest.raises(ConnectionError, match="404"):
                http_get(handle.host, handle.port, "/nope")


class TestObservability:
    def test_prometheus_exposition_parses(self, db):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client.rknn(5, k=2)
            text = http_get_text(handle.host, handle.port,
                                 "/metrics?format=prometheus")
        samples = parse_prometheus_text(text)
        assert samples["repro_queries_served_total"] == 1.0
        assert samples["repro_edges_expanded_total"] > 0.0
        inf_key = 'repro_batch_seconds_bucket{le="+Inf"}'
        assert samples[inf_key] == samples["repro_batch_seconds_count"]

    def test_traced_query_carries_span_tree(self, db, reference):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                body = client.request({"op": "query", "kind": "rknn",
                                       "query": 9, "k": 2,
                                       "method": "eager", "trace": True})
                plain = client.rknn(9, k=2)
        assert body["status"] == "ok"
        assert body["points"] == list(reference.rknn(9, 2).points)
        names = {span["name"] for span in body["trace"]["spans"]}
        assert {"engine.run_batch", "execute.rknn"} <= names
        assert "trace" not in plain  # untraced requests stay trace-free

    def test_explain_statement_answers_plan_and_trace(self, db, reference):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                body = client.request({
                    "op": "query",
                    "statement":
                        "EXPLAIN SELECT * FROM rknn(query=5, k=2)",
                })
        assert body["status"] == "ok"
        assert body["explain"] is True
        assert body["plan"]["backend"] == "disk"
        assert body["points"] == list(reference.rknn(5, 2).points)
        names = {span["name"] for span in body["trace"]["spans"]}
        assert "execute.rknn" in names

    def test_statement_refuses_spec_fields(self, db):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                body = client.request({
                    "op": "query", "kind": "rknn", "query": 5, "k": 2,
                    "statement": "SELECT * FROM rknn(query=5, k=2)",
                })
        assert body["status"] == "error"
        assert "no spec fields" in body["error"]

    def test_slow_query_log_records_served_queries(self, db, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(path, threshold_ms=0.0)
        with serve_in_thread(db, slow_log=log) as handle:
            with ServeClient(handle.host, handle.port) as client:
                client.rknn(5, k=2)
        assert log.recorded == 1
        entry = json.loads(path.read_text().splitlines()[0])
        assert entry["kind"] == "rknn"
        assert entry["query"] == 5
        assert entry["backend"] == "disk"


class TestGenerationGate:
    def test_writer_waits_for_readers_and_blocks_new_ones(self):
        import asyncio

        log = []

        async def scenario():
            gate = GenerationGate()
            release_reader = asyncio.Event()

            async def reader(name, wait):
                async with gate.read_lease():
                    log.append(f"{name}-in")
                    if wait:
                        await release_reader.wait()
                log.append(f"{name}-out")

            async def writer():
                async with gate.write_lease():
                    log.append("write")

            first = asyncio.ensure_future(reader("r1", wait=True))
            await asyncio.sleep(0.01)
            write = asyncio.ensure_future(writer())
            await asyncio.sleep(0.01)
            second = asyncio.ensure_future(reader("r2", wait=False))
            await asyncio.sleep(0.01)
            # writer preference: r2 must not slip in while the writer waits
            assert "r2-in" not in log and "write" not in log
            release_reader.set()
            await asyncio.gather(first, write, second)

        asyncio.run(scenario())
        assert log.index("write") > log.index("r1-out")
        assert log.index("r2-in") > log.index("write")


class TestConcurrentMixedWorkload:
    def test_no_response_mixes_generations(self, inputs):
        """Queries racing mutations: every answer matches a direct
        facade call at the generation the response claims."""
        graph, placement = inputs
        db = build_db("disk", graph, placement)
        targets = free_nodes(graph, placement, 4)
        mutations = [("insert", 600 + i, node) for i, node in enumerate(targets)]
        mutations += [("delete", 600 + i, None) for i in range(2)]
        query_nodes = list(range(0, 40, 3))
        responses = []

        with serve_in_thread(db, window=0.002, max_batch=8) as handle:
            stop = threading.Event()

            def hammer():
                with ServeClient(handle.host, handle.port) as client:
                    while not stop.is_set():
                        for node in query_nodes:
                            responses.append(
                                (node, client.rknn(node, k=2))
                            )

            thread = threading.Thread(target=hammer)
            thread.start()
            with ServeClient(handle.host, handle.port) as mutator:
                for op, pid, node in mutations:
                    # let the query stream make progress at this
                    # generation before swapping to the next one
                    watermark = len(responses) + 3
                    deadline = time.monotonic() + 10
                    while (len(responses) < watermark
                           and time.monotonic() < deadline):
                        time.sleep(0.001)
                    if op == "insert":
                        assert mutator.insert(pid, node)["status"] == "ok"
                    else:
                        assert mutator.delete(pid)["status"] == "ok"
            stop.set()
            thread.join(timeout=30)

        assert responses, "the query thread never completed a request"
        # rebuild the point set at every generation and demand equality
        references = {}
        placement_now = dict(placement)
        references[0] = GraphDatabase(graph, NodePointSet(dict(placement_now)))
        for generation, (op, pid, node) in enumerate(mutations, start=1):
            if op == "insert":
                placement_now[pid] = node
            else:
                del placement_now[pid]
            references[generation] = GraphDatabase(
                graph, NodePointSet(dict(placement_now))
            )
        seen_generations = set()
        for node, response in responses:
            assert response["status"] == "ok"
            generation = response["generation"]
            seen_generations.add(generation)
            expected = references[generation].rknn(node, 2, method="eager")
            assert response["points"] == list(expected.points), (
                f"node {node} at generation {generation}"
            )
        assert len(seen_generations) > 1, "workload never raced a mutation"


class TestLifecycle:
    def test_request_stop_before_start_is_not_lost(self, db):
        """A stop requested before start() has created the event loop
        must be honored the moment the server starts (the pre-start
        race: a supervisor shutting down while boot is in flight)."""
        import asyncio

        from repro.serve.server import RknnServer

        server = RknnServer(db)
        server.request_stop()  # no loop, no stop event yet

        async def boot():
            # run() binds, then serve_until_stopped() must return at
            # once instead of waiting forever on the stop event
            await asyncio.wait_for(server.run("127.0.0.1", 0), timeout=10)

        asyncio.run(boot())

    def test_request_stop_from_another_thread_after_start(self, db):
        """The existing post-start path keeps working: request_stop()
        from a foreign thread stops a running server."""
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                assert client.healthz()["status"] == "ok"
        # serve_in_thread's exit path is itself a cross-thread
        # request_stop(); reaching this line means it returned
