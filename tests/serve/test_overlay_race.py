"""Linearizability of the served delta overlay under concurrent writes.

The tentpole claim of the overlay serving mode: writers append while
readers read -- no drain -- and every response is stamped with the
exact ``(base_generation, delta_epoch)`` snapshot that produced it.
The race test hammers a server with pipelined query clients while a
mutator thread interleaves point mutations and forced compactions,
then replays every stamped response against a from-scratch reference
database of that snapshot.  Two global facts close the argument:

* every stamp any reader observed is one the serialized write log
  actually produced (no torn or invented snapshots);
* the gate drained exactly once per compaction -- plain writes never
  blocked a reader.

The fast tests underneath pin the protocol surface of the overlay
mode: stamp fields on every response, the ``compact`` op, and its
rejection on non-overlay backends.
"""

import threading
import time

import pytest

from repro.compact import CompactDatabase
from repro.points.points import NodePointSet
from repro.serve import ServeClient, serve_in_thread

from tests.serve.conftest import build_db, build_inputs, free_nodes


@pytest.fixture(scope="module")
def inputs():
    return build_inputs()


@pytest.fixture
def db(inputs):
    graph, placement = inputs
    return build_db("compact", graph, placement)


def _query_payloads():
    payloads = []
    for node in range(0, 60, 9):
        payloads.append({"op": "query", "kind": "rknn", "query": node,
                         "k": 2, "method": "eager"})
        payloads.append({"op": "query", "kind": "knn", "query": node + 1,
                         "k": 2})
    return payloads


def _direct_answer(db, payload):
    if payload["kind"] == "rknn":
        return list(db.rknn(payload["query"], payload["k"],
                            method=payload["method"]).points)
    return [[p, d] for p, d in db.knn(payload["query"],
                                      payload["k"]).neighbors]


def _await_progress(records, count):
    """Block until the hammer threads log ``count`` more responses."""
    watermark = len(records) + count
    deadline = time.monotonic() + 10
    while len(records) < watermark and time.monotonic() < deadline:
        time.sleep(0.001)


@pytest.mark.slow
def test_stamped_responses_replay_against_the_write_log(inputs):
    graph, placement = inputs
    db = build_db("compact", graph, placement)
    payloads = _query_payloads()
    targets = free_nodes(graph, placement, 4)
    script = [("insert", 700 + i, node) for i, node in enumerate(targets)]
    script[2:2] = [("compact", None, None)]
    script.append(("delete", 700, None))
    script.append(("compact", None, None))

    records = []  # (payload, response) from the hammer threads
    write_log = []  # (kind, pid, node, response) in apply order
    with serve_in_thread(db, window=0.002, max_batch=8) as handle:
        stop = threading.Event()

        def hammer():
            with ServeClient(handle.host, handle.port) as client:
                while not stop.is_set():
                    for pair in zip(payloads, client.pipeline(payloads)):
                        records.append(pair)

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for thread in threads:
            thread.start()
        with ServeClient(handle.host, handle.port) as mutator:
            for kind, pid, node in script:
                _await_progress(records, 5)
                if kind == "insert":
                    response = mutator.insert(pid, node)
                elif kind == "delete":
                    response = mutator.delete(pid)
                else:
                    response = mutator.compact()
                assert response["status"] == "ok", response
                write_log.append((kind, pid, node, response))
            _await_progress(records, 10)
            metrics = mutator.metrics()
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

    assert records, "no queries completed"

    # Replay the serialized write log into a stamp -> placement map.
    # Every stamp a write produced names exactly one point placement;
    # compaction moves the stamp without moving the placement.
    placement_now = dict(placement)
    states = {(0, 0): dict(placement_now)}
    mutation_count = 0
    for kind, pid, node, response in write_log:
        stamp = (response["base_generation"], response["delta_epoch"])
        if kind == "insert":
            placement_now[pid] = node
            mutation_count += 1
        elif kind == "delete":
            del placement_now[pid]
            mutation_count += 1
        else:
            assert stamp[1] == 0, response  # compaction resets the epoch
        assert response["generation"] == mutation_count, response
        states[stamp] = dict(placement_now)

    # Every reader-observed stamp must be one the write log produced,
    # and the stamped answer must match a from-scratch database of
    # that exact snapshot.
    references = {}
    observed = set()
    for payload, response in records:
        assert response["status"] == "ok", (payload, response)
        stamp = (response["base_generation"], response["delta_epoch"])
        assert stamp in states, (
            f"response stamped {stamp}, a snapshot the write log never "
            f"produced: {sorted(states)}"
        )
        observed.add(stamp)
        if stamp not in references:
            references[stamp] = CompactDatabase(
                graph, NodePointSet(states[stamp])
            )
        expected = _direct_answer(references[stamp], payload)
        got = response.get("points", response.get("neighbors"))
        assert got == expected, (payload, stamp, got, expected)

    assert len(observed) >= 2, f"race never caught a moving stamp: {observed}"
    # Writes never drained readers: the only drain points are the two
    # forced compactions.
    compactions = sum(1 for kind, *_ in write_log if kind == "compact")
    assert metrics["compactions"] == compactions
    assert metrics["drains"] == compactions
    assert metrics["generation"] == mutation_count


class TestOverlayServeSurface:
    def test_query_and_mutation_responses_carry_stamps(self, db):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                q0 = client.rknn(5, k=2)
                ins = client.insert(700, free_nodes(*build_inputs(), 1)[0])
                q1 = client.rknn(5, k=2)
        assert (q0["base_generation"], q0["delta_epoch"]) == (0, 0)
        assert (ins["base_generation"], ins["delta_epoch"]) == (0, 1)
        assert (q1["base_generation"], q1["delta_epoch"]) == (0, 1)
        assert q1["generation"] == 1

    def test_compact_op_folds_and_restamps(self, db):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                before = client.rknn(5, k=2)
                client.insert(700, free_nodes(*build_inputs(), 1)[0])
                client.delete(700)
                folded = client.compact()
                after = client.rknn(5, k=2)
                empty = client.compact()
                metrics = client.metrics()
                health = client.healthz()
        assert folded["folded"] == 2
        assert (folded["base_generation"], folded["delta_epoch"]) == (1, 0)
        assert folded["generation"] == 2
        assert after["points"] == before["points"]  # fold changed nothing
        assert (after["base_generation"], after["delta_epoch"]) == (1, 0)
        assert empty["folded"] == 0  # idempotent on an empty log
        assert metrics["compactions"] == 2
        assert metrics["drains"] == 2  # compaction is the only drain
        assert metrics["base_generation"] == 1
        assert health["base_generation"] == 1

    def test_point_mutations_never_drain(self, db):
        with serve_in_thread(db) as handle:
            with ServeClient(handle.host, handle.port) as client:
                node = free_nodes(*build_inputs(), 1)[0]
                client.insert(700, node)
                client.delete(700)
                metrics = client.metrics()
        assert metrics["generation"] == 2
        assert metrics["drains"] == 0

    def test_compact_rejected_on_generation_swap_backends(self, inputs):
        graph, placement = inputs
        disk = build_db("disk", graph, placement)
        with serve_in_thread(disk) as handle:
            with ServeClient(handle.host, handle.port) as client:
                response = client.compact()
                q = client.rknn(5, k=2)
        assert response["status"] == "error"
        assert "delta-overlay" in response["error"]
        assert "base_generation" not in q  # no stamps outside overlay mode
