"""Multi-process fleet serving: conformance, mutations, fault injection.

The fleet must be indistinguishable from a single-process compact
server at the protocol level: identical answers, the same stamp
discipline (no response mixes base generations), read-your-writes
after mutations, and clean degradation -- not hangs, not mixed
generations -- when a worker process is killed mid-service.
"""

import os
import signal

import pytest

from repro.compact import CompactDatabase
from repro.obs import parse_prometheus_text
from repro.points.points import NodePointSet
from repro.serve import ServeClient, fleet_in_thread, http_get, http_get_text
from repro.serve.fleet import FleetServer

from tests.serve.conftest import a_route, build_inputs, free_nodes


@pytest.fixture(scope="module")
def inputs():
    return build_inputs()


def build_compact(inputs):
    graph, placement = inputs
    return CompactDatabase(graph, NodePointSet(dict(placement)))


@pytest.fixture(scope="module")
def fleet(inputs):
    """One 2-worker fleet shared by the read-only tests."""
    db = build_compact(inputs)
    with fleet_in_thread(db, workers=2, window=0.001, max_batch=8,
                         materialize=4) as handle:
        db.materialize(4)  # mirror the workers for direct comparisons
        yield handle, db


def client_of(handle) -> ServeClient:
    return ServeClient(handle.host, handle.port)


class TestConformance:
    def test_rknn_matches_direct_calls(self, fleet, inputs):
        handle, db = fleet
        graph, _ = inputs
        with client_of(handle) as client:
            for query in range(0, graph.num_nodes, 7):
                for method in ("eager", "lazy", "eager-m"):
                    body = client.rknn(query, k=2, method=method)
                    assert body["status"] == "ok", body
                    direct = db.rknn(query, k=2, method=method)
                    assert body["points"] == sorted(direct.points), (
                        query, method)
                    # every response pins one snapshot stamp
                    assert (body["base_generation"],
                            body["delta_epoch"]) == (0, 0)

    def test_knn_range_continuous_match(self, fleet, inputs):
        handle, db = fleet
        graph, _ = inputs
        route = a_route(graph)
        with client_of(handle) as client:
            body = client.knn(5, k=3)
            assert ([tuple(pair) for pair in body["neighbors"]]
                    == list(db.knn(5, k=3).neighbors))
            body = client.query("range", 11, k=2, radius=9.0)
            assert ([tuple(pair) for pair in body["neighbors"]]
                    == list(db.range_nn(11, 2, 9.0).neighbors))
            body = client.query("continuous", route=route, k=1,
                                method="eager")
            assert body["points"] == sorted(
                db.continuous_rknn(route, 1).points)

    def test_pipelined_batch_is_index_aligned(self, fleet, inputs):
        handle, db = fleet
        graph, _ = inputs
        queries = [(3 * i) % graph.num_nodes for i in range(24)]
        payloads = [{"op": "query", "kind": "rknn", "query": q, "k": 1,
                     "method": "eager", "id": i}
                    for i, q in enumerate(queries)]
        with client_of(handle) as client:
            responses = client.pipeline(payloads)
        for i, (query, body) in enumerate(zip(queries, responses)):
            assert body["id"] == i
            assert body["points"] == sorted(db.rknn(query, 1).points)

    def test_bad_query_gets_error_not_batch_poison(self, fleet, inputs):
        handle, db = fleet
        graph, _ = inputs
        payloads = [
            {"op": "query", "kind": "rknn", "query": 4, "k": 1,
             "method": "eager", "id": 0},
            {"op": "query", "kind": "rknn", "query": graph.num_nodes + 50,
             "k": 1, "method": "eager", "id": 1},
            {"op": "query", "kind": "rknn", "query": 6, "k": 1,
             "method": "eager", "id": 2},
        ]
        with client_of(handle) as client:
            responses = client.pipeline(payloads)
        assert responses[0]["status"] == "ok"
        assert responses[1]["status"] == "error"
        assert "out of range" in responses[1]["error"]
        assert responses[2]["status"] == "ok"
        assert responses[2]["points"] == sorted(db.rknn(6, 1).points)

    def test_metrics_and_health(self, fleet):
        handle, _ = fleet
        with client_of(handle) as client:
            metrics = client.metrics()
            health = client.healthz()
        assert metrics["backend"] == "compact"
        assert metrics["mode"] == "fleet"
        assert metrics["workers"] == 2
        assert metrics["live_workers"] == 2
        assert metrics["worker_deaths"] == 0
        assert metrics["queries_served"] >= 1
        assert set(metrics["admission"]) == {
            "admitted", "shed", "batches", "coalesced"}
        assert health["status"] == "ok"
        assert health["live_workers"] == 2

    def test_subscribe_refused_cleanly(self, fleet):
        handle, _ = fleet
        with client_of(handle) as client:
            body = client.request(
                {"op": "subscribe", "queries": {0: 5}, "k": 1})
            assert body["status"] == "error"
            assert "fleet" in body["error"]
            # the connection survives the refusal
            assert client.healthz()["status"] == "ok"


class TestObservability:
    def test_http_metrics_and_healthz(self, fleet):
        handle, _ = fleet
        with client_of(handle) as client:
            assert client.rknn(3, k=1)["status"] == "ok"
        metrics = http_get(handle.host, handle.port, "/metrics")
        assert metrics["mode"] == "fleet"
        assert metrics["workers"] == 2
        assert "latency" in metrics
        assert metrics["latency"]["count"] >= 1
        health = http_get(handle.host, handle.port, "/healthz")
        assert health["status"] == "ok"
        assert health["live_workers"] == 2

    def test_http_prometheus_exposition_parses(self, fleet):
        handle, _ = fleet
        with client_of(handle) as client:
            assert client.rknn(5, k=1)["status"] == "ok"
        text = http_get_text(handle.host, handle.port,
                             "/metrics?format=prometheus")
        samples = parse_prometheus_text(text)
        assert samples["repro_workers"] == 2.0
        assert samples["repro_live_workers"] == 2.0
        assert samples["repro_queries_served_total"] >= 1.0
        assert samples["repro_worker_deaths_total"] == 0.0
        # the latency histogram renders cumulative buckets whose +Inf
        # bucket equals the series count
        inf_key = 'repro_batch_seconds_bucket{le="+Inf"}'
        assert samples[inf_key] == samples["repro_batch_seconds_count"]
        assert samples["repro_batch_seconds_count"] >= 1.0

    def test_traced_query_carries_span_tree(self, fleet, inputs):
        handle, db = fleet
        with client_of(handle) as client:
            body = client.request({"op": "query", "kind": "rknn",
                                   "query": 9, "k": 2, "method": "eager",
                                   "trace": True})
        assert body["status"] == "ok"
        assert body["points"] == sorted(db.rknn(9, 2).points)
        spans = body["trace"]["spans"]
        names = {span["name"] for span in spans}
        assert "engine.run_batch" in names
        assert "execute.rknn" in names
        # untraced queries stay trace-free (zero-overhead default)
        with client_of(handle) as client:
            body = client.rknn(9, k=2)
        assert "trace" not in body

    def test_explain_statement_over_the_pipe(self, fleet, inputs):
        handle, db = fleet
        with client_of(handle) as client:
            # (query, k) chosen to miss the worker's result cache: a
            # cached EXPLAIN correctly answers without execute spans
            body = client.request({
                "op": "query",
                "statement": "EXPLAIN SELECT * FROM rknn(query=13, k=3)",
            })
        assert body["status"] == "ok"
        assert body["explain"] is True
        assert body["plan"]["backend"] == "compact"
        assert body["plan"]["method"] == "eager"
        assert body["points"] == sorted(db.rknn(13, 3).points)
        names = {span["name"] for span in body["trace"]["spans"]}
        assert "execute.rknn" in names


class TestMutations:
    def test_read_your_writes_and_fleet_stamps(self, inputs):
        graph, placement = inputs
        db = build_compact(inputs)
        node = free_nodes(graph, placement, 1)[0]
        pid = max(placement) + 100
        with fleet_in_thread(db, workers=2, window=0.001) as handle:
            with client_of(handle) as client:
                body = client.insert(pid, node)
                assert body["status"] == "ok", body
                assert (body["base_generation"], body["delta_epoch"]) == (0, 1)
                # the same connection immediately observes the write on
                # whichever worker serves the query (broadcast barrier)
                body = client.rknn(node, k=1)
                assert (body["base_generation"], body["delta_epoch"]) == (0, 1)
                db.insert_point(pid, node)
                assert body["points"] == sorted(db.rknn(node, 1).points)

                body = client.delete(pid)
                assert body["status"] == "ok"
                assert (body["base_generation"], body["delta_epoch"]) == (0, 2)
                db.delete_point(pid)
                body = client.rknn(node, k=1)
                assert body["points"] == sorted(db.rknn(node, 1).points)

    def test_compact_folds_every_worker_to_the_same_base(self, inputs):
        graph, placement = inputs
        db = build_compact(inputs)
        node = free_nodes(graph, placement, 1)[0]
        with fleet_in_thread(db, workers=2, window=0.001) as handle:
            with client_of(handle) as client:
                client.insert(max(placement) + 100, node)
                body = client.compact()
                assert body["status"] == "ok", body
                assert (body["base_generation"], body["delta_epoch"]) == (1, 0)
                body = client.rknn(node, k=1)
                assert (body["base_generation"], body["delta_epoch"]) == (1, 0)
                metrics = client.metrics()
                assert metrics["mutations_applied"] == 1
                assert metrics["compactions"] == 1

    def test_duplicate_insert_fails_on_every_worker(self, inputs):
        _, placement = inputs
        db = build_compact(inputs)
        pid, node = next(iter(placement.items()))
        with fleet_in_thread(db, workers=2, window=0.001) as handle:
            with client_of(handle) as client:
                body = client.insert(pid, node)
                assert body["status"] == "error"
                # the failed broadcast left every worker at the old stamp
                body = client.rknn(node, k=1)
                assert (body["base_generation"], body["delta_epoch"]) == (0, 0)


class TestFaults:
    def test_killed_worker_is_rerouted_without_mixing_generations(
            self, inputs):
        graph, placement = inputs
        db = build_compact(inputs)
        node = free_nodes(graph, placement, 1)[0]
        with fleet_in_thread(db, workers=2, window=0.001) as handle:
            with client_of(handle) as client:
                # put the fleet at a non-trivial stamp first, so a
                # stale-generation answer would be distinguishable
                assert client.insert(max(placement) + 100,
                                     node)["status"] == "ok"
                victim = handle.server._workers[0]
                os.kill(victim.process.pid, signal.SIGKILL)
                victim.process.join(timeout=10)

                statuses = []
                stamps = set()
                for i in range(3 * graph.num_nodes):
                    body = client.rknn(i % graph.num_nodes, k=1)
                    statuses.append(body["status"])
                    if body["status"] == "ok":
                        stamps.add((body["base_generation"],
                                    body["delta_epoch"]))
                # the router sheds or reroutes -- it never hangs and
                # never serves a response at another stamp
                assert statuses.count("ok") >= 1
                assert set(statuses) <= {"ok", "error"}
                assert stamps == {(0, 1)}

                metrics = client.metrics()
                assert metrics["live_workers"] == 1
                assert metrics["worker_deaths"] == 1
                assert metrics["reroutes"] >= 1
                assert client.healthz()["status"] == "ok"

                # mutations keep working on the surviving worker
                body = client.insert(max(placement) + 101, node + 0)
                assert body["status"] in ("ok", "error")

    def test_all_workers_dead_sheds_instead_of_hanging(self, inputs):
        db = build_compact(inputs)
        with fleet_in_thread(db, workers=1, window=0.001) as handle:
            with client_of(handle) as client:
                worker = handle.server._workers[0]
                os.kill(worker.process.pid, signal.SIGKILL)
                worker.process.join(timeout=10)
                saw_error = False
                for query in range(10):
                    body = client.rknn(query, k=1)
                    assert body["status"] in ("ok", "error")
                    saw_error = saw_error or body["status"] == "error"
                assert saw_error
                assert client.healthz()["status"] == "error"
                metrics = client.metrics()
                assert metrics["live_workers"] == 0


def test_fleet_server_rejects_zero_workers(tmp_path, inputs):
    from repro.errors import QueryError

    db = build_compact(inputs)
    root = db.save_snapshot(tmp_path / "snap")
    with pytest.raises(QueryError, match="workers"):
        FleetServer(root, workers=0)


def test_fleet_boots_from_existing_snapshot_dir(tmp_path, inputs):
    db = build_compact(inputs)
    root = db.save_snapshot(tmp_path / "snap")
    with fleet_in_thread(str(root), workers=1, window=0.001) as handle:
        with client_of(handle) as client:
            body = client.rknn(3, k=1)
            assert body["status"] == "ok"
            assert body["points"] == sorted(db.rknn(3, 1).points)
