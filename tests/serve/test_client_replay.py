"""The CI replay path: recorded request log through the client CLI."""

from pathlib import Path

import pytest

from repro.serve import serve_in_thread
from repro.serve.client import main as client_main
from repro.serve.client import replay

from tests.serve.conftest import build_db, build_inputs

LOG = Path(__file__).resolve().parent.parent.parent / "benchmarks" / "data" / \
    "serve_requests.jsonl"


@pytest.fixture(scope="module")
def inputs():
    return build_inputs()


def test_recorded_log_exists_and_covers_every_kind():
    text = LOG.read_text()
    for kind in ("rknn", "knn", "range", "continuous"):
        assert f'"kind": "{kind}"' in text
    for op in ("insert", "delete", "metrics", "healthz"):
        assert f'"op": "{op}"' in text


def test_replay_succeeds_against_a_live_server(inputs):
    graph, placement = inputs
    db = build_db("disk", graph, placement)
    with serve_in_thread(db) as handle:
        with LOG.open() as handle_file:
            tally = replay(handle_file, handle.host, handle.port)
    assert tally["ok"] == tally["requests"]
    assert tally["overloaded"] == 0


def test_replay_cli_entry_point(inputs, capsys):
    graph, placement = inputs
    db = build_db("compact", graph, placement)
    with serve_in_thread(db) as handle:
        code = client_main([
            "--address", f"{handle.host}:{handle.port}",
            "--replay", str(LOG),
        ])
    assert code == 0
    out = capsys.readouterr().out
    assert "replayed" in out and " ok" in out


def test_replay_fails_loudly_on_error_responses(inputs, tmp_path):
    graph, placement = inputs
    db = build_db("disk", graph, placement)
    bad_log = tmp_path / "bad.jsonl"
    bad_log.write_text('{"op": "query", "kind": "rknn", "query": 99999}\n')
    with serve_in_thread(db) as handle:
        with pytest.raises(AssertionError, match="error response"):
            with bad_log.open() as handle_file:
                replay(handle_file, handle.host, handle.port)
