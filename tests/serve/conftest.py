"""Shared helpers for the serving-tier suite."""

from __future__ import annotations

from repro.api import GraphDatabase
from repro.compact import CompactDatabase
from repro.datasets.grid import generate_grid
from repro.datasets.workload import place_node_points
from repro.points.points import NodePointSet
from repro.shard import ShardedDatabase

NODES = 100
DENSITY = 0.1
SEED = 3

#: Backend constructors of the serve conformance matrix.
BACKENDS = ("disk", "sharded", "compact", "disk+oracle", "compact+oracle")


def build_inputs():
    """The suite's shared workload inputs: one grid graph with points."""
    graph = generate_grid(NODES, average_degree=4.0, seed=SEED)
    points = place_node_points(graph, DENSITY, seed=SEED + 1)
    return graph, dict(points.items())


def build_db(backend: str, graph, placement: dict):
    """Construct one backend of the conformance matrix."""
    points = NodePointSet(dict(placement))
    if backend.startswith("sharded"):
        db = ShardedDatabase(graph, points, num_shards=4)
    elif backend.startswith("compact"):
        db = CompactDatabase(graph, points)
    else:
        db = GraphDatabase(graph, points)
    if backend.endswith("+oracle"):
        db.build_oracle(4, seed=0)
    return db


def free_nodes(graph, placement: dict, count: int) -> list[int]:
    """``count`` nodes holding no data point (mutation targets)."""
    taken = set(placement.values())
    nodes = [node for node in range(graph.num_nodes) if node not in taken]
    assert len(nodes) >= count
    return nodes[:count]


def a_route(graph, length: int = 3) -> list[int]:
    """A short walk along actual edges, starting from node 0."""
    route = [0]
    while len(route) < length:
        neighbors = [v for v, _ in graph.neighbors(route[-1])]
        nxt = next((v for v in neighbors if v not in route), neighbors[0])
        route.append(nxt)
    return route
