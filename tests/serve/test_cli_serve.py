"""`repro serve`: the CLI boot path, as the CI smoke job drives it."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.serve.client import ServeClient

ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-cli") / "net.graph"
    assert cli_main([
        "generate", "--kind", "grid", "--nodes", "100",
        "--density", "0.1", "--seed", "3", "-o", str(path),
    ]) == 0
    return path


def _spawn_server(graph_file, tmp_path, *extra):
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    ready = tmp_path / "ready.txt"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(graph_file),
         "--port", "0", "--ready-file", str(ready), *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            break
        if proc.poll() is not None:
            raise AssertionError(
                f"server exited early: {proc.communicate()[1]}"
            )
        time.sleep(0.05)
    else:
        proc.kill()
        raise AssertionError("server never wrote its ready file")
    host, _, port = ready.read_text().strip().rpartition(":")
    return proc, host, int(port)


def test_cli_serves_and_stops_cleanly(graph_file, tmp_path):
    proc, host, port = _spawn_server(graph_file, tmp_path)
    try:
        with ServeClient(host, port) as client:
            response = client.rknn(5, k=2)
            assert response["status"] == "ok"
            health = client.healthz()
            assert health["status"] == "ok"
    finally:
        proc.send_signal(signal.SIGINT)
        stdout, _ = proc.communicate(timeout=30)
    assert "serving" in stdout
    assert proc.returncode == 0


def test_cli_serve_backend_flags(graph_file, tmp_path):
    proc, host, port = _spawn_server(graph_file, tmp_path,
                                     "--compact", "--workers", "2",
                                     "--max-batch", "8")
    try:
        with ServeClient(host, port) as client:
            metrics = client.metrics()
            assert metrics["backend"] == "compact"
            response = client.rknn(5, k=2)
            assert response["status"] == "ok"
    finally:
        proc.terminate()
        proc.communicate(timeout=30)


def test_cli_rejects_bad_window(graph_file, capsys):
    assert cli_main(["serve", str(graph_file), "--window-ms", "-1"]) == 1
    assert "--window-ms" in capsys.readouterr().err


@pytest.mark.parametrize("flag", ["--max-batch", "--max-queue", "--workers"])
def test_cli_rejects_nonpositive_serve_limits(graph_file, capsys, flag):
    """Misconfigurations must fail at startup with a clean error, not a
    traceback (--max-batch 0) or a server answering 100% errors
    (--workers 0)."""
    assert cli_main(["serve", str(graph_file), flag, "0"]) == 1
    assert flag in capsys.readouterr().err


def test_cli_rejects_negative_cache_size(graph_file, capsys):
    assert cli_main(["serve", str(graph_file), "--cache-size", "-1"]) == 1
    assert "--cache-size" in capsys.readouterr().err


def test_cli_fleet_requires_compact_backend(graph_file, capsys):
    """A multi-process fleet runs over a shared CSR snapshot, so
    --workers > 1 without --compact must fail with a clean pointer to
    the flag, not boot a half-configured server."""
    assert cli_main(["serve", str(graph_file), "--workers", "2"]) == 1
    assert "--compact" in capsys.readouterr().err


def test_cli_removes_ready_file_on_shutdown_and_restarts(graph_file,
                                                         tmp_path):
    """The ready file must disappear on shutdown -- a supervisor that
    polls it would otherwise route traffic at a dead server -- and a
    restart reusing the same path must become ready again."""
    proc, host, port = _spawn_server(graph_file, tmp_path)
    ready = tmp_path / "ready.txt"
    assert ready.exists()
    proc.send_signal(signal.SIGINT)
    proc.communicate(timeout=30)
    assert proc.returncode == 0
    assert not ready.exists(), "stale ready file left after shutdown"

    # the restart path: same ready file, fresh server
    proc, host, port = _spawn_server(graph_file, tmp_path)
    try:
        with ServeClient(host, port) as client:
            assert client.rknn(5, k=2)["status"] == "ok"
    finally:
        proc.send_signal(signal.SIGINT)
        proc.communicate(timeout=30)
    assert proc.returncode == 0
    assert not ready.exists()
