"""Serving the compact backend through the vectorized batch kernel.

The server's micro-batcher coalesces concurrent requests into one
engine batch; on the compact backend every all-RkNN batch of two or
more specs now runs through the vectorized kernel
(:mod:`repro.compact.batch`).  This test hammers such a workload while
a second client races insert/delete mutations, then replays the
mutation log into per-generation reference facades: every response
must equal a direct scalar call at its claimed generation, and no
response may mix generations.  A vectorized fast path that ever served
a cross-generation answer would fail here first.
"""

import threading
import time

import pytest

from repro.serve import ServeClient, serve_in_thread

from tests.serve.conftest import build_db, build_inputs, free_nodes


def _rknn_payloads():
    payloads = []
    for node in range(0, 60, 6):
        payloads.append({"op": "query", "kind": "rknn", "query": node,
                         "k": 2, "method": "eager"})
        payloads.append({"op": "query", "kind": "rknn", "query": node + 1,
                         "k": 1, "method": "lazy"})
    return payloads


@pytest.mark.slow
def test_batched_rknn_responses_hold_single_generation():
    graph, placement = build_inputs()
    db = build_db("compact", graph, placement)
    payloads = _rknn_payloads()
    targets = free_nodes(graph, placement, 3)
    mutations = [("insert", 800 + i, node) for i, node in enumerate(targets)]
    mutations.append(("delete", 800, None))

    records = []  # (payload, response)
    with serve_in_thread(db, window=0.002, max_batch=8) as handle:
        stop = threading.Event()

        def hammer():
            with ServeClient(handle.host, handle.port) as client:
                while not stop.is_set():
                    for payload, response in zip(payloads,
                                                 client.pipeline(payloads)):
                        records.append((payload, response))

        thread = threading.Thread(target=hammer)
        thread.start()
        with ServeClient(handle.host, handle.port) as mutator:
            for op, pid, node in mutations:
                watermark = len(records) + 5
                deadline = time.monotonic() + 10
                while len(records) < watermark and time.monotonic() < deadline:
                    time.sleep(0.001)
                if op == "insert":
                    assert mutator.insert(pid, node)["status"] == "ok"
                else:
                    assert mutator.delete(pid)["status"] == "ok"
        stop.set()
        thread.join(timeout=30)

    assert records, "no queries completed"

    placement_now = dict(placement)
    references = {0: build_db("compact", graph, placement_now)}
    for generation, (op, pid, node) in enumerate(mutations, start=1):
        if op == "insert":
            placement_now[pid] = node
        else:
            del placement_now[pid]
        references[generation] = build_db("compact", graph,
                                          dict(placement_now))

    seen = set()
    for payload, response in records:
        assert response["status"] == "ok", (payload, response)
        generation = response["generation"]
        assert generation in references, (
            f"response claims unknown generation {generation}"
        )
        seen.add(generation)
        reference = references[generation]
        expected = list(reference.rknn(payload["query"], payload["k"],
                                       method=payload["method"]).points)
        assert response["points"] == expected, (
            f"{payload} diverged at generation {generation}"
        )
    assert len(seen) > 1, "workload never raced a mutation"
