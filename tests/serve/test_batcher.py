"""MicroBatcher: coalescing, flush-on-full, shedding, failure paths."""

import asyncio

import pytest

from repro.engine.spec import QuerySpec
from repro.serve.batcher import MicroBatcher, QueueFull


def run(coro):
    return asyncio.run(coro)


def spec(node: int) -> QuerySpec:
    return QuerySpec("rknn", query=node, k=1)


class _Recorder:
    """A runner that records every batch it executes."""

    def __init__(self, delay: float = 0.0):
        self.batches: list[list[QuerySpec]] = []
        self.delay = delay

    async def __call__(self, specs):
        self.batches.append(list(specs))
        if self.delay:
            await asyncio.sleep(self.delay)
        return [f"result-{s.query}" for s in specs]


class TestValidation:
    def test_rejects_negative_window(self):
        with pytest.raises(ValueError, match="window"):
            MicroBatcher(_Recorder(), window=-1.0)

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(_Recorder(), max_batch=0)

    def test_rejects_bad_max_queue(self):
        with pytest.raises(ValueError, match="max_queue"):
            MicroBatcher(_Recorder(), max_queue=0)


class TestCoalescing:
    def test_concurrent_submissions_share_a_batch(self):
        async def scenario():
            recorder = _Recorder()
            batcher = MicroBatcher(recorder, window=0.02, max_batch=16)
            results = await asyncio.gather(*(batcher.submit(spec(i))
                                             for i in range(5)))
            await batcher.close()
            return recorder, results

        recorder, results = run(scenario())
        assert results == [f"result-{i}" for i in range(5)]
        assert len(recorder.batches) == 1
        assert len(recorder.batches[0]) == 5

    def test_full_batch_flushes_before_window(self):
        async def scenario():
            recorder = _Recorder()
            # a long window that a full batch must not wait for
            batcher = MicroBatcher(recorder, window=5.0, max_batch=4)
            await asyncio.wait_for(
                asyncio.gather(*(batcher.submit(spec(i)) for i in range(4))),
                timeout=1.0,
            )
            await batcher.close()
            return recorder

        recorder = run(scenario())
        assert len(recorder.batches) == 1

    def test_zero_window_runs_immediately(self):
        async def scenario():
            recorder = _Recorder()
            batcher = MicroBatcher(recorder, window=0.0)
            result = await batcher.submit(spec(9))
            await batcher.close()
            return recorder, result

        recorder, result = run(scenario())
        assert result == "result-9"
        assert recorder.batches == [[spec(9)]]

    def test_oversized_wave_splits_into_max_batch_chunks(self):
        async def scenario():
            recorder = _Recorder()
            batcher = MicroBatcher(recorder, window=0.01, max_batch=3)
            await asyncio.gather(*(batcher.submit(spec(i)) for i in range(8)))
            await batcher.close()
            return recorder

        recorder = run(scenario())
        assert sum(len(batch) for batch in recorder.batches) == 8
        assert all(len(batch) <= 3 for batch in recorder.batches)

    def test_stats_count_batches_and_coalescing(self):
        async def scenario():
            recorder = _Recorder()
            batcher = MicroBatcher(recorder, window=0.02, max_batch=16)
            await asyncio.gather(*(batcher.submit(spec(i)) for i in range(4)))
            await batcher.close()
            return batcher.stats.snapshot()

        stats = run(scenario())
        assert stats["admitted"] == 4
        assert stats["batches"] == 1
        assert stats["coalesced"] == 4
        assert stats["shed"] == 0


class TestBackpressure:
    def test_sheds_beyond_max_queue(self):
        async def scenario():
            recorder = _Recorder(delay=0.05)
            batcher = MicroBatcher(recorder, window=0.5, max_batch=64,
                                   max_queue=3)
            admitted = [asyncio.ensure_future(batcher.submit(spec(i)))
                        for i in range(3)]
            await asyncio.sleep(0)  # let the admissions register
            with pytest.raises(QueueFull):
                await batcher.submit(spec(99))
            shed = batcher.stats.shed
            for task in admitted:
                task.cancel()
            await batcher.close()
            return shed

        assert run(scenario()) == 1

    def test_queue_full_reports_depth(self):
        error = QueueFull(7)
        assert error.depth == 7
        assert "7" in str(error)


class TestFailure:
    def test_runner_exception_fails_the_batch(self):
        async def failing(specs):
            raise RuntimeError("engine exploded")

        async def scenario():
            batcher = MicroBatcher(failing, window=0.0)
            with pytest.raises(RuntimeError, match="engine exploded"):
                await batcher.submit(spec(1))
            await batcher.close()

        run(scenario())

    def test_submit_after_close_is_refused(self):
        async def scenario():
            batcher = MicroBatcher(_Recorder(), window=0.0)
            await batcher.close()
            with pytest.raises(ConnectionError):
                await batcher.submit(spec(1))

        run(scenario())
