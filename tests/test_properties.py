"""Hypothesis property tests: every algorithm against the oracle, plus
structural invariants of the storage and materialization layers."""


from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    DirectedGraphDatabase,
    EdgePointSet,
    GraphDatabase,
    NodePointSet,
    QuerySpec,
)
from repro.core.baseline import (
    brute_force_brknn,
    brute_force_knn,
    brute_force_rknn,
    dijkstra,
    location_distance,
)
from repro.core.directed import brute_force_directed_rknn
from repro.core.expansion import distances_from
from repro.graph.graph import Graph, edge_key

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def connected_graphs(draw, max_nodes=18, int_weights=True):
    """A connected random graph: random spanning tree + extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    weight = (
        st.integers(min_value=1, max_value=9).map(float)
        if int_weights
        else st.floats(min_value=0.5, max_value=9.5, allow_nan=False)
    )
    edges = {}
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        edges[edge_key(node, parent)] = draw(weight)
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and edge_key(u, v) not in edges:
            edges[edge_key(u, v)] = draw(weight)
    return Graph(n, [(u, v, w) for (u, v), w in edges.items()])


@st.composite
def restricted_instances(draw):
    """(graph, points, query node, k) for monochromatic tests."""
    graph = draw(connected_graphs())
    n = graph.num_nodes
    count = draw(st.integers(min_value=1, max_value=max(1, n // 2)))
    nodes = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=count, max_size=count, unique=True,
        )
    )
    points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
    query = draw(st.integers(min_value=0, max_value=n - 1))
    k = draw(st.integers(min_value=1, max_value=3))
    return graph, points, query, k


@st.composite
def dyadic_graphs(draw, max_nodes=12):
    """Connected graphs whose weights are multiples of 1/16.

    Dyadic weights (and the dyadic edge offsets below) make every path
    sum exactly representable, so genuine distance differences are at
    least 1/256 -- far above the library's documented 1e-9 relative tie
    guard -- while exact ties remain exactly equal.  Adversarial inputs
    with genuine differences *below* the guard are out of contract (the
    guard deliberately reads them as ties).
    """
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    weight = st.integers(min_value=8, max_value=152).map(lambda x: x / 16.0)
    edges = {}
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        edges[edge_key(node, parent)] = draw(weight)
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and edge_key(u, v) not in edges:
            edges[edge_key(u, v)] = draw(weight)
    return Graph(n, [(u, v, w) for (u, v), w in edges.items()])


@st.composite
def unrestricted_instances(draw):
    """(graph, edge points, query location, k)."""
    graph = draw(dyadic_graphs())
    edges = list(graph.edges())

    def dyadic_offset(weight: float) -> float:
        return draw(st.integers(min_value=0, max_value=16)) / 16.0 * weight

    count = draw(st.integers(min_value=1, max_value=min(8, len(edges) * 2)))
    locations = {}
    for i in range(count):
        u, v, w = edges[draw(st.integers(0, len(edges) - 1))]
        locations[100 + i] = (u, v, dyadic_offset(w))
    points = EdgePointSet(locations)
    if draw(st.booleans()):
        query = draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
    else:
        u, v, w = edges[draw(st.integers(0, len(edges) - 1))]
        query = (u, v, dyadic_offset(w))
    k = draw(st.integers(min_value=1, max_value=2))
    return graph, points, query, k


class TestRknnAgainstOracle:
    @given(restricted_instances())
    @settings(**SETTINGS)
    def test_all_methods_restricted(self, instance):
        graph, points, query, k = instance
        db = GraphDatabase(graph, points)
        db.materialize(k + 1)
        want = brute_force_rknn(graph, points, query, k)
        for method in ("eager", "lazy", "lazy-ep", "eager-m"):
            assert list(db.rknn(query, k, method=method).points) == want, method

    @given(restricted_instances())
    @settings(**SETTINGS)
    def test_exclusion_restricted(self, instance):
        graph, points, query, k = instance
        coincident = points.point_at(query)
        exclude = frozenset({coincident}) if coincident is not None else frozenset()
        db = GraphDatabase(graph, points)
        db.materialize(k + 1)
        want = brute_force_rknn(graph, points, query, k, exclude)
        for method in ("eager", "lazy", "lazy-ep", "eager-m"):
            got = list(db.rknn(query, k, method=method, exclude=exclude).points)
            assert got == want, method

    @given(unrestricted_instances())
    @settings(**SETTINGS)
    def test_all_methods_unrestricted(self, instance):
        graph, points, query, k = instance
        db = GraphDatabase(graph, points)
        db.materialize(k + 1)
        want = brute_force_rknn(graph, points, query, k)
        for method in ("eager", "lazy", "lazy-ep", "eager-m"):
            assert list(db.rknn(query, k, method=method).points) == want, method


class TestDefinitionInvariants:
    @given(restricted_instances())
    @settings(**SETTINGS)
    def test_monotone_in_k(self, instance):
        """RkNN results are monotone: RkNN(q) subset-of R(k+1)NN(q)."""
        graph, points, query, _ = instance
        db = GraphDatabase(graph, points)
        previous: set[int] = set()
        for k in (1, 2, 3):
            current = set(db.rknn(query, k).points)
            assert previous <= current
            previous = current

    @given(restricted_instances())
    @settings(**SETTINGS)
    def test_result_points_have_query_in_their_knn(self, instance):
        """Direct check of the RkNN definition for every reported point."""
        graph, points, query, k = instance
        db = GraphDatabase(graph, points)
        result = db.rknn(query, k).points
        for pid in result:
            node = points.node_of(pid)
            dist_pq = location_distance(graph, node, query)
            closer = [
                other
                for other, onode in points.items()
                if other != pid
                and location_distance(graph, node, onode) < dist_pq - 1e-9
            ]
            assert len(closer) < k

    @given(restricted_instances())
    @settings(**SETTINGS)
    def test_knn_is_sorted_and_consistent(self, instance):
        graph, points, query, k = instance
        db = GraphDatabase(graph, points)
        got = db.knn(query, k).neighbors
        dists = [d for _, d in got]
        assert dists == sorted(dists)
        want = brute_force_knn(graph, points, query, k)
        assert dists == [d for _, d in want]


class TestSubstrateInvariants:
    @given(connected_graphs())
    @settings(**SETTINGS)
    def test_disk_expansion_matches_dijkstra(self, graph):
        db = GraphDatabase(graph, NodePointSet({}))
        assert distances_from(db.view, [(0, 0.0)]) == dijkstra(graph, [(0, 0.0)])

    @given(connected_graphs(), st.integers(min_value=64, max_value=512))
    @settings(**SETTINGS)
    def test_page_size_never_changes_results(self, graph, page_size):
        points = NodePointSet({100: 0})
        big = GraphDatabase(graph, points)
        small = GraphDatabase(graph, points, page_size=page_size, buffer_pages=4)
        for query in range(0, graph.num_nodes, max(1, graph.num_nodes // 4)):
            assert big.rknn(query, 1).points == small.rknn(query, 1).points

    @given(restricted_instances())
    @settings(**SETTINGS)
    def test_materialized_lists_sorted_and_bounded(self, instance):
        graph, points, _, k = instance
        db = GraphDatabase(graph, points)
        db.materialize(k + 1)
        for node in graph.nodes():
            entries = db.materialized.get(node)
            dists = [d for _, d in entries]
            assert dists == sorted(dists)
            assert len(entries) <= k + 1
            assert len({pid for pid, _ in entries}) == len(entries)


@st.composite
def directed_instances(draw):
    """(arcs, points, query node, k) on a random weakly connected digraph."""
    n = draw(st.integers(min_value=2, max_value=14))
    weight = st.integers(min_value=1, max_value=9).map(float)
    arcs: dict[tuple[int, int], float] = {}
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        if draw(st.booleans()):
            arcs[(node, parent)] = draw(weight)
        else:
            arcs[(parent, node)] = draw(weight)
        if draw(st.booleans()):  # sometimes add the reverse arc too
            u, v = (node, parent) if (node, parent) not in arcs else (parent, node)
            if (u, v) not in arcs:
                arcs[(u, v)] = draw(weight)
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and (u, v) not in arcs:
            arcs[(u, v)] = draw(weight)
    count = draw(st.integers(min_value=1, max_value=max(1, n // 2)))
    nodes = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=count, max_size=count, unique=True,
        )
    )
    points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
    query = draw(st.integers(min_value=0, max_value=n - 1))
    k = draw(st.integers(min_value=1, max_value=3))
    return [(u, v, w) for (u, v), w in arcs.items()], points, query, k


class TestDirectedAgainstOracle:
    """Every directed method against the full forward-Dijkstra oracle.

    This class exists because the pruning lemma of the directed eager
    traversal has a subtle exception (a pruning witness can be the very
    candidate it would prune, and a point never counts against itself)
    that hand-picked examples missed.
    """

    @given(directed_instances())
    @settings(**SETTINGS)
    def test_all_methods_directed(self, instance):
        arcs, points, query, k = instance
        db = DirectedGraphDatabase.from_arcs(arcs, points)
        db.materialize(k + 1)
        want = brute_force_directed_rknn(db.graph, points, query, k)
        for method in ("naive", "eager", "eager-m"):
            assert list(db.rknn(query, k, method=method).points) == want, method

    @given(directed_instances())
    @settings(**SETTINGS)
    def test_exclusion_directed(self, instance):
        arcs, points, query, k = instance
        db = DirectedGraphDatabase.from_arcs(arcs, points)
        db.materialize(k + 1)
        coincident = points.point_at(query)
        exclude = frozenset({coincident}) if coincident is not None else frozenset()
        want = brute_force_directed_rknn(db.graph, points, query, k, exclude)
        for method in ("naive", "eager", "eager-m"):
            got = list(db.rknn(query, k, method=method, exclude=exclude).points)
            assert got == want, method


class TestEngineProperties:
    """The batch engine is answer-transparent: for any batch, any worker
    count and any cache state, results equal the brute-force oracle."""

    @given(restricted_instances(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_batched_methods_match_oracle(self, instance, workers):
        graph, points, query, k = instance
        db = GraphDatabase(graph, points)
        db.materialize(k + 1)
        want = brute_force_rknn(graph, points, query, k)
        specs = [QuerySpec("rknn", query, k=k, method=method)
                 for method in ("eager", "lazy", "lazy-ep", "eager-m")]
        engine = db.engine()
        cold = engine.run_batch(specs, workers=workers)
        assert [list(r.points) for r in cold.results] == [want] * len(specs)
        # warm replay: identical answers, all hits, zero incremental I/O
        warm = engine.run_batch(specs, workers=workers)
        assert [list(r.points) for r in warm.results] == [want] * len(specs)
        assert warm.misses == 0 and warm.io == 0

    @given(restricted_instances())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_cache_never_survives_updates(self, instance):
        graph, points, query, k = instance
        db = GraphDatabase(graph, points)
        engine = db.engine()
        spec = QuerySpec("rknn", query, k=k)
        engine.run(spec)
        free = next(
            (n for n in range(graph.num_nodes) if points.point_at(n) is None),
            None,
        )
        if free is None:
            return
        db.insert_point(999, free)
        fresh = engine.run(spec)
        want = brute_force_rknn(graph, db.points, query, k)
        assert list(fresh.points) == want


class TestBichromaticProperties:
    @given(restricted_instances(), st.integers(min_value=0, max_value=10_000))
    @settings(**SETTINGS)
    def test_bichromatic_matches_oracle(self, instance, ref_seed):
        graph, data, query, k = instance
        import random

        rng = random.Random(ref_seed)
        count = rng.randint(1, max(1, graph.num_nodes // 3))
        nodes = rng.sample(range(graph.num_nodes), count)
        refs = NodePointSet({500 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, data)
        db.attach_reference(refs)
        db.materialize_reference(k + 1)
        want = brute_force_brknn(graph, data, refs, query, k)
        for method in ("eager", "lazy", "eager-m"):
            got = list(db.bichromatic_rknn(query, k, method=method).points)
            assert got == want, method
