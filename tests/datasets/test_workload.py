"""Tests for workload generation."""

import pytest

from repro.datasets.workload import (
    data_queries,
    node_queries,
    place_edge_points,
    place_node_points,
    random_route,
    random_routes,
)
from repro.errors import QueryError
from repro.graph.graph import Graph


@pytest.fixture
def grid_graph():
    side = 8
    edges = []
    for row in range(side):
        for col in range(side):
            node = row * side + col
            if col + 1 < side:
                edges.append((node, node + 1, 1.0))
            if row + 1 < side:
                edges.append((node, node + side, 1.0))
    return Graph(side * side, edges)


class TestPointPlacement:
    def test_node_density(self, grid_graph):
        points = place_node_points(grid_graph, 0.25, seed=1)
        assert len(points) == 16

    def test_node_points_distinct(self, grid_graph):
        points = place_node_points(grid_graph, 0.5, seed=2)
        nodes = [node for _, node in points.items()]
        assert len(set(nodes)) == len(nodes)

    def test_edge_density(self, grid_graph):
        points = place_edge_points(grid_graph, 0.1, seed=3)
        assert len(points) == 6
        points.validate(grid_graph)

    def test_first_id_offset(self, grid_graph):
        points = place_node_points(grid_graph, 0.1, seed=4, first_id=1000)
        assert min(points.ids()) == 1000

    def test_bad_density_rejected(self, grid_graph):
        with pytest.raises(QueryError):
            place_node_points(grid_graph, 0.0)
        with pytest.raises(QueryError):
            place_node_points(grid_graph, 1.5)

    def test_deterministic(self, grid_graph):
        first = place_node_points(grid_graph, 0.2, seed=9)
        second = place_node_points(grid_graph, 0.2, seed=9)
        assert dict(first.items()) == dict(second.items())


class TestQueries:
    def test_queries_follow_data(self, grid_graph):
        points = place_node_points(grid_graph, 0.2, seed=5)
        queries = data_queries(points, count=30, seed=6)
        point_nodes = {node for _, node in points.items()}
        assert len(queries) == 30
        assert all(q.location in point_nodes for q in queries)

    def test_query_excludes_own_point(self, grid_graph):
        points = place_node_points(grid_graph, 0.2, seed=7)
        for query in data_queries(points, count=10, seed=8):
            (excluded,) = query.exclude
            assert points.node_of(excluded) == query.location

    def test_no_exclusion_option(self, grid_graph):
        points = place_node_points(grid_graph, 0.2, seed=7)
        queries = data_queries(points, count=5, seed=8, exclude_query_point=False)
        assert all(not q.exclude for q in queries)

    def test_edge_point_queries(self, grid_graph):
        points = place_edge_points(grid_graph, 0.2, seed=9)
        queries = data_queries(points, count=5, seed=10)
        for query in queries:
            u, v, pos = query.location
            assert grid_graph.has_edge(u, v)

    def test_node_queries_uniform(self, grid_graph):
        queries = node_queries(grid_graph, count=20, seed=11)
        assert len(queries) == 20
        assert all(0 <= q.location < grid_graph.num_nodes for q in queries)

    def test_empty_point_set_rejected(self, grid_graph):
        from repro.points.points import NodePointSet

        with pytest.raises(QueryError):
            data_queries(NodePointSet({}), count=5)


class TestRoutes:
    def test_route_is_simple_walk(self, grid_graph):
        route = random_route(grid_graph, 12, seed=12)
        assert len(route) == 12
        assert len(set(route)) == 12
        for a, b in zip(route, route[1:]):
            assert grid_graph.has_edge(a, b)

    def test_multiple_routes(self, grid_graph):
        routes = random_routes(grid_graph, 6, count=5, seed=13)
        assert len(routes) == 5
        assert all(len(r) == 6 for r in routes)

    def test_bad_length_rejected(self, grid_graph):
        with pytest.raises(QueryError):
            random_route(grid_graph, 0)

    def test_impossible_route_raises(self):
        tiny = Graph(2, [(0, 1, 1.0)])
        with pytest.raises(QueryError):
            random_route(tiny, 10)
