"""Tests for the data-set generators (paper Section 6 test beds)."""

import collections

import pytest

from repro.datasets.brite import generate_brite
from repro.datasets.dblp import generate_dblp
from repro.datasets.grid import generate_grid
from repro.datasets.spatial import COORD_RANGE, generate_spatial
from repro.errors import GraphError


class TestDblp:
    @pytest.fixture(scope="class")
    def dblp(self):
        return generate_dblp(num_nodes=1200, num_edges=3700, seed=7)

    def test_connected_and_sized(self, dblp):
        graph = dblp.graph
        assert graph.is_connected()
        assert 0.85 * 1200 <= graph.num_nodes <= 1200
        assert graph.num_edges >= 3400

    def test_unit_weights(self, dblp):
        assert all(w == 1.0 for _, _, w in dblp.graph.edges())

    def test_degree_distribution_is_skewed(self, dblp):
        graph = dblp.graph
        degrees = sorted(graph.degree(n) for n in graph.nodes())
        # a collaboration graph has a heavy tail: the max degree is far
        # above the median
        assert degrees[-1] > 8 * degrees[len(degrees) // 2]

    def test_paper_counts_are_skewed(self, dblp):
        histogram = collections.Counter(dblp.sigmod_papers)
        assert histogram[0] > histogram[1] > histogram[3]

    def test_attribute_selection(self, dblp):
        twos = dblp.authors_with_papers(2)
        assert twos
        assert all(dblp.sigmod_papers[node] == 2 for node in twos)

    def test_deterministic_per_seed(self):
        first = generate_dblp(num_nodes=300, num_edges=900, seed=3)
        second = generate_dblp(num_nodes=300, num_edges=900, seed=3)
        assert sorted(first.graph.edges()) == sorted(second.graph.edges())
        assert first.sigmod_papers == second.sigmod_papers


class TestBrite:
    def test_average_degree_near_four(self):
        graph = generate_brite(2000, m=2, seed=1)
        assert 3.8 <= graph.average_degree() <= 4.0

    def test_connected(self):
        assert generate_brite(500, seed=2).is_connected()

    def test_hop_weights(self):
        graph = generate_brite(300, seed=3, weights="hop")
        assert all(w == 1.0 for _, _, w in graph.edges())

    def test_latency_weights_in_range(self):
        graph = generate_brite(300, seed=4)
        assert all(1.0 <= w <= 10.0 for _, _, w in graph.edges())

    def test_exponential_expansion(self):
        # preferential attachment: hop-radius 4 already covers most nodes
        graph = generate_brite(3000, seed=5, weights="hop")
        from repro.core.baseline import dijkstra

        within4 = sum(1 for d in dijkstra(graph, [(0, 0.0)]).values() if d <= 4)
        assert within4 > 0.5 * graph.num_nodes

    def test_preferential_attachment_tail(self):
        graph = generate_brite(3000, seed=6)
        max_degree = max(graph.degree(n) for n in graph.nodes())
        assert max_degree > 30  # hubs exist

    def test_bad_parameters(self):
        with pytest.raises(GraphError):
            generate_brite(2, m=2)
        with pytest.raises(GraphError):
            generate_brite(100, weights="parsecs")


class TestSpatial:
    @pytest.fixture(scope="class")
    def spatial(self):
        return generate_spatial(2500, seed=11)

    def test_connected(self, spatial):
        assert spatial.is_connected()

    def test_edge_node_ratio(self, spatial):
        ratio = spatial.num_edges / spatial.num_nodes
        assert 1.1 <= ratio <= 1.45  # paper's SF map: ~1.27

    def test_coordinates_in_range(self, spatial):
        assert spatial.coords is not None
        for x, y in spatial.coords:
            assert 0.0 <= x <= COORD_RANGE
            assert 0.0 <= y <= COORD_RANGE

    def test_euclidean_weights(self, spatial):
        import math

        for u, v, w in spatial.edges():
            ux, uy = spatial.coords[u]
            vx, vy = spatial.coords[v]
            assert w == pytest.approx(math.hypot(ux - vx, uy - vy))

    def test_no_exponential_expansion(self, spatial):
        # planar locality: a 6-hop ball is a small fraction of the graph
        from collections import deque

        seen = {0}
        frontier = deque([(0, 0)])
        while frontier:
            node, hops = frontier.popleft()
            if hops == 6:
                continue
            for nbr, _ in spatial.neighbors(node):
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append((nbr, hops + 1))
        assert len(seen) < 0.25 * spatial.num_nodes


class TestGrid:
    def test_standard_grid_degree(self):
        graph = generate_grid(900, average_degree=4.0, seed=1)
        assert graph.average_degree() == pytest.approx(4.0, abs=0.3)

    def test_higher_degree(self):
        graph = generate_grid(900, average_degree=6.0, seed=2)
        assert graph.average_degree() == pytest.approx(6.0, abs=0.3)

    def test_connected(self):
        assert generate_grid(400, seed=3).is_connected()

    def test_degree_below_four_rejected(self):
        with pytest.raises(GraphError):
            generate_grid(400, average_degree=3.0)
