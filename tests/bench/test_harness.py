"""Tests for the benchmark harness."""

import os

import pytest

from repro import GraphDatabase
from repro.bench.harness import (
    latency_percentiles,
    profile_batch,
    run_continuous_workload,
    run_throughput_benchmark,
    run_update_workload,
    run_workload,
    span_breakdown,
    throughput_specs,
)
from repro.obs import Tracer
from repro.bench.throughput import default_benchmark_db
from repro.bench import throughput
from repro.bench.report import format_table, save_report
from repro.bench.runner import current_profile
from repro.datasets.workload import Query, place_node_points
from repro.errors import ReproError
from repro.graph.graph import Graph


@pytest.fixture
def bench_db():
    n = 64
    edges = [(i, i + 1, 1.0) for i in range(n - 1)]
    edges += [(i, i + 8, 2.0) for i in range(n - 8)]
    graph = Graph(n, edges)
    points = place_node_points(graph, 0.1, seed=1)
    return GraphDatabase(graph, points), points


class TestRunWorkload:
    def test_aggregates(self, bench_db):
        db, points = bench_db
        queries = [Query(node) for _, node in list(points.items())[:5]]
        cost = run_workload(db, queries, k=1, method="eager")
        assert cost.queries == 5
        assert cost.io_mean > 0
        assert cost.cpu_mean_s >= 0
        assert cost.total_mean_s >= cost.cpu_mean_s
        assert cost.method == "eager"

    def test_row_shape(self, bench_db):
        db, points = bench_db
        queries = [Query(node) for _, node in list(points.items())[:3]]
        row = run_workload(db, queries, k=1, method="lazy").row()
        assert {"method", "io", "cpu_s", "total_s"} <= set(row)

    def test_warm_buffer_reduces_io(self, bench_db):
        db, points = bench_db
        queries = [Query(node) for _, node in list(points.items())[:4]] * 2
        cold = run_workload(db, queries, k=1, method="eager")
        warm = run_workload(db, queries, k=1, method="eager", warm_buffer=True)
        assert warm.io_mean <= cold.io_mean

    def test_continuous(self, bench_db):
        db, _ = bench_db
        cost = run_continuous_workload(db, [[0, 1, 2], [10, 11]], k=1, method="eager")
        assert cost.queries == 2

    def test_updates(self, bench_db):
        db, points = bench_db
        db.materialize(2)
        occupied = {node for _, node in points.items()}
        free = [n for n in db.graph.nodes() if n not in occupied]
        stats = run_update_workload(
            db, insert_locations=free[:3],
            delete_ids=sorted(points.ids())[:2],
        )
        assert stats["insert_io"] > 0
        assert stats["delete_io"] > 0


class TestThroughputBenchmark:
    def test_repeated_workload_shape(self, bench_db):
        db, _ = bench_db
        specs = throughput_specs(db, distinct=5, repeat=3, seed=4)
        assert len(specs) == 15
        assert len({spec.key() for spec in specs}) <= 5

    def test_acceptance_speedup_on_default_graph(self):
        """PR acceptance: batched engine execution (4 workers, warm
        cache) is at least 2x sequential single-query throughput on
        the harness's default graph."""
        db = default_benchmark_db()
        specs = throughput_specs(db, distinct=25, repeat=4, seed=0)
        report = run_throughput_benchmark(db, specs, workers=4)
        assert report.queries == 100
        assert report.workers == 4
        assert report.cache_misses == 0  # the warm batch is all hits
        assert report.batch_io == 0
        assert report.speedup >= 2.0
        assert report.batched_qps >= 2.0 * report.sequential_qps

    def test_summary_lines(self, bench_db):
        db, _ = bench_db
        specs = throughput_specs(db, distinct=4, repeat=2, seed=1)
        report = run_throughput_benchmark(db, specs, workers=2)
        text = "\n".join(report.summary_lines())
        assert "speedup" in text and "workers" in text
        assert "p95" in text and "p99" in text

    def test_report_carries_per_query_latencies(self, bench_db):
        db, _ = bench_db
        specs = throughput_specs(db, distinct=4, repeat=2, seed=1)
        report = run_throughput_benchmark(db, specs, workers=2)
        assert len(report.sequential_latencies) == report.queries
        tail = report.percentiles()
        assert 0.0 < tail["p50_ms"] <= tail["p95_ms"] <= tail["p99_ms"]
        assert report.batched_mean_ms > 0.0

    def test_profile_is_opt_in_and_covers_the_cold_batch(self, bench_db):
        db, _ = bench_db
        specs = throughput_specs(db, distinct=4, repeat=2, seed=1)
        plain = run_throughput_benchmark(db, specs, workers=2)
        assert plain.profile is None  # untraced by default
        profiled = run_throughput_benchmark(db, specs, workers=2,
                                            profile=True)
        breakdown = profiled.profile
        assert breakdown["edges_expanded"] > 0
        assert "execute.rknn" in breakdown["spans"]
        assert breakdown["spans"]["engine.run_batch"]["count"] == 1


class TestProfileBatch:
    def test_breakdown_matches_tracker_totals(self, bench_db):
        db, _ = bench_db
        specs = throughput_specs(db, distinct=4, repeat=1, seed=2)
        engine = db.engine()
        before = db.tracker.snapshot()
        outcome, breakdown = profile_batch(engine, specs)
        diff = db.tracker.diff(before)
        assert len(outcome.results) == len(specs)
        assert breakdown["edges_expanded"] == diff.edges_expanded
        assert breakdown["nodes_visited"] == diff.nodes_visited
        executed = breakdown["spans"]["execute.rknn"]
        assert executed["count"] == outcome.executed
        assert executed["total_ms"] >= 0.0

    def test_span_breakdown_aggregates_by_name(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.add("leaf", duration=0.002, io=3)
            tracer.add("leaf", duration=0.001, io=1)
        breakdown = span_breakdown(tracer)
        assert breakdown["spans"]["leaf"]["count"] == 2
        assert breakdown["spans"]["leaf"]["total_ms"] == pytest.approx(
            3.0, abs=0.01)
        assert breakdown["io"] == 4

    def test_module_main_smoke(self, capsys):
        assert throughput.main([
            "--nodes", "100", "--distinct", "5", "--repeat", "2",
            "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "sequential" in out


class TestLatencyPercentiles:
    def test_empty_sample_reports_zeros(self):
        assert latency_percentiles([]) == {
            "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
        }

    def test_nearest_rank_on_known_sample(self):
        # 100 samples of 1..100 ms: pXX is exactly XX ms
        sample = [i / 1000.0 for i in range(1, 101)]
        tail = latency_percentiles(sample)
        assert tail == {"p50_ms": 50.0, "p95_ms": 95.0, "p99_ms": 99.0}

    def test_single_observation_is_every_percentile(self):
        tail = latency_percentiles([0.004])
        assert tail == {"p50_ms": 4.0, "p95_ms": 4.0, "p99_ms": 4.0}

    def test_order_independent(self):
        sample = [0.005, 0.001, 0.009, 0.002]
        assert latency_percentiles(sample) == \
            latency_percentiles(sorted(sample))


class TestReport:
    def test_format_table(self):
        text = format_table("T", [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}])
        assert "T" in text and "a" in text and "2.5" in text

    def test_empty_table(self):
        assert "(no data)" in format_table("T", [])

    def test_save_report(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_report("unit", "hello\n")
        assert os.path.exists(path)
        assert open(path).read() == "hello\n"


class TestProfiles:
    def test_default_profile(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_profile().name == "small"

    def test_selectable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        profile = current_profile()
        assert profile.name == "smoke"
        assert profile.workload_size <= 10

    def test_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ReproError):
            current_profile()
