"""Tests for the benchmark harness."""

import os

import pytest

from repro import GraphDatabase
from repro.bench.harness import (
    run_continuous_workload,
    run_update_workload,
    run_workload,
)
from repro.bench.report import format_table, save_report
from repro.bench.runner import current_profile
from repro.datasets.workload import Query, place_node_points
from repro.errors import ReproError
from repro.graph.graph import Graph


@pytest.fixture
def bench_db():
    n = 64
    edges = [(i, i + 1, 1.0) for i in range(n - 1)]
    edges += [(i, i + 8, 2.0) for i in range(n - 8)]
    graph = Graph(n, edges)
    points = place_node_points(graph, 0.1, seed=1)
    return GraphDatabase(graph, points), points


class TestRunWorkload:
    def test_aggregates(self, bench_db):
        db, points = bench_db
        queries = [Query(node) for _, node in list(points.items())[:5]]
        cost = run_workload(db, queries, k=1, method="eager")
        assert cost.queries == 5
        assert cost.io_mean > 0
        assert cost.cpu_mean_s >= 0
        assert cost.total_mean_s >= cost.cpu_mean_s
        assert cost.method == "eager"

    def test_row_shape(self, bench_db):
        db, points = bench_db
        queries = [Query(node) for _, node in list(points.items())[:3]]
        row = run_workload(db, queries, k=1, method="lazy").row()
        assert {"method", "io", "cpu_s", "total_s"} <= set(row)

    def test_warm_buffer_reduces_io(self, bench_db):
        db, points = bench_db
        queries = [Query(node) for _, node in list(points.items())[:4]] * 2
        cold = run_workload(db, queries, k=1, method="eager")
        warm = run_workload(db, queries, k=1, method="eager", warm_buffer=True)
        assert warm.io_mean <= cold.io_mean

    def test_continuous(self, bench_db):
        db, _ = bench_db
        cost = run_continuous_workload(db, [[0, 1, 2], [10, 11]], k=1, method="eager")
        assert cost.queries == 2

    def test_updates(self, bench_db):
        db, points = bench_db
        db.materialize(2)
        occupied = {node for _, node in points.items()}
        free = [n for n in db.graph.nodes() if n not in occupied]
        stats = run_update_workload(
            db, insert_locations=free[:3],
            delete_ids=sorted(points.ids())[:2],
        )
        assert stats["insert_io"] > 0
        assert stats["delete_io"] > 0


class TestReport:
    def test_format_table(self):
        text = format_table("T", [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}])
        assert "T" in text and "a" in text and "2.5" in text

    def test_empty_table(self):
        assert "(no data)" in format_table("T", [])

    def test_save_report(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_report("unit", "hello\n")
        assert os.path.exists(path)
        assert open(path).read() == "hello\n"


class TestProfiles:
    def test_default_profile(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_profile().name == "small"

    def test_selectable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        profile = current_profile()
        assert profile.name == "smoke"
        assert profile.workload_size <= 10

    def test_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ReproError):
            current_profile()
