"""Tests for the ASCII figure renderer."""

from repro.bench.chart import BAR_WIDTH, format_chart
from repro.bench.report import format_figure

ROWS = [
    {"D": 0.01, "method": "eager", "total_s": 10.0},
    {"D": 0.01, "method": "lazy", "total_s": 100.0},
    {"D": 0.05, "method": "eager", "total_s": 1.0},
    {"D": 0.05, "method": "lazy", "total_s": 100.0},
]


class TestFormatChart:
    def test_empty_rows(self):
        assert "(no data)" in format_chart("t", [], "D", "method", "total_s")

    def test_groups_appear_in_first_seen_order(self):
        text = format_chart("t", ROWS, "D", "method", "total_s")
        assert text.index("D=0.01") < text.index("D=0.05")

    def test_every_row_gets_a_bar(self):
        text = format_chart("t", ROWS, "D", "method", "total_s")
        assert text.count("#") > 0
        assert sum("eager" in line for line in text.splitlines()) == 2
        assert sum("lazy" in line for line in text.splitlines()) == 2

    def test_log_scale_extremes(self):
        text = format_chart("t", ROWS, "D", "method", "total_s")
        lines = [line for line in text.splitlines() if "#" in line]
        longest = max(line.count("#") for line in lines)
        shortest = min(line.count("#") for line in lines)
        assert longest == BAR_WIDTH       # the max value fills the width
        assert shortest == 1              # the min value is one tick

    def test_linear_scale_is_proportional(self):
        rows = [
            {"x": 1, "method": "a", "v": 50.0},
            {"x": 1, "method": "b", "v": 100.0},
        ]
        text = format_chart("t", rows, "x", "method", "v", log_scale=False)
        lines = [line for line in text.splitlines() if "#" in line]
        assert lines[0].count("#") * 2 == lines[1].count("#")

    def test_zero_values_plot_empty(self):
        rows = [
            {"x": 1, "method": "a", "v": 0.0},
            {"x": 1, "method": "b", "v": 5.0},
        ]
        text = format_chart("t", rows, "x", "method", "v")
        a_line = next(line for line in text.splitlines() if " a " in line)
        assert "#" not in a_line

    def test_all_zero_is_handled(self):
        rows = [{"x": 1, "method": "a", "v": 0.0}]
        assert "no positive values" in format_chart("t", rows, "x", "method", "v")

    def test_equal_values_fill_width(self):
        rows = [
            {"x": 1, "method": "a", "v": 7.0},
            {"x": 1, "method": "b", "v": 7.0},
        ]
        text = format_chart("t", rows, "x", "method", "v")
        lines = [line for line in text.splitlines() if "#" in line]
        assert all(line.count("#") == BAR_WIDTH for line in lines)

    def test_non_numeric_values_plot_empty(self):
        rows = [
            {"x": 1, "method": "a", "v": "-"},
            {"x": 1, "method": "b", "v": 3.0},
        ]
        text = format_chart("t", rows, "x", "method", "v")
        assert "#" in text  # b still plots


class TestFormatFigure:
    def test_contains_table_and_chart(self):
        text = format_figure("Figure X", ROWS, group_by="D")
        assert text.count("Figure X") == 2  # table title + chart title
        assert "method" in text             # table header
        assert "#" in text                  # chart bars

    def test_value_column_named_in_chart_header(self):
        text = format_figure("F", ROWS, group_by="D", value="total_s")
        assert "[total_s, log scale]" in text
