"""The baseline gate in ``benchmarks/emit.py --check``, both directions.

Runs :func:`check` in-process against a temporary emitted directory so
the gate's failure modes -- and especially the reverse gap (an emitted
result nobody committed a baseline for) -- stay covered by a test
instead of only by CI behavior.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def emit_module():
    spec = importlib.util.spec_from_file_location(
        "bench_emit_under_test", ROOT / "benchmarks" / "emit.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop(spec.name, None)


def write_result(directory: Path, name: str, metrics: dict,
                 regression: dict | None = None,
                 scale: str = "small") -> Path:
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps({
        "benchmark": name,
        "scale": scale,
        "metrics": metrics,
        "regression": regression or {},
    }))
    return path


def test_matching_result_passes(emit_module, tmp_path, capsys):
    write_result(tmp_path, "oracle", {"io": 10})
    failures = emit_module.check(tmp_path, only=("oracle",))
    assert failures == 0


def test_emitted_without_baseline_fails_by_name(emit_module, tmp_path,
                                                capsys):
    write_result(tmp_path, "oracle", {"io": 10})
    write_result(tmp_path, "brand_new_bench", {"speedup": 9.9})
    failures = emit_module.check(tmp_path)
    out = capsys.readouterr().out
    assert failures >= 1
    assert "brand_new_bench" in out
    assert "no committed baseline" in out
    # the expected destination is spelled out so the fix is copyable
    assert "BENCH_brand_new_bench.json" in out


def test_unreadable_emitted_file_fails(emit_module, tmp_path, capsys):
    (tmp_path / "BENCH_garbage.json").write_text("{not json")
    failures = emit_module.check(tmp_path, only=("oracle",))
    assert failures >= 1
    assert "unreadable emitted result" in capsys.readouterr().out


def test_only_filter_skips_foreign_emitted_files(emit_module, tmp_path):
    # an un-baselined result outside the --only subset must not fail a
    # CI job that intentionally runs a single benchmark
    write_result(tmp_path, "oracle", {"io": 10})
    write_result(tmp_path, "someone_elses_bench", {"x": 1})
    assert emit_module.check(tmp_path, only=("oracle",)) == 0


def test_missing_only_name_fails(emit_module, tmp_path, capsys):
    failures = emit_module.check(tmp_path, only=("no_such_bench",))
    assert failures >= 1
    assert "no committed baseline by that name" in capsys.readouterr().out


def test_regressed_metric_fails(emit_module, tmp_path, capsys, monkeypatch):
    baseline = json.loads(
        (ROOT / "benchmarks" / "results" / "BENCH_oracle.json").read_text())
    # the gate only compares baselines recorded at the active scale
    monkeypatch.setenv("REPRO_BENCH_SCALE", baseline["scale"])
    gated, rule = next(iter(baseline["regression"].items()))
    metrics = dict(baseline["metrics"])
    if rule["direction"] == "higher":
        metrics[gated] = metrics[gated] / 100.0
    else:
        metrics[gated] = metrics[gated] * 100.0 + 1000.0
    write_result(tmp_path, "oracle", metrics,
                 regression=baseline["regression"],
                 scale=baseline["scale"])
    failures = emit_module.check(tmp_path, only=("oracle",))
    assert failures >= 1
    assert f"FAIL  oracle.{gated}" in capsys.readouterr().out
