"""Tests for A* search and its heuristics."""

import random

import pytest

from repro.datasets.spatial import generate_spatial
from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.paths.astar import astar_path, euclidean_heuristic, zero_heuristic
from repro.paths.dijkstra import shortest_path
from tests.conftest import build_random_graph


class TestAstarBasics:
    def test_source_equals_target(self, ring_graph):
        result = astar_path(ring_graph, 1, 1)
        assert result.distance == 0.0
        assert result.nodes == (1,)

    def test_none_heuristic_is_dijkstra(self, p2p_graph):
        for target in range(p2p_graph.num_nodes):
            expected = shortest_path(p2p_graph, 4, target)
            got = astar_path(p2p_graph, 4, target, heuristic=None)
            assert got.distance == pytest.approx(expected.distance)

    def test_zero_heuristic_returns_zero(self):
        assert zero_heuristic(123) == 0.0

    def test_unreachable(self):
        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        assert not astar_path(graph, 0, 2).found


class TestEuclideanHeuristic:
    def test_requires_coordinates_for_target(self):
        with pytest.raises(QueryError):
            euclidean_heuristic([(0.0, 0.0)], target=5)

    def test_bound_is_zero_at_target(self):
        coords = [(0.0, 0.0), (3.0, 4.0)]
        h = euclidean_heuristic(coords, target=1)
        assert h(1) == 0.0
        assert h(0) == pytest.approx(5.0)

    def test_scale_multiplies_bound(self):
        coords = [(0.0, 0.0), (3.0, 4.0)]
        h = euclidean_heuristic(coords, target=1, scale=0.5)
        assert h(0) == pytest.approx(2.5)


class TestAstarOnSpatialNetwork:
    @pytest.fixture(scope="class")
    def sf_like(self):
        # weights equal Euclidean edge lengths: scale=1 bound is admissible
        return generate_spatial(num_nodes=400, seed=7)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_dijkstra_distance(self, sf_like, seed):
        rng = random.Random(seed)
        source, target = rng.sample(range(sf_like.num_nodes), 2)
        expected = shortest_path(sf_like, source, target)
        h = euclidean_heuristic(sf_like.coords, target)
        got = astar_path(sf_like, source, target, heuristic=h)
        assert got.distance == pytest.approx(expected.distance)

    @pytest.mark.parametrize("seed", range(8))
    def test_settles_no_more_nodes_than_dijkstra(self, sf_like, seed):
        rng = random.Random(100 + seed)
        source, target = rng.sample(range(sf_like.num_nodes), 2)
        plain = shortest_path(sf_like, source, target)
        h = euclidean_heuristic(sf_like.coords, target)
        guided = astar_path(sf_like, source, target, heuristic=h)
        assert guided.nodes_settled <= plain.nodes_settled

    def test_path_is_valid_edge_sequence(self, sf_like):
        source, target = 0, sf_like.num_nodes - 1
        h = euclidean_heuristic(sf_like.coords, target)
        result = astar_path(sf_like, source, target, heuristic=h)
        assert result.nodes[0] == source and result.nodes[-1] == target
        total = sum(
            sf_like.weight(u, v) for u, v in zip(result.nodes, result.nodes[1:])
        )
        assert total == pytest.approx(result.distance)


class TestAstarRandomized:
    @pytest.mark.parametrize("seed", range(10))
    def test_zero_heuristic_matches_dijkstra_everywhere(self, seed):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(4, 30), rng.randint(0, 30))
        source, target = rng.sample(range(graph.num_nodes), 2)
        assert astar_path(graph, source, target).distance == pytest.approx(
            shortest_path(graph, source, target).distance
        )
