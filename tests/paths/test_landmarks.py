"""Tests for the ALT landmark index."""

import random

import pytest

from repro.datasets.brite import generate_brite
from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.paths.astar import astar_path
from repro.paths.dijkstra import shortest_path, single_source_distances
from repro.paths.landmarks import LandmarkIndex
from tests.conftest import build_random_graph


class TestLandmarkConstruction:
    def test_requires_positive_count(self, ring_graph):
        with pytest.raises(QueryError):
            LandmarkIndex.build(ring_graph, 6, count=0)

    def test_count_cannot_exceed_nodes(self, ring_graph):
        with pytest.raises(QueryError):
            LandmarkIndex.build(ring_graph, 6, count=7)

    def test_unknown_strategy_rejected(self, ring_graph):
        with pytest.raises(QueryError):
            LandmarkIndex.build(ring_graph, 6, count=2, strategy="nearest")

    def test_mismatched_tables_rejected(self):
        with pytest.raises(QueryError):
            LandmarkIndex([0, 1], [{0: 0.0}])

    def test_landmarks_are_distinct(self, ring_graph):
        index = LandmarkIndex.build(ring_graph, 6, count=4)
        assert len(set(index.landmarks)) == 4

    def test_storage_entries_counts_pairs(self, ring_graph):
        index = LandmarkIndex.build(ring_graph, 6, count=3)
        assert index.storage_entries == 3 * 6

    def test_farthest_strategy_spreads_landmarks(self):
        # on a path, the second farthest-pick must be an endpoint far
        # from the first landmark
        n = 30
        graph = Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        index = LandmarkIndex.build(graph, n, count=2, seed=1)
        first, second = index.landmarks
        dist = single_source_distances(graph, first)
        assert dist[second] == max(dist.values())

    def test_random_strategy_builds(self, ring_graph):
        index = LandmarkIndex.build(ring_graph, 6, count=3, strategy="random")
        assert len(index.landmarks) == 3


class TestLandmarkBounds:
    @pytest.mark.parametrize("seed", range(10))
    def test_lower_bound_is_admissible(self, seed):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(5, 30), rng.randint(0, 30))
        index = LandmarkIndex.build(graph, graph.num_nodes, count=3, seed=seed)
        for _ in range(10):
            u, v = rng.sample(range(graph.num_nodes), 2)
            true = shortest_path(graph, u, v).distance
            assert index.lower_bound(u, v) <= true + 1e-9

    def test_bound_to_landmark_is_exact(self, ring_graph):
        index = LandmarkIndex.build(ring_graph, 6, count=1, seed=0)
        landmark = index.landmarks[0]
        for node in range(6):
            true = shortest_path(ring_graph, node, landmark).distance
            assert index.lower_bound(node, landmark) == pytest.approx(true)

    def test_bound_is_symmetric(self, p2p_graph):
        index = LandmarkIndex.build(p2p_graph, p2p_graph.num_nodes, count=2)
        for u in range(p2p_graph.num_nodes):
            for v in range(p2p_graph.num_nodes):
                assert index.lower_bound(u, v) == index.lower_bound(v, u)

    def test_disconnected_landmark_contributes_nothing(self):
        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        index = LandmarkIndex([0], [single_source_distances(graph, 0)])
        assert index.lower_bound(2, 3) == 0.0


class TestLandmarkGuidedAstar:
    @pytest.mark.parametrize("seed", range(8))
    def test_alt_astar_is_exact(self, seed):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(6, 40), rng.randint(0, 40),
                                   int_weights=False)
        index = LandmarkIndex.build(graph, graph.num_nodes, count=4, seed=seed)
        source, target = rng.sample(range(graph.num_nodes), 2)
        expected = shortest_path(graph, source, target).distance
        got = astar_path(graph, source, target, heuristic=index.heuristic(target))
        assert got.distance == pytest.approx(expected)

    def test_alt_astar_no_worse_than_dijkstra_on_brite(self):
        graph = generate_brite(300, seed=5)
        index = LandmarkIndex.build(graph, graph.num_nodes, count=6, seed=0)
        rng = random.Random(2)
        for _ in range(5):
            source, target = rng.sample(range(graph.num_nodes), 2)
            plain = shortest_path(graph, source, target)
            guided = astar_path(
                graph, source, target, heuristic=index.heuristic(target)
            )
            assert guided.distance == pytest.approx(plain.distance)
            assert guided.nodes_settled <= plain.nodes_settled
