"""Unit and property tests for point-to-point Dijkstra."""

import math
import random

import networkx as nx
import pytest

from repro.graph.graph import Graph
from repro.paths.dijkstra import (
    shortest_path,
    shortest_path_tree,
    single_source_distances,
)
from tests.conftest import build_random_graph


class TestShortestPathBasics:
    def test_trivial_source_equals_target(self, path_graph):
        result = shortest_path(path_graph, 2, 2)
        assert result.distance == 0.0
        assert result.nodes == (2,)
        assert result.hops == 0

    def test_path_on_weighted_path_graph(self, path_graph):
        result = shortest_path(path_graph, 0, 4)
        assert result.distance == 2 + 3 + 1 + 4
        assert result.nodes == (0, 1, 2, 3, 4)
        assert result.hops == 4

    def test_picks_cheaper_of_two_routes(self):
        # 0-1-2 costs 2; direct 0-2 costs 5
        graph = Graph(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        result = shortest_path(graph, 0, 2)
        assert result.distance == 2.0
        assert result.nodes == (0, 1, 2)

    def test_unreachable_target(self):
        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        result = shortest_path(graph, 0, 3)
        assert not result.found
        assert math.isinf(result.distance)
        assert result.nodes == ()

    def test_early_termination_settles_local_ball(self):
        # on a long path, reaching a nearby target must not settle the rest
        n = 200
        graph = Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        result = shortest_path(graph, 100, 103)
        assert result.distance == 3.0
        assert result.nodes_settled <= 8  # ball of radius 3 around node 100

    def test_path_edges_exist_and_sum_to_distance(self, ring_graph):
        result = shortest_path(ring_graph, 0, 3)
        total = sum(
            ring_graph.weight(u, v)
            for u, v in zip(result.nodes, result.nodes[1:])
        )
        assert total == pytest.approx(result.distance)


class TestShortestPathTree:
    def test_tree_distances_match_per_target_queries(self, p2p_graph):
        dist, parent = shortest_path_tree(p2p_graph, 4)
        for node, d in dist.items():
            assert shortest_path(p2p_graph, 4, node).distance == pytest.approx(d)
        assert parent[4] == 4  # the source is its own parent

    def test_max_dist_truncates_tree(self):
        n = 50
        graph = Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        dist = single_source_distances(graph, 0, max_dist=5.0)
        assert set(dist) == set(range(6))

    def test_parents_form_tree_rooted_at_source(self, ring_graph):
        dist, parent = shortest_path_tree(ring_graph, 0)
        for node in dist:
            current = node
            for _ in range(len(dist) + 1):
                if current == 0:
                    break
                current = parent[current]
            assert current == 0

    def test_parent_edge_consistent_with_distance(self, p2p_graph):
        dist, parent = shortest_path_tree(p2p_graph, 2)
        for node, d in dist.items():
            if node == 2:
                continue
            prev = parent[node]
            assert dist[prev] + p2p_graph.weight(prev, node) == pytest.approx(d)


class TestDijkstraAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(10))
    def test_distances_match_networkx(self, seed):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(5, 40), rng.randint(0, 40),
                                   int_weights=False)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(graph.num_nodes))
        for u, v, w in graph.edges():
            nxg.add_edge(u, v, weight=w)
        source, target = rng.sample(range(graph.num_nodes), 2)
        expected = nx.shortest_path_length(nxg, source, target, weight="weight")
        result = shortest_path(graph, source, target)
        assert result.distance == pytest.approx(expected)
        # the reported node sequence must itself realize the distance
        total = sum(graph.weight(u, v) for u, v in zip(result.nodes, result.nodes[1:]))
        assert total == pytest.approx(expected)

    @pytest.mark.parametrize("seed", range(5))
    def test_single_source_matches_networkx(self, seed):
        rng = random.Random(seed + 100)
        graph = build_random_graph(rng, rng.randint(5, 25), rng.randint(0, 20))
        nxg = nx.Graph()
        nxg.add_nodes_from(range(graph.num_nodes))
        for u, v, w in graph.edges():
            nxg.add_edge(u, v, weight=w)
        source = rng.randrange(graph.num_nodes)
        expected = nx.single_source_dijkstra_path_length(nxg, source)
        assert single_source_distances(graph, source) == pytest.approx(expected)
