"""Tests for bidirectional Dijkstra."""

import math
import random

import pytest

from repro.datasets.spatial import generate_spatial
from repro.graph.graph import Graph
from repro.paths.bidirectional import bidirectional_search
from repro.paths.dijkstra import shortest_path
from tests.conftest import build_random_graph


class TestBidirectionalBasics:
    def test_source_equals_target(self, ring_graph):
        result = bidirectional_search(ring_graph, 2, 2)
        assert result.distance == 0.0
        assert result.nodes == (2,)

    def test_adjacent_nodes(self, path_graph):
        result = bidirectional_search(path_graph, 1, 2)
        assert result.distance == 3.0
        assert result.nodes == (1, 2)

    def test_full_path_on_weighted_path(self, path_graph):
        result = bidirectional_search(path_graph, 0, 4)
        assert result.distance == 10.0
        assert result.nodes == (0, 1, 2, 3, 4)

    def test_unreachable(self):
        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        result = bidirectional_search(graph, 0, 3)
        assert not result.found
        assert math.isinf(result.distance)

    def test_two_route_choice(self):
        graph = Graph(4, [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.5), (2, 3, 0.4)])
        result = bidirectional_search(graph, 0, 3)
        assert result.distance == pytest.approx(1.9)
        assert result.nodes == (0, 2, 3)


class TestBidirectionalRandomized:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_dijkstra(self, seed):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(4, 40), rng.randint(0, 50),
                                   int_weights=False)
        source, target = rng.sample(range(graph.num_nodes), 2)
        expected = shortest_path(graph, source, target)
        got = bidirectional_search(graph, source, target)
        assert got.distance == pytest.approx(expected.distance)
        # the returned sequence must realize the claimed distance
        total = sum(graph.weight(u, v) for u, v in zip(got.nodes, got.nodes[1:]))
        assert total == pytest.approx(got.distance)
        assert got.nodes[0] == source and got.nodes[-1] == target

    def test_settles_fewer_nodes_on_planar_long_hauls(self):
        graph = generate_spatial(num_nodes=900, seed=3)
        rng = random.Random(0)
        wins = 0
        trials = 6
        for _ in range(trials):
            source, target = rng.sample(range(graph.num_nodes), 2)
            plain = shortest_path(graph, source, target)
            both = bidirectional_search(graph, source, target)
            assert both.distance == pytest.approx(plain.distance)
            if both.nodes_settled < plain.nodes_settled:
                wins += 1
        # two half-radius balls beat one full ball on most planar pairs
        assert wins >= trials // 2
