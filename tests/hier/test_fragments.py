"""Tests for the BFS-growing fragment partitioner."""

import random

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.hier.fragments import partition_fragments
from tests.conftest import build_random_graph


class TestPartitionValidation:
    def test_rejects_non_positive_size(self, ring_graph):
        with pytest.raises(GraphError):
            partition_fragments(ring_graph, 0)


class TestPartitionInvariants:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("max_size", [1, 3, 8, 100])
    def test_partition_covers_all_nodes_once(self, seed, max_size):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(5, 50), rng.randint(0, 40))
        frag = partition_fragments(graph, max_size)
        seen = sorted(node for group in frag.members for node in group)
        assert seen == list(range(graph.num_nodes))
        for fid, group in enumerate(frag.members):
            for node in group:
                assert frag.fragment_of[node] == fid

    @pytest.mark.parametrize("max_size", [1, 2, 5, 9])
    def test_size_bound_is_respected(self, max_size):
        rng = random.Random(3)
        graph = build_random_graph(rng, 40, 30)
        frag = partition_fragments(graph, max_size)
        assert all(len(group) <= max_size for group in frag.members)

    @pytest.mark.parametrize("seed", range(5))
    def test_fragments_are_connected(self, seed):
        rng = random.Random(seed + 50)
        graph = build_random_graph(rng, rng.randint(8, 40), rng.randint(0, 30))
        frag = partition_fragments(graph, 6)
        for fid, group in enumerate(frag.members):
            members = set(group)
            # BFS inside the fragment must reach every member
            reached = {group[0]}
            stack = [group[0]]
            while stack:
                node = stack.pop()
                for nbr, _ in graph.neighbors(node):
                    if nbr in members and nbr not in reached:
                        reached.add(nbr)
                        stack.append(nbr)
            assert reached == members

    def test_border_nodes_have_cross_edges(self):
        rng = random.Random(9)
        graph = build_random_graph(rng, 30, 25)
        frag = partition_fragments(graph, 5)
        for fid, border in enumerate(frag.borders):
            for node in border:
                assert any(
                    frag.fragment_of[nbr] != fid for nbr, _ in graph.neighbors(node)
                )
            for node in frag.interior_nodes(fid):
                assert all(
                    frag.fragment_of[nbr] == fid for nbr, _ in graph.neighbors(node)
                )

    def test_single_fragment_has_no_borders(self, ring_graph):
        frag = partition_fragments(ring_graph, 100)
        assert frag.num_fragments == 1
        assert frag.borders == ((),)
        assert frag.border_set() == set()
        assert frag.interior_nodes(0) == list(range(6))

    def test_size_one_fragments_make_everything_border(self, ring_graph):
        frag = partition_fragments(ring_graph, 1)
        assert frag.num_fragments == 6
        assert frag.border_set() == set(range(6))

    def test_disconnected_components_get_separate_fragments(self):
        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        frag = partition_fragments(graph, 10)
        assert frag.num_fragments == 2
        assert frag.fragment_of[0] == frag.fragment_of[1]
        assert frag.fragment_of[2] == frag.fragment_of[3]
        assert frag.fragment_of[0] != frag.fragment_of[2]
        assert frag.border_set() == set()
