"""Correctness and accounting tests for the hierarchical distance index."""

import math
import random

import pytest

from repro.errors import GraphError, QueryError
from repro.graph.graph import Graph
from repro.hier.hepv import HierarchicalDistanceIndex
from repro.paths.dijkstra import shortest_path
from tests.conftest import build_random_graph


class TestBuildValidation:
    def test_rejects_bad_fragment_size(self, ring_graph):
        with pytest.raises(GraphError):
            HierarchicalDistanceIndex.build(ring_graph, fragment_size=0)

    def test_out_of_range_nodes_rejected(self, ring_graph):
        index = HierarchicalDistanceIndex.build(ring_graph, fragment_size=3)
        with pytest.raises(QueryError):
            index.distance(0, 99)
        with pytest.raises(QueryError):
            index.distance(-1, 0)


class TestDistanceCorrectness:
    def test_identity(self, ring_graph):
        index = HierarchicalDistanceIndex.build(ring_graph, fragment_size=2)
        assert index.distance(4, 4) == 0.0

    def test_ring_distances(self, ring_graph):
        index = HierarchicalDistanceIndex.build(ring_graph, fragment_size=2)
        for u in range(6):
            for v in range(6):
                expected = min((v - u) % 6, (u - v) % 6)
                assert index.distance(u, v) == pytest.approx(float(expected))

    def test_unreachable_is_infinite(self):
        graph = Graph(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 2.0)])
        index = HierarchicalDistanceIndex.build(graph, fragment_size=2)
        assert math.isinf(index.distance(0, 4))
        assert index.distance(2, 4) == pytest.approx(3.0)

    def test_shortest_path_weaving_between_fragments(self):
        # two parallel corridors; the cheap one keeps crossing fragment
        # boundaries, so a fragment-local route would overestimate
        edges = [(i, i + 1, 10.0) for i in range(5)]           # costly spine
        edges += [(0, 6, 1.0), (6, 1, 1.0), (1, 7, 1.0), (7, 2, 1.0),
                  (2, 8, 1.0), (8, 3, 1.0), (3, 9, 1.0), (9, 4, 1.0),
                  (4, 10, 1.0), (10, 5, 1.0)]                  # cheap zigzag
        graph = Graph(11, edges)
        index = HierarchicalDistanceIndex.build(graph, fragment_size=3)
        assert index.distance(0, 5) == pytest.approx(10.0)

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("fragment_size", [1, 4, 16])
    def test_matches_dijkstra_on_random_graphs(self, seed, fragment_size):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(6, 45), rng.randint(0, 40),
                                   int_weights=False)
        index = HierarchicalDistanceIndex.build(graph, fragment_size=fragment_size)
        for _ in range(12):
            u, v = rng.sample(range(graph.num_nodes), 2)
            expected = shortest_path(graph, u, v).distance
            assert index.distance(u, v) == pytest.approx(expected)

    @pytest.mark.parametrize("seed", range(5))
    def test_symmetry(self, seed):
        rng = random.Random(seed + 200)
        graph = build_random_graph(rng, 25, 20)
        index = HierarchicalDistanceIndex.build(graph, fragment_size=5)
        for _ in range(10):
            u, v = rng.sample(range(graph.num_nodes), 2)
            assert index.distance(u, v) == pytest.approx(index.distance(v, u))


class TestStorageAccounting:
    def test_partial_materialization_is_smaller_than_full(self):
        rng = random.Random(1)
        graph = build_random_graph(rng, 120, 60)
        index = HierarchicalDistanceIndex.build(graph, fragment_size=12)
        full = HierarchicalDistanceIndex.full_materialization_entries(120)
        assert index.storage_entries < full / 2

    def test_full_materialization_formula(self):
        assert HierarchicalDistanceIndex.full_materialization_entries(100) == 4950
        # the paper's Section 2.2 example: |V| = 100K -> ~5 * 10^9
        entries = HierarchicalDistanceIndex.full_materialization_entries(100_000)
        assert entries == pytest.approx(5e9, rel=0.01)

    def test_single_fragment_stores_all_pairs_of_component(self, ring_graph):
        index = HierarchicalDistanceIndex.build(ring_graph, fragment_size=6)
        assert index.storage_entries == 6 * 7 // 2  # includes (u, u) zeros

    def test_stats_track_queries_and_fast_path(self, ring_graph):
        index = HierarchicalDistanceIndex.build(ring_graph, fragment_size=100)
        index.distance(0, 3)
        index.distance(2, 2)
        assert index.stats.queries == 2
        # one whole-component fragment: both answered without super-graph
        assert index.stats.same_fragment_hits == 2
        assert index.stats.super_settled == 0

    def test_cross_fragment_query_touches_super_graph(self):
        rng = random.Random(5)
        graph = build_random_graph(rng, 40, 30)
        index = HierarchicalDistanceIndex.build(graph, fragment_size=5)
        pair = next(
            (u, v)
            for u in range(40)
            for v in range(40)
            if index.fragmentation.fragment_of[u]
            != index.fragmentation.fragment_of[v]
        )
        index.distance(*pair)
        assert index.stats.super_settled > 0
