"""Tests for the public GraphDatabase facade."""

import pytest

from repro import (
    EdgePointSet,
    GraphDatabase,
    NodePointSet,
    QueryError,
)
from repro.graph.graph import Graph


@pytest.fixture
def db(path_graph):
    return GraphDatabase(path_graph, NodePointSet({10: 0, 11: 4}))


class TestConstruction:
    def test_from_edges(self):
        db = GraphDatabase.from_edges([(0, 1, 1.0), (1, 2, 2.0)])
        assert db.graph.num_nodes == 3
        assert db.restricted

    def test_empty_points_default(self, path_graph):
        db = GraphDatabase(path_graph)
        assert db.restricted
        assert db.rknn(2, 1).points == ()

    def test_points_validated(self, path_graph):
        with pytest.raises(Exception):
            GraphDatabase(path_graph, NodePointSet({10: 999}))

    def test_hilbert_order_requires_coords(self, path_graph):
        with pytest.raises(Exception):
            GraphDatabase(path_graph, node_order="hilbert")

    def test_unknown_order_rejected(self, path_graph):
        with pytest.raises(QueryError):
            GraphDatabase(path_graph, node_order="random")

    def test_unrestricted_mode(self, path_graph):
        db = GraphDatabase(path_graph, EdgePointSet({10: (0, 1, 0.5)}))
        assert not db.restricted


class TestQueryValidation:
    def test_unknown_method(self, db):
        with pytest.raises(QueryError):
            db.rknn(0, 1, method="oracle")

    def test_bad_k(self, db):
        with pytest.raises(QueryError):
            db.rknn(0, 0)

    def test_out_of_range_query(self, db):
        with pytest.raises(QueryError):
            db.rknn(99, 1)

    def test_edge_query_on_restricted_network(self, db):
        with pytest.raises(QueryError):
            db.rknn((0, 1, 0.5), 1)

    def test_eager_m_needs_materialization(self, db):
        with pytest.raises(QueryError):
            db.rknn(0, 1, method="eager-m")

    def test_bichromatic_needs_reference(self, db):
        with pytest.raises(QueryError):
            db.bichromatic_rknn(0, 1)

    def test_reference_mode_must_match(self, db):
        with pytest.raises(QueryError):
            db.attach_reference(EdgePointSet({100: (0, 1, 0.5)}))


class TestResults:
    def test_result_protocol(self, db):
        result = db.rknn(2, 1)
        assert set(result) == set(result.points)
        assert (10 in result) == (10 in result.points)
        assert len(result) == len(result.points)

    def test_cost_fields_populated(self, db):
        db.clear_buffer()
        result = db.rknn(2, 1)
        assert result.io >= 1
        assert result.cpu_seconds >= 0.0
        assert result.total_seconds() >= result.cpu_seconds

    def test_stats_isolated_per_query(self, db):
        first = db.rknn(2, 1)
        second = db.rknn(2, 1)
        # the second run hits the warm buffer: strictly no more I/O
        assert second.io <= first.io

    def test_reset_and_clear(self, db):
        db.rknn(2, 1)
        db.reset_stats()
        assert db.tracker.page_reads == 0
        db.clear_buffer()
        result = db.rknn(2, 1)
        assert result.io >= 1


class TestNnQueries:
    def test_knn(self, db):
        assert db.knn(1, 2).neighbors == ((10, 2.0), (11, 8.0))

    def test_range_nn(self, db):
        assert db.range_nn(1, 2, 5.0).neighbors == ((10, 2.0),)

    def test_network_distance(self, db):
        assert db.network_distance(0, 4) == 10.0


class TestUpdates:
    def test_insert_then_query(self, db):
        db.insert_point(12, 2)
        assert 12 in db.rknn(2, 1).points

    def test_delete_then_query(self, db):
        db.delete_point(10)
        assert 10 not in db.rknn(0, 2).points

    def test_insert_maintains_materialization(self, db):
        db.materialize(2)
        db.insert_point(12, 2)
        assert db.materialized.get(2)[0] == (12, 0.0)

    def test_delete_maintains_materialization(self, db):
        db.materialize(1)
        db.delete_point(10)
        assert db.materialized.get(0) == ((11, 10.0),)

    def test_unrestricted_updates(self, path_graph):
        db = GraphDatabase(path_graph, EdgePointSet({10: (0, 1, 0.5)}))
        db.materialize(2)
        db.insert_point(11, (3, 4, 1.0))
        assert db.materialized.get(4)[0] == (11, 3.0)
        db.delete_point(10)
        assert [pid for pid, _ in db.materialized.get(0)] == [11]

    def test_update_costs_reported(self, db):
        db.materialize(1)
        db.clear_buffer()
        outcome = db.insert_point(12, 2)
        assert outcome.io >= 1
        assert outcome.affected_nodes >= 1


class TestBufferSizing:
    def test_zero_buffer_supported(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({10: 0}), buffer_pages=0)
        first = db.rknn(2, 1)
        second = db.rknn(2, 1)
        assert first.points == second.points
        assert second.io >= first.io  # nothing is ever cached

    def test_small_pages_split_graph(self):
        n = 64
        graph = Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        db = GraphDatabase(graph, NodePointSet({10: 0}), page_size=128)
        assert db.disk.num_pages > 1
        assert db.rknn(n - 1, 1).points == (10,)


class TestInRouteKnn:
    def test_lists_and_cost(self, tmp_path):
        from repro import GraphDatabase, NodePointSet
        from repro.graph.graph import Graph

        graph = Graph(6, [(i, i + 1, 1.0) for i in range(5)])
        db = GraphDatabase(graph, NodePointSet({10: 0, 11: 5}))
        stops, cost = db.in_route_knn([2, 3], k=1)
        assert stops == [(2, [(10, 2.0)]), (3, [(11, 2.0)])]
        assert cost.io >= 0 and cost.cpu_seconds >= 0

    def test_rejected_on_unrestricted_networks(self):
        from repro import EdgePointSet, GraphDatabase, QueryError
        from repro.graph.graph import Graph

        import pytest

        graph = Graph(3, [(0, 1, 4.0), (1, 2, 4.0)])
        db = GraphDatabase(graph, EdgePointSet({5: (0, 1, 1.0)}))
        with pytest.raises(QueryError):
            db.in_route_knn([0, 1])
