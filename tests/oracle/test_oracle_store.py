"""LandmarkStore: paging, charged reads, uncharged bulk snapshots."""

import math

import pytest

from repro.errors import StorageError
from repro.oracle import DistanceOracle, LandmarkStore
from repro.storage.buffer import BufferManager
from repro.storage.page import (
    LandmarkRecord,
    decode_landmark_page,
    encode_landmark_page,
    landmark_record_size,
)
from repro.storage.stats import CostTracker


def _store(num_nodes=40, landmarks=(0, 7), page_size=128, buffer_pages=4):
    tables = [
        [float(abs(node - landmark)) for node in range(num_nodes)]
        for landmark in landmarks
    ]
    tracker = CostTracker()
    buffer = BufferManager(buffer_pages, tracker)
    store = LandmarkStore(num_nodes, landmarks, tables, buffer,
                          page_size=page_size)
    return store, tables, tracker


def test_landmark_page_roundtrip():
    records = [
        LandmarkRecord(3, (0.0, 2.5, math.inf)),
        LandmarkRecord(9, (1.0, 0.0, 4.0)),
    ]
    payload = encode_landmark_page(records)
    assert decode_landmark_page(payload, 3) == records
    assert landmark_record_size(3) == 4 + 3 * 8


def test_get_charges_and_matches_tables():
    store, tables, tracker = _store()
    assert store.num_pages > 1  # the small page size forces real paging
    for node in (0, 13, 39):
        label = store.get(node)
        assert label == tuple(table[node] for table in tables)
    assert tracker.logical_reads > 0
    with pytest.raises(StorageError):
        store.get(40)


def test_snapshot_is_uncharged_and_complete():
    store, tables, tracker = _store()
    before = tracker.snapshot()
    labels = store.labels_snapshot()
    diff = tracker.diff(before)
    assert diff.logical_reads == 0 and diff.page_reads == 0
    assert len(labels) == 40
    oracle = DistanceOracle.from_labels(store.landmarks, labels)
    assert oracle.label(13) == store.get(13)


def test_store_rejects_malformed_inputs():
    tracker = CostTracker()
    buffer = BufferManager(4, tracker)
    with pytest.raises(StorageError):
        LandmarkStore(4, [], [], buffer)
    with pytest.raises(StorageError):
        LandmarkStore(4, [0], [], buffer)
    with pytest.raises(StorageError):
        LandmarkStore(4, [0], [[0.0, 1.0]], buffer)  # table misses nodes
