"""DistanceOracle: bound validity, labels, and provider combinators.

The load-bearing invariant is admissibility -- the oracle's lower
bound never exceeds, and its upper bound never undercuts, the true
network distance of *any* node pair, on any graph.  The hypothesis
suite pins it on random connected graphs (and a disconnected variant,
where ``inf`` bounds must separate components correctly).
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compact.csr import CSRGraph
from repro.errors import QueryError
from repro.oracle import (
    CombinedBounds,
    DistanceOracle,
    EuclideanBounds,
    csr_landmark_distances,
    select_landmarks,
    store_landmark_distances,
)
from repro.paths.dijkstra import single_source_distances
from tests.conftest import build_random_graph

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _oracle_for(graph, count=4, seed=0, strategy="farthest"):
    landmarks, tables = select_landmarks(
        lambda source: store_landmark_distances(graph, graph.num_nodes, source),
        graph.num_nodes, count, seed=seed, strategy=strategy,
    )
    return DistanceOracle(landmarks, tables)


def _true_distances(graph, source):
    return single_source_distances(graph, source)


@given(seed=st.integers(min_value=0, max_value=10_000),
       count=st.integers(min_value=1, max_value=6),
       strategy=st.sampled_from(["farthest", "random"]))
@settings(**SETTINGS)
def test_bounds_bracket_true_distance(seed, count, strategy):
    rng = random.Random(seed)
    num_nodes = rng.randint(2, 18)
    graph = build_random_graph(rng, num_nodes, num_nodes // 2,
                               int_weights=(seed % 2 == 0))
    oracle = _oracle_for(graph, count=min(count, num_nodes),
                         seed=seed, strategy=strategy)
    for source in range(num_nodes):
        true = _true_distances(graph, source)
        for target in range(num_nodes):
            d = true.get(target, math.inf)
            lb = oracle.lower_bound(source, target)
            ub = oracle.upper_bound(source, target)
            assert lb <= d * (1 + 1e-9) + 1e-9, (seed, source, target)
            assert ub >= d * (1 - 1e-9) - 1e-9 or math.isinf(d), \
                (seed, source, target)
            assert lb <= ub * (1 + 1e-9) + 1e-9, (seed, source, target)


def test_identical_nodes_bound_to_zero(ring_graph):
    oracle = _oracle_for(ring_graph, count=2)
    for node in range(ring_graph.num_nodes):
        assert oracle.lower_bound(node, node) == 0.0
        assert oracle.upper_bound(node, node) == 0.0


def test_disconnected_components_bound_to_infinity():
    from repro.graph.graph import Graph

    graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
    oracle = _oracle_for(graph, count=2, seed=3)
    # farthest selection claims the uncovered component, so one
    # landmark lands on each side and cross-component pairs prove inf
    assert oracle.lower_bound(0, 2) == math.inf
    assert oracle.upper_bound(0, 2) == math.inf
    assert oracle.upper_bound(0, 1) == 1.0


def test_labels_match_tables(path_graph):
    landmarks, tables = select_landmarks(
        lambda s: store_landmark_distances(path_graph, 5, s), 5, 3, seed=1
    )
    oracle = DistanceOracle(landmarks, tables)
    for node in range(5):
        assert oracle.label(node) == tuple(table[node] for table in tables)
    rebuilt = DistanceOracle.from_labels(
        landmarks, [oracle.label(v) for v in range(5)]
    )
    for u in range(5):
        for v in range(5):
            assert rebuilt.lower_bound(u, v) == oracle.lower_bound(u, v)
            assert rebuilt.upper_bound(u, v) == oracle.upper_bound(u, v)
    with pytest.raises(QueryError):
        oracle.label(99)


def test_oracle_rejects_malformed_inputs():
    with pytest.raises(QueryError):
        DistanceOracle([], [])
    with pytest.raises(QueryError):
        DistanceOracle([0], [])
    with pytest.raises(QueryError):
        DistanceOracle([0, 1], [[0.0, 1.0], [0.0]])


def test_selection_rejects_bad_parameters(path_graph):
    def fn(source):
        return store_landmark_distances(path_graph, 5, source)

    with pytest.raises(QueryError):
        select_landmarks(fn, 5, 0)
    with pytest.raises(QueryError):
        select_landmarks(fn, 5, 6)
    with pytest.raises(QueryError):
        select_landmarks(fn, 5, 2, strategy="nearest")


@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(**SETTINGS)
def test_csr_kernel_matches_store_kernel(seed):
    rng = random.Random(seed)
    num_nodes = rng.randint(2, 16)
    graph = build_random_graph(rng, num_nodes, num_nodes // 2,
                               int_weights=True)
    csr = CSRGraph.from_graph(graph)
    source = rng.randrange(num_nodes)
    via_store = store_landmark_distances(graph, num_nodes, source)
    via_csr = csr_landmark_distances(csr, source)
    # integer weights make every path sum exact: the kernels agree
    # bitwise, which is what makes backend-built oracles interchangeable
    assert via_store == via_csr, seed


def test_euclidean_and_combined_bounds():
    coords = [(0.0, 0.0), (3.0, 4.0), (6.0, 8.0)]
    euclid = EuclideanBounds(coords)
    assert euclid.lower_bound(0, 1) == 5.0
    assert math.isinf(euclid.upper_bound(0, 1))

    class Fixed:
        """A provider with constant bounds, for combination checks."""

        def lower_bound(self, u, v):
            return 4.0

        def upper_bound(self, u, v):
            return 12.0

    combined = CombinedBounds(euclid, Fixed())
    assert combined.lower_bound(0, 1) == 5.0   # euclid is tighter below
    assert combined.lower_bound(0, 2) == 10.0
    assert combined.upper_bound(0, 1) == 12.0  # fixed is tighter above
