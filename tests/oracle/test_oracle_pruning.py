"""The pruning rules preserve answers bitwise and actually prune.

The randomized suite replays a mixed workload (kNN, range-NN, every
RkNN method, bichromatic, continuous routes) on the same database
with and without the oracle attached, asserting identical answers
entry for entry -- the oracle's core contract.  Targeted cases pin
the individual rules: provably-empty probes skip their expansion,
probe horizons bound the expansion, and decidable verifications never
expand.
"""

import math
import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.datasets.grid import generate_grid
from repro.datasets.workload import place_node_points
from repro.oracle.prune import probe_plan, verify_plan
from tests.conftest import build_random_graph

SEEDS = range(12)


def _random_walk(graph, start, hops, rng):
    route = [start]
    for _ in range(hops):
        neighbors = [nbr for nbr, _ in graph.neighbors(route[-1])]
        if not neighbors:
            break
        route.append(rng.choice(neighbors))
    return route


def _workload(db, queries, route, radius):
    answers = []
    for k in (1, 2):
        for query in queries:
            answers.append(db.knn(query, k).neighbors)
            answers.append(db.range_nn(query, k, radius).neighbors)
            for method in ("eager", "lazy", "eager-m", "lazy-ep"):
                answers.append(db.rknn(query, k, method=method).points)
            answers.append(db.bichromatic_rknn(query, k).points)
        answers.append(db.continuous_rknn(route, k).points)
    return answers


@pytest.mark.parametrize("seed", SEEDS, ids=lambda s: f"seed{s}")
def test_oracle_preserves_every_answer(seed):
    rng = random.Random(4000 + seed)
    num_nodes = 24 + (seed % 4) * 8
    graph = build_random_graph(rng, num_nodes, num_nodes // 2,
                               int_weights=(seed % 2 == 0))
    nodes = rng.sample(range(num_nodes), 12)
    points = NodePointSet({pid: node for pid, node in enumerate(nodes[:6])})
    reference = NodePointSet({50 + i: node
                              for i, node in enumerate(nodes[6:10])})
    queries = rng.sample(range(num_nodes), 4)
    route = _random_walk(graph, queries[0], 2 + seed % 3, rng)
    radius = 2.0 + (seed % 5) * 2.0

    def build(with_oracle):
        db = GraphDatabase(graph, points)
        db.attach_reference(reference)
        db.materialize(4)
        db.materialize_reference(4)
        if with_oracle:
            db.build_oracle(3 + seed % 4, seed=seed)
        return db

    plain = _workload(build(False), queries, route, radius)
    oracled = _workload(build(True), queries, route, radius)
    assert oracled == plain, (
        f"seed={seed}: oracle-assisted answers diverge "
        f"(reproduce with tests/oracle -k 'seed{seed}')"
    )


def _grid_db(with_oracle, landmarks=8):
    graph = generate_grid(196, average_degree=4.0, seed=5)
    points = place_node_points(graph, 0.02, seed=6)
    db = GraphDatabase(graph, points)
    if with_oracle:
        db.build_oracle(landmarks, seed=1)
    return db


def test_oracle_reduces_expansion_work():
    plain = _grid_db(False)
    oracled = _grid_db(True)
    query = 0
    base = plain.rknn(query, 1, method="eager")
    fast = oracled.rknn(query, 1, method="eager")
    assert fast.points == base.points
    assert fast.counters.edges_expanded < base.counters.edges_expanded
    assert fast.counters.oracle_prunes > 0
    assert base.counters.oracle_prunes == 0


def test_probe_plan_skips_provably_empty_probes():
    db = _grid_db(True)
    # a node far from every point, probed with a tiny radius: every
    # lower bound exceeds the radius, so the probe is provably empty
    far_node = max(
        range(db.graph.num_nodes),
        key=lambda n: min(db.oracle.lower_bound(n, pn)
                          for _, pn in db.points.items()),
    )
    skip, _ = probe_plan(db.view, far_node, 1, 0.25, frozenset())
    assert skip
    assert db.range_nn(far_node, 1, 0.25).neighbors == ()


def test_dense_point_sets_stand_down():
    """On dense point sets the O(P*L) candidate scans are not worth
    their CPU: the rules must step aside (answers are identical either
    way), so attaching an oracle can never slow a query past its own
    expansion cost."""
    from repro.oracle.prune import scan_is_profitable

    assert scan_is_profitable(4, 16, 400)
    assert not scan_is_profitable(1000, 16, 5000)

    graph = generate_grid(196, average_degree=4.0, seed=5)
    dense = place_node_points(graph, 0.5, seed=6)
    db = GraphDatabase(graph, dense)
    db.build_oracle(8, seed=1)
    plain = GraphDatabase(graph, dense)
    fast = db.rknn(0, 1, method="eager")
    assert fast.points == plain.rknn(0, 1, method="eager").points
    assert fast.counters.oracle_prunes == 0  # gate kept the scans off


def test_probe_plan_without_bounds_is_neutral():
    db = _grid_db(False)
    skip, horizon = probe_plan(db.view, 0, 1, 5.0, frozenset())
    assert not skip and math.isinf(horizon)


def test_probe_plan_horizon_bounds_expansion():
    db = _grid_db(True)
    pid, pnode = next(iter(db.points.items()))
    skip, horizon = probe_plan(db.view, pnode, 1, math.inf, frozenset())
    # the probed node holds a point itself: the 1-NN horizon collapses
    assert not skip and horizon <= 1e-6


def test_verify_plan_decides_trivial_cases():
    db = _grid_db(True)
    pid, pnode = next(iter(db.points.items()))
    # query on the point's own node: d(p, q) = 0, nothing is strictly
    # closer, so the verification passes without expansion
    decision, bound = verify_plan(db.view, pid, 1, {pnode}, 10.0, frozenset())
    assert decision is True and bound == 0.0


def test_verify_plan_without_bounds_is_neutral():
    db = _grid_db(False)
    pid, pnode = next(iter(db.points.items()))
    decision, bound = verify_plan(db.view, pid, 1, {pnode}, 10.0, frozenset())
    assert decision is None and bound == 10.0
