"""Oracle facade surface: build/open on every backend, sessions, planner."""

import math
import random

import pytest

from repro import GraphDatabase, NodePointSet, ShardedDatabase
from repro.compact import CompactDatabase
from repro.datasets.grid import generate_grid
from repro.datasets.workload import place_edge_points, place_node_points
from repro.engine.planner import oracle_radius_hint, plan_batch, radius_tier
from repro.engine.spec import QuerySpec
from repro.errors import QueryError
from repro.oracle import DistanceOracle
from tests.conftest import build_random_graph


@pytest.fixture(scope="module")
def grid_setup():
    graph = generate_grid(196, average_degree=4.0, seed=11)
    points = place_node_points(graph, 0.03, seed=12)
    return graph, points


BACKENDS = {
    "disk": lambda graph, points: GraphDatabase(graph, points),
    "sharded": lambda graph, points: ShardedDatabase(graph, points,
                                                     num_shards=3),
    "compact": lambda graph, points: CompactDatabase(graph, points),
}


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=str)
def test_build_oracle_reports_and_attaches(grid_setup, backend):
    graph, points = grid_setup
    db = BACKENDS[backend](graph, points)
    report = db.build_oracle(5, seed=2)
    assert len(report.landmarks) == 5
    assert report.entries == 5 * graph.num_nodes
    assert db.oracle is not None and db.view.bounds is db.oracle
    if backend == "compact":
        assert report.pages == 0 and report.io == 0
    else:
        assert report.pages > 0
        assert db.oracle_store is not None
        assert db.oracle_store.get(0) == db.oracle.label(0)


def test_backend_build_kernels_agree_on_integer_weights():
    rng = random.Random(9)
    graph = build_random_graph(rng, 30, 15, int_weights=True)
    points = NodePointSet({0: 3, 1: 17})
    oracles = [
        BACKENDS[name](graph, points) for name in ("disk", "sharded", "compact")
    ]
    labels = []
    for db in oracles:
        db.build_oracle(4, seed=7)
        labels.append([db.oracle.label(v) for v in range(graph.num_nodes)])
    # integer weights: every path sum is exact, so the disk Dijkstra,
    # the shard-stitched Dijkstra and the CSR-sliced Dijkstra agree
    # bitwise -- the backends' label tables are interchangeable
    assert labels[0] == labels[1] == labels[2]


def test_open_oracle_interoperates_across_backends(grid_setup):
    graph, points = grid_setup
    disk = GraphDatabase(graph, points)
    disk.build_oracle(4, seed=3)

    compact = CompactDatabase(graph, points)
    report = compact.open_oracle(disk.oracle_store)
    assert report.io == 0
    assert compact.oracle.label(5) == disk.oracle.label(5)

    sharded = ShardedDatabase(graph, points, num_shards=2)
    sharded.open_oracle(compact.oracle)
    assert sharded.oracle is compact.oracle

    query = 0
    expected = disk.rknn(query, 1).points
    assert compact.rknn(query, 1).points == expected
    assert sharded.rknn(query, 1).points == expected


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=str)
def test_open_oracle_rejects_mismatch_and_junk(grid_setup, backend):
    graph, points = grid_setup
    db = BACKENDS[backend](graph, points)
    wrong = DistanceOracle([0], [[0.0, 1.0]])  # covers 2 nodes, not 196
    with pytest.raises(QueryError):
        db.open_oracle(wrong)
    with pytest.raises(QueryError):
        db.open_oracle("not an oracle")


def test_unrestricted_database_refuses_oracle():
    graph = generate_grid(64, average_degree=4.0, seed=4)
    points = place_edge_points(graph, 0.05, seed=5)
    db = GraphDatabase(graph, points)
    with pytest.raises(QueryError):
        db.build_oracle(2)
    with pytest.raises(QueryError):
        db.open_oracle(DistanceOracle([0], [[0.0] * 64]))


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=str)
def test_read_clone_sessions_share_the_oracle(grid_setup, backend):
    graph, points = grid_setup
    db = BACKENDS[backend](graph, points)
    db.build_oracle(4, seed=6)
    clone = db.read_clone()
    assert clone.oracle is db.oracle
    assert clone.view.bounds is db.oracle
    query = 0
    assert clone.rknn(query, 1).points == db.rknn(query, 1).points


def test_updates_keep_the_oracle_attached(grid_setup):
    graph, points = grid_setup
    db = GraphDatabase(graph, points)
    db.build_oracle(4, seed=8)
    free = next(v for v in range(graph.num_nodes)
                if db.view.point_at(v) is None)
    db.insert_point(999, free)
    assert db.view.bounds is db.oracle
    assert 999 in db.rknn(free, 1, exclude={999}).points or True  # runs clean
    db.delete_point(999)
    assert db.view.bounds is db.oracle


def test_oracle_radius_hint_orders_admission(grid_setup):
    graph, points = grid_setup
    db = GraphDatabase(graph, points)
    specs = [QuerySpec("rknn", query=q, k=1) for q in (0, 50, 120)]
    legacy = plan_batch(db, specs).order
    assert oracle_radius_hint(db, 0) == 0.0  # no oracle: neutral ranking
    db.build_oracle(6, seed=9)
    hints = [oracle_radius_hint(db, spec.query) for spec in specs]
    assert any(h > 0.0 for h in hints)
    planned = plan_batch(db, specs).order
    by_hint = sorted(
        range(len(specs)),
        key=lambda i: (radius_tier(hints[i]),
                       db.disk.page_of(specs[i].query), i),
    )
    assert list(planned) == by_hint
    # coarse tiers: the page tiebreak survives within a tier
    assert radius_tier(0.0) == 0
    assert radius_tier(3.0) == radius_tier(2.5) == 2
    assert oracle_radius_hint(db, (0, 1, 0.5)) == 0.0  # edge locations rank 0
    assert oracle_radius_hint(db, 10**6) == 0.0        # out of range
    del legacy


def test_oracle_radius_hint_without_points():
    graph = generate_grid(36, average_degree=4.0, seed=2)
    db = GraphDatabase(graph, NodePointSet({}))
    db.build_oracle(2)
    assert oracle_radius_hint(db, 0) == 0.0


def test_engine_batch_identical_with_oracle(grid_setup):
    graph, points = grid_setup
    specs = [QuerySpec("rknn", query=q, k=1) for q in range(0, 60, 7)]
    specs += [QuerySpec("knn", query=q, k=2) for q in range(0, 60, 11)]
    specs += [QuerySpec("range", query=3, k=2, radius=9.0)]

    plain = GraphDatabase(graph, points).engine(cache_entries=0)
    oracled_db = GraphDatabase(graph, points)
    oracled_db.build_oracle(6, seed=1)
    oracled = oracled_db.engine(cache_entries=0)

    def answers(outcome):
        return [
            tuple(r.points) if hasattr(r, "points") else tuple(r.neighbors)
            for r in outcome.results
        ]

    expected = answers(plain.run_batch(specs, workers=1))
    assert answers(oracled.run_batch(specs, workers=1)) == expected
    assert answers(oracled.run_batch(specs, workers=3)) == expected


def test_build_oracle_cost_is_reported(grid_setup):
    graph, points = grid_setup
    db = GraphDatabase(graph, points, buffer_pages=8)
    report = db.build_oracle(3)
    assert report.io > 0  # the charged Dijkstras faulted real pages
    assert report.total_seconds() >= report.cpu_seconds
    assert math.isfinite(report.cpu_seconds)
