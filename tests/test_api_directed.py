"""DirectedGraphDatabase coverage: parity with the undirected facade on
symmetric digraphs, engine integration, and cache invalidation across
updates."""

import random

import pytest

from repro import DirectedGraphDatabase, GraphDatabase, NodePointSet, QuerySpec
from repro.errors import QueryError
from tests.conftest import build_random_graph


def symmetric_pair(seed: int, nodes: int = 40, extra: int = 25, density: float = 0.2):
    """An undirected database and its directed twin (each edge becomes
    two opposite arcs of equal weight), sharing one point set."""
    rng = random.Random(seed)
    graph = build_random_graph(rng, nodes, extra)
    point_nodes = rng.sample(range(nodes), max(1, int(density * nodes)))
    points = NodePointSet({100 + i: node for i, node in enumerate(point_nodes)})
    arcs = []
    for u, v, w in graph.edges():
        arcs.append((u, v, w))
        arcs.append((v, u, w))
    return GraphDatabase(graph, points), DirectedGraphDatabase.from_arcs(arcs, points)


class TestSymmetricParity:
    """On a symmetric digraph, directed distances equal undirected ones,
    so every query kind must agree with the undirected facade."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_rknn_parity(self, seed):
        undirected, directed = symmetric_pair(seed)
        for k in (1, 2):
            for query in range(0, 40, 5):
                want = undirected.rknn(query, k).points
                assert directed.rknn(query, k, method="eager").points == want
                assert directed.rknn(query, k, method="naive").points == want

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_rknn_eager_m_parity(self, seed):
        undirected, directed = symmetric_pair(seed)
        directed.materialize(3)
        for query in range(0, 40, 5):
            want = undirected.rknn(query, 2).points
            assert directed.rknn(query, 2, method="eager-m").points == want

    @pytest.mark.parametrize("seed", [4, 5])
    def test_knn_parity(self, seed):
        undirected, directed = symmetric_pair(seed)
        for query in range(0, 40, 7):
            want = undirected.knn(query, 3).neighbors
            got = directed.knn(query, 3).neighbors
            assert [pid for pid, _ in got] == [pid for pid, _ in want]
            for (_, dg), (_, dw) in zip(got, want):
                assert dg == pytest.approx(dw)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_range_nn_parity(self, seed):
        undirected, directed = symmetric_pair(seed)
        for query in range(0, 40, 7):
            want = undirected.range_nn(query, 3, 8.0).neighbors
            assert directed.range_nn(query, 3, 8.0).neighbors == want

    def test_exclusion_parity(self):
        undirected, directed = symmetric_pair(9)
        pid = sorted(undirected.points.ids())[0]
        query = undirected.points.node_of(pid)
        exclude = frozenset({pid})
        want = undirected.rknn(query, 1, exclude=exclude).points
        assert directed.rknn(query, 1, exclude=exclude).points == want


class TestAsymmetry:
    def test_one_way_arc_breaks_parity(self):
        # p at node 2 reaches q at 0 only through the long way round;
        # q's RkNN under forward distances differs from the undirected view
        arcs = [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 10.0)]
        directed = DirectedGraphDatabase.from_arcs(arcs, NodePointSet({7: 2}))
        # d(2 -> 0) = 10: point 7 is still q's only candidate, check knn cost
        neighbors = directed.knn(0, 1).neighbors
        assert neighbors == ((7, pytest.approx(2.0)),)  # 0->1->2 forward


class TestDirectedEngine:
    def test_batch_matches_sequential(self):
        _, directed = symmetric_pair(6)
        rng = random.Random(0)
        specs = [QuerySpec("rknn", rng.randrange(40), k=rng.randint(1, 2))
                 for _ in range(12)]
        specs += [QuerySpec("knn", rng.randrange(40), k=2) for _ in range(6)]
        want = []
        for spec in specs:
            if spec.kind == "rknn":
                want.append(directed.rknn(spec.query, spec.k).points)
            else:
                want.append(directed.knn(spec.query, spec.k).neighbors)
        for workers in (1, 3):
            outcome = directed.engine().run_batch(specs, workers=workers)
            got = [r.points if hasattr(r, "points") else r.neighbors
                   for r in outcome.results]
            assert got == want, workers

    def test_bichromatic_unsupported(self):
        _, directed = symmetric_pair(6)
        with pytest.raises(QueryError, match="bichromatic"):
            directed.engine().run([QuerySpec("bichromatic", 0)][0])

    def test_insert_invalidates_cache(self):
        _, directed = symmetric_pair(8)
        engine = directed.engine()
        free = next(n for n in range(40) if directed.points.point_at(n) is None)
        spec = QuerySpec("rknn", free, k=1)
        stale = engine.run(spec)
        directed.insert_point(999, free)
        fresh = engine.run(spec)
        assert engine.cache_stats.hits == 0  # both runs were misses
        assert fresh.points == directed.rknn(free, 1).points
        # the new point sits on the query node (distance 0), so the
        # fresh result must contain it while the stale one could not
        assert 999 in fresh.points and 999 not in stale.points

    def test_delete_invalidates_cache(self):
        _, directed = symmetric_pair(8)
        directed.materialize(3)
        engine = directed.engine()
        victim = sorted(directed.points.ids())[0]
        node = directed.points.node_of(victim)
        stale = engine.run(QuerySpec("rknn", node, k=1))
        directed.delete_point(victim)
        fresh = engine.run(QuerySpec("rknn", node, k=1))
        assert victim not in fresh.points
        assert fresh.points == directed.rknn(node, 1).points

    def test_update_bumps_generation(self):
        _, directed = symmetric_pair(8)
        g0 = directed.generation
        free = next(n for n in range(40) if directed.points.point_at(n) is None)
        directed.insert_point(999, free)
        directed.delete_point(999)
        assert directed.generation == g0 + 2

    def test_read_clone_parity_and_isolation(self):
        _, directed = symmetric_pair(10)
        directed.materialize(3)
        clone = directed.read_clone()
        before = directed.tracker.snapshot()
        for query in range(0, 40, 9):
            for method in ("eager", "eager-m"):
                assert (clone.rknn(query, 2, method=method).points
                        == directed.rknn(query, 2, method=method).points)
        # interleaved clone queries charged nothing extra to the parent:
        # the parent's diff equals its own queries' summed counters
        assert directed.tracker.diff(before).nodes_visited > 0
        assert clone.tracker.nodes_visited > 0
