"""Tests for the network report and the calibrating planner."""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.analytics.planner import CalibratingPlanner
from repro.analytics.report import network_report
from repro.datasets.brite import generate_brite
from repro.datasets.dblp import generate_dblp
from repro.errors import QueryError
from tests.conftest import build_random_graph


def seeded_db(seed=0, num_nodes=30, num_points=6):
    rng = random.Random(seed)
    graph = build_random_graph(rng, num_nodes, num_nodes)
    nodes = rng.sample(range(graph.num_nodes), num_points)
    return GraphDatabase(
        graph, NodePointSet({100 + i: node for i, node in enumerate(nodes)})
    )


class TestNetworkReport:
    def test_basic_shape(self):
        db = seeded_db()
        report = network_report(db)
        assert report.num_nodes == db.graph.num_nodes
        assert report.num_edges == db.graph.num_edges
        assert report.num_points == 6
        assert report.density == pytest.approx(6 / 30)
        assert report.restricted
        assert report.degrees.minimum <= report.degrees.mean
        assert report.degrees.mean <= report.degrees.maximum
        assert report.weights.minimum <= report.weights.mean
        assert report.weights.mean <= report.weights.maximum

    def test_unit_weight_detection(self):
        coauth = generate_dblp(num_nodes=200, seed=1)
        db = GraphDatabase(coauth.graph, NodePointSet({0: 0}))
        report = network_report(db)
        assert report.weights.unit_weights

    def test_brite_is_exponential_and_skewed(self):
        graph = generate_brite(600, seed=2)
        db = GraphDatabase(graph, NodePointSet({0: 0}))
        report = network_report(db, samples=6)
        assert report.expansion.exponential
        assert report.degrees.skewed

    def test_summary_lines_mention_key_figures(self):
        db = seeded_db()
        lines = network_report(db).summary_lines()
        text = "\n".join(lines)
        assert "|V| = 30" in text
        assert "density" in text
        assert "expansion" in text


class TestPlannerValidation:
    def test_unknown_method_rejected(self):
        with pytest.raises(QueryError):
            CalibratingPlanner(seeded_db(), methods=("fastest",))

    def test_empty_methods_rejected(self):
        with pytest.raises(QueryError):
            CalibratingPlanner(seeded_db(), methods=())

    def test_bad_samples_rejected(self):
        with pytest.raises(QueryError):
            CalibratingPlanner(seeded_db(), samples=0)


class TestPlannerBehaviour:
    def test_eager_m_requires_materialization(self):
        db = seeded_db()
        planner = CalibratingPlanner(db, samples=2)
        assert "eager-m" not in planner.usable_methods(1)
        db.materialize(2)
        assert "eager-m" in planner.usable_methods(1)
        # capacity 2 is not enough for k = 2 (query-point exclusion)
        assert "eager-m" not in planner.usable_methods(2)

    def test_calibration_picks_cheapest_alternative(self):
        db = seeded_db(seed=3)
        planner = CalibratingPlanner(db, methods=("eager", "lazy"), samples=3)
        plan = planner.calibrate(1)
        best = min(plan.alternatives, key=lambda est: est.total_mean_s)
        assert plan.method == best.method
        assert plan.estimated_seconds == pytest.approx(best.total_mean_s)

    def test_plan_is_cached(self):
        db = seeded_db(seed=4)
        planner = CalibratingPlanner(db, methods=("eager",), samples=2)
        first = planner.plan_for(1)
        assert planner.plan_for(1) is first

    def test_planned_query_matches_direct_query(self):
        db = seeded_db(seed=5)
        planner = CalibratingPlanner(db, methods=("eager", "lazy"), samples=2)
        plan = planner.plan_for(1)
        query = db.points.node_of(100)
        planned = planner.rknn(query, 1, exclude={100})
        direct = db.rknn(query, 1, method=plan.method, exclude={100})
        assert planned.points == direct.points

    def test_explain_lists_all_alternatives(self):
        db = seeded_db(seed=6)
        planner = CalibratingPlanner(db, methods=("eager", "lazy"), samples=2)
        text = planner.plan_for(1).explain()
        assert "eager" in text and "lazy" in text
        assert "->" in text

    def test_no_usable_methods_raises(self):
        db = seeded_db(seed=7)
        planner = CalibratingPlanner(db, methods=("eager-m",), samples=2)
        with pytest.raises(QueryError):
            planner.calibrate(1)
