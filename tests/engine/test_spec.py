"""QuerySpec: validation, identity keys, and the JSONL wire format."""

import pytest

from repro.engine.spec import AUTO_METHOD, KINDS, QuerySpec, load_specs
from repro.errors import QueryError


class TestValidation:
    def test_kinds_are_closed(self):
        with pytest.raises(QueryError, match="unknown query kind"):
            QuerySpec("walk", query=0)

    def test_every_kind_constructs(self):
        samples = {
            "knn": dict(query=0),
            "rknn": dict(query=0),
            "bichromatic": dict(query=0),
            "range": dict(query=0, radius=5.0),
            "continuous": dict(route=(0, 1)),
            "topk_influence": dict(),
            "aggregate_nn": dict(group=(0, 1)),
        }
        assert set(samples) == set(KINDS)
        for kind, kwargs in samples.items():
            assert QuerySpec(kind, **kwargs).kind == kind

    def test_continuous_needs_route(self):
        with pytest.raises(QueryError, match="route"):
            QuerySpec("continuous", query=0)

    def test_route_rejected_elsewhere(self):
        with pytest.raises(QueryError, match="'route' does not apply"):
            QuerySpec("rknn", query=0, route=(0, 1))

    def test_continuous_query_is_route_head(self):
        spec = QuerySpec("continuous", route=[3, 4, 5])
        assert spec.query == 3 and spec.route == (3, 4, 5)

    def test_continuous_round_trips_through_json(self):
        spec = QuerySpec("continuous", route=(2, 7), k=2, method="lazy")
        again = QuerySpec.from_json(spec.to_json())
        assert again == spec and again.key() == spec.key()

    def test_k_must_be_positive(self):
        with pytest.raises(QueryError, match="k must be an integer >= 1"):
            QuerySpec("rknn", query=0, k=0)

    def test_range_needs_radius(self):
        with pytest.raises(QueryError, match="radius"):
            QuerySpec("range", query=0, k=1)

    def test_radius_rejected_elsewhere(self):
        with pytest.raises(QueryError, match="'radius' does not apply"):
            QuerySpec("rknn", query=0, radius=3.0)

    def test_negative_radius_rejected(self):
        with pytest.raises(QueryError, match="radius"):
            QuerySpec("range", query=0, radius=-1.0)

    def test_edge_location_normalized(self):
        spec = QuerySpec("rknn", query=[3, 9, 2])
        assert spec.query == (3, 9, 2.0)

    def test_bad_edge_location(self):
        with pytest.raises(QueryError, match="edge locations"):
            QuerySpec("rknn", query=(1, 2))

    def test_non_finite_offset(self):
        with pytest.raises(QueryError, match="non-finite"):
            QuerySpec("rknn", query=(1, 2, float("nan")))


class TestKey:
    def test_equal_specs_share_a_key(self):
        a = QuerySpec("rknn", query=4, k=2, method="lazy", exclude={7, 3})
        b = QuerySpec("rknn", query=4, k=2, method="lazy", exclude=frozenset({3, 7}))
        assert a.key() == b.key()
        assert a == b

    def test_method_distinguishes_rknn_keys(self):
        eager = QuerySpec("rknn", query=4, k=2, method="eager")
        lazy = QuerySpec("rknn", query=4, k=2, method="lazy")
        assert eager.key() != lazy.key()

    def test_method_irrelevant_for_knn(self):
        a = QuerySpec("knn", query=4, k=2, method="eager")
        b = QuerySpec("knn", query=4, k=2, method="lazy")
        assert a.key() == b.key()

    def test_specs_are_hashable(self):
        assert len({QuerySpec("knn", query=1), QuerySpec("knn", query=1)}) == 1


class TestJson:
    def test_round_trip(self):
        specs = [
            QuerySpec("rknn", query=17, k=2, method="lazy-ep", exclude={5}),
            QuerySpec("knn", query=(0, 1, 0.5), k=3),
            QuerySpec("range", query=2, k=1, radius=4.5),
            QuerySpec("bichromatic", query=9, k=1, method=AUTO_METHOD),
        ]
        lines = [spec.to_json() for spec in specs]
        assert load_specs(lines) == specs

    def test_comments_and_blanks_skipped(self):
        lines = ["", "# header", '{"kind": "knn", "query": 1}', "   "]
        assert load_specs(lines) == [QuerySpec("knn", query=1)]

    def test_bad_json_reports_line(self):
        with pytest.raises(QueryError, match="line 2"):
            load_specs(['{"kind": "knn", "query": 1}', "{nope"])

    def test_unknown_fields_rejected(self):
        # 'limit' is a real field, but only topk_influence takes it
        with pytest.raises(
            QueryError, match=r"unknown field\(s\) \['limit'\] for kind 'knn'"
        ):
            QuerySpec.from_json('{"kind": "knn", "query": 1, "limit": 5}')

    def test_missing_fields_rejected(self):
        with pytest.raises(
            QueryError, match="kind 'knn' is missing required field 'query'"
        ):
            QuerySpec.from_json('{"kind": "knn"}')

    def test_missing_kind_rejected(self):
        with pytest.raises(QueryError, match="missing required field 'kind'"):
            QuerySpec.from_json('{"query": 1}')

    def test_non_object_rejected(self):
        with pytest.raises(QueryError, match="JSON objects"):
            QuerySpec.from_json("[1, 2]")

    def test_bad_field_types_stay_query_errors(self):
        # every malformed value must surface as QueryError (never a raw
        # TypeError/ValueError) so the CLI reports a clean line number
        bad_lines = [
            '{"kind": "knn", "query": 7.5}',
            '{"kind": "knn", "query": 1, "k": "a"}',
            '{"kind": "knn", "query": 1, "exclude": ["x"]}',
            '{"kind": "range", "query": 1, "radius": []}',
            '{"kind": "rknn", "query": [1, "b", 0.5]}',
            '{"kind": "knn", "query": null}',
        ]
        for line in bad_lines:
            with pytest.raises(QueryError):
                QuerySpec.from_json(line)
        with pytest.raises(QueryError, match="line 1"):
            load_specs([bad_lines[0]])


class TestGroupKinds:
    """The group kinds (topk_influence / aggregate_nn) and their fields."""

    def test_group_kinds_need_no_query(self):
        # the old check demanded 'query' whenever 'route' was absent --
        # per-kind required-field tables fixed that
        spec = QuerySpec.from_json('{"kind": "topk_influence", "k": 2}')
        assert spec.query is None and spec.k == 2

    def test_aggregate_query_is_group_head(self):
        spec = QuerySpec("aggregate_nn", group=[4, 9], k=3)
        assert spec.query == 4 and spec.group == (4, 9) and spec.agg == "sum"

    def test_aggregate_needs_group(self):
        with pytest.raises(
            QueryError, match="kind 'aggregate_nn' is missing required field 'group'"
        ):
            QuerySpec.from_json('{"kind": "aggregate_nn"}')

    def test_bad_agg_rejected(self):
        with pytest.raises(QueryError, match="allowed aggregations"):
            QuerySpec("aggregate_nn", group=(1,), agg="median")

    def test_group_rejected_elsewhere(self):
        with pytest.raises(QueryError, match="'group' does not apply"):
            QuerySpec("rknn", query=0, group=(1, 2))

    def test_topk_takes_no_query(self):
        with pytest.raises(QueryError, match="'query' does not apply"):
            QuerySpec("topk_influence", query=3)

    def test_weights_normalize_and_round_trip(self):
        spec = QuerySpec(
            "topk_influence", k=2, limit=3, weights={9: 2.0, 4: 0.5},
            bichromatic=True,
        )
        assert spec.weights == ((4, 0.5), (9, 2.0))
        again = QuerySpec.from_json(spec.to_json())
        assert again == spec and again.key() == spec.key()

    def test_duplicate_weights_rejected(self):
        with pytest.raises(QueryError, match="more than once"):
            QuerySpec("topk_influence", weights=[(1, 2.0), (1, 3.0)])

    def test_bad_limit_rejected(self):
        with pytest.raises(QueryError, match="limit must be an integer >= 1"):
            QuerySpec("topk_influence", limit=0)

    def test_within_round_trips(self):
        spec = QuerySpec("rknn", query=3, k=2, within=4.5)
        again = QuerySpec.from_json(spec.to_json())
        assert again == spec
        assert spec.key() != QuerySpec("rknn", query=3, k=2).key()

    def test_within_rejected_elsewhere(self):
        with pytest.raises(QueryError, match="'within' does not apply"):
            QuerySpec("knn", query=0, within=2.0)

    def test_group_kinds_round_trip(self):
        specs = [
            QuerySpec("topk_influence", k=2, limit=5, method="lazy"),
            QuerySpec("aggregate_nn", group=(3, 8, 3), k=4, agg="max"),
        ]
        assert load_specs([spec.to_json() for spec in specs]) == specs


class TestUniformErrors:
    """Every from_payload rejection is uniform and names the allowed set."""

    CASES = [
        '{"query": 1}',
        '{"kind": "walk", "query": 1}',
        '{"kind": "knn"}',
        '{"kind": "knn", "query": 1, "limit": 5}',
        '{"kind": "aggregate_nn", "group": [], "k": 1}',
        '{"kind": "topk_influence", "limit": -2}',
    ]

    @pytest.mark.parametrize("line", CASES)
    def test_rejections_share_the_format(self, line):
        with pytest.raises(QueryError, match="^invalid query spec: "):
            QuerySpec.from_json(line)
