"""ResultCache: LRU behavior, generation invalidation, statistics."""

import pytest

from repro.engine.cache import ResultCache
from repro.errors import QueryError


class TestLru:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get(0, "a") is None
        cache.put(0, "a", "result")
        assert cache.get(0, "a") == "result"
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_capacity_evicts_least_recent(self):
        cache = ResultCache(2)
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        cache.get(0, "a")  # refresh a
        cache.put(0, "c", 3)  # evicts b
        assert cache.get(0, "b") is None
        assert cache.get(0, "a") == 1
        assert cache.get(0, "c") == 3
        assert cache.stats.evictions == 1

    def test_reput_updates_in_place(self):
        cache = ResultCache(2)
        cache.put(0, "a", 1)
        cache.put(0, "a", 2)
        assert len(cache) == 1
        assert cache.get(0, "a") == 2

    def test_reput_refreshes_recency(self):
        # re-putting a present key must move it to most-recent (not
        # just overwrite in place), so eviction removes the entry that
        # has actually been idle longest
        cache = ResultCache(2)
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        cache.put(0, "a", 10)  # refresh via re-put, not get
        cache.put(0, "c", 3)  # must evict b, the least-recent entry
        assert cache.get(0, "b") is None
        assert cache.get(0, "a") == 10
        assert cache.get(0, "c") == 3
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables(self):
        cache = ResultCache(0)
        cache.put(0, "a", 1)
        assert cache.get(0, "a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(QueryError):
            ResultCache(-1)


class TestGenerations:
    def test_old_generation_never_matches(self):
        cache = ResultCache(4)
        cache.put(0, "a", "stale")
        assert cache.get(1, "a") is None

    def test_stale_entries_pruned_on_put(self):
        cache = ResultCache(4)
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        cache.put(1, "c", 3)
        assert len(cache) == 1
        assert cache.stats.invalidations == 2

    def test_clear_counts_invalidations(self):
        cache = ResultCache(4)
        cache.put(0, "a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 1


class TestStats:
    def test_hit_rate(self):
        cache = ResultCache(4)
        assert cache.stats.hit_rate == 0.0
        cache.put(0, "a", 1)
        cache.get(0, "a")
        cache.get(0, "b")
        assert cache.stats.hit_rate == pytest.approx(0.5)
