"""End-to-end tracing acceptance: span sums reproduce the CostTracker.

The observability contract: an EXPLAIN'd (or traced) rknn statement
returns a span tree whose ``execute.*`` leaves carry the per-query
counter diffs, and summing one attribute over the tree reproduces the
database's own :class:`~repro.storage.stats.CostTracker` total for the
same work -- on every backend, through the worker pool, and through
the compact backend's vectorized batch kernel.
"""

import pytest

from repro.api import GraphDatabase
from repro.compact import CompactDatabase
from repro.datasets.grid import generate_grid
from repro.datasets.workload import place_node_points
from repro.engine.spec import QuerySpec
from repro.obs import NOOP_TRACER, Tracer
from repro.points.points import NodePointSet
from repro.qlang import explain_spec
from repro.shard import ShardedDatabase

BACKENDS = ("disk", "sharded", "compact")


def build_db(backend: str):
    graph = generate_grid(100, average_degree=4.0, seed=3)
    points = place_node_points(graph, 0.1, seed=4)
    placement = NodePointSet(dict(points.items()))
    if backend == "sharded":
        return ShardedDatabase(graph, placement, num_shards=4)
    if backend == "compact":
        return CompactDatabase(graph, placement)
    return GraphDatabase(graph, placement)


def span_total(trace: dict, attribute: str) -> int:
    return sum(span["attributes"].get(attribute, 0)
               for span in trace["spans"])


def span_names(trace: dict) -> set[str]:
    return {span["name"] for span in trace["spans"]}


class TestExplainMatchesTracker:
    """The PR acceptance criterion, across the backend matrix."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_explain_edges_sum_equals_tracker_total(self, backend):
        db = build_db(backend)
        engine = db.engine()
        spec = QuerySpec(kind="rknn", query=11, k=2, method="eager")
        before = db.tracker.snapshot()
        explained = explain_spec(engine, spec)
        diff = db.tracker.diff(before)
        assert diff.edges_expanded > 0
        assert span_total(explained.trace, "edges_expanded") == \
            diff.edges_expanded
        assert span_total(explained.trace, "nodes_visited") == \
            diff.nodes_visited
        assert explained.plan["backend"] == backend
        assert explained.plan["spec"]["method"] == "eager"
        assert "execute.rknn" in span_names(explained.trace)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_traced_batch_sums_across_specs(self, backend):
        db = build_db(backend)
        engine = db.engine()
        tracer = Tracer()
        specs = [QuerySpec(kind="rknn", query=node, k=2, method="eager")
                 for node in (0, 11, 22, 33)]
        before = db.tracker.snapshot()
        engine.run_batch(specs, tracer=tracer)
        diff = db.tracker.diff(before)
        assert tracer.attribute_total("edges_expanded") == \
            diff.edges_expanded
        assert span_names(tracer.to_payload()) >= {
            "engine.run_batch", "planner.plan_batch", "cache.probe"}


class TestExecutionPaths:
    def test_kernel_batch_leaves_carry_the_counters(self):
        db = build_db("compact")
        engine = db.engine()
        tracer = Tracer()
        specs = [QuerySpec(kind="rknn", query=node, k=2, method="eager")
                 for node in (0, 11, 22)]
        before = db.tracker.snapshot()
        engine.run_batch(specs, tracer=tracer)
        diff = db.tracker.diff(before)
        by_name = {}
        for span in tracer.to_payload()["spans"]:
            by_name.setdefault(span["name"], []).append(span)
        assert len(by_name["kernel.batch_rknn"]) == 1
        kernel = by_name["kernel.batch_rknn"][0]
        # the kernel span itself carries no counters -- only its
        # execute.* marker children do, so sums never double-count
        assert "edges_expanded" not in kernel["attributes"]
        leaves = by_name["execute.rknn"]
        assert len(leaves) == len(specs)
        assert all(leaf["parent_id"] == kernel["span_id"]
                   for leaf in leaves)
        assert all(leaf["attributes"]["via"] == "kernel"
                   for leaf in leaves)
        assert sum(leaf["attributes"]["edges_expanded"]
                   for leaf in leaves) == diff.edges_expanded

    def test_worker_pool_spans_nest_under_the_batch_root(self):
        db = build_db("disk")
        engine = db.engine()
        tracer = Tracer()
        specs = [QuerySpec(kind="rknn", query=node, k=2, method="eager")
                 for node in (0, 7, 14, 21, 28, 35)]
        before = db.tracker.snapshot()
        engine.run_batch(specs, workers=3, tracer=tracer)
        diff = db.tracker.diff(before)
        assert tracer.attribute_total("edges_expanded") == \
            diff.edges_expanded
        spans = tracer.to_payload()["spans"]
        ids = {span["span_id"] for span in spans}
        # no orphans: every execute span from a worker thread still
        # parents into the tree
        assert all(span["parent_id"] in ids for span in spans
                   if span["parent_id"] is not None)
        assert sum(span["name"] == "execute.rknn" for span in spans) == \
            len(specs)

    def test_sharded_execute_spans_name_their_shard(self):
        db = build_db("sharded")
        engine = db.engine()
        tracer = Tracer()
        specs = [QuerySpec(kind="rknn", query=node, k=2, method="eager")
                 for node in (0, 50)]
        engine.run_batch(specs, tracer=tracer)
        leaves = [span for span in tracer.to_payload()["spans"]
                  if span["name"] == "execute.rknn"]
        assert leaves
        assert all("shard" in leaf["attributes"] for leaf in leaves)


class TestTracingDefaults:
    def test_default_engine_is_noop_and_spanless(self):
        db = build_db("disk")
        engine = db.engine()
        assert engine.tracer is NOOP_TRACER
        engine.run(QuerySpec(kind="rknn", query=11, k=2, method="eager"))
        assert NOOP_TRACER.spans == ()

    def test_engine_wide_tracer_covers_single_run(self):
        db = build_db("disk")
        tracer = Tracer()
        engine = db.engine(tracer=tracer)
        engine.run(QuerySpec(kind="rknn", query=11, k=2, method="eager"))
        assert "execute.rknn" in span_names(tracer.to_payload())

    def test_cached_explain_reports_a_hit_with_no_execution(self):
        db = build_db("disk")
        engine = db.engine()
        spec = QuerySpec(kind="rknn", query=11, k=2, method="eager")
        direct = engine.run(spec)
        explained = explain_spec(engine, spec)
        names = span_names(explained.trace)
        assert "execute.rknn" not in names  # cache hit: nothing ran
        assert "cache.probe" in names
        assert list(explained.result.points) == list(direct.points)
        assert span_total(explained.trace, "edges_expanded") == 0
