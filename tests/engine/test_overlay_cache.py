"""Result-cache keying over delta-overlay databases.

Regression battery for the snapshot-keyed result cache.  Keying on
``db.generation`` alone is wrong over the compact backend's delta
overlay: compaction swaps the entire base without bumping the
generation (it changes no observable state), and a reference-set swap
lives outside the delta log entirely.  The engine therefore keys on
the two-part ``(base_generation, delta_epoch)`` stamp -- these tests
pin that the key invalidates exactly what it must and nothing more.
"""

import random

import pytest

from repro import CompactDatabase, GraphDatabase, NodePointSet, QuerySpec
from repro.engine.engine import QueryEngine
from tests.conftest import build_random_graph


@pytest.fixture
def db():
    rng = random.Random(11)
    graph = build_random_graph(rng, 40, 20, int_weights=True)
    nodes = rng.sample(range(40), 8)
    return CompactDatabase(graph, NodePointSet(
        {100 + i: node for i, node in enumerate(nodes)}
    ))


SPEC = QuerySpec("rknn", query=3, k=2)


def test_compact_backend_stamp_is_two_part(db):
    engine = QueryEngine(db)
    assert engine.cache_stamp == (0, 0)
    db.insert_point(50, next(
        n for n in range(40) if db.points.point_at(n) is None
    ))
    assert engine.cache_stamp == (0, 1)


def test_backends_without_stamp_fall_back_to_generation():
    rng = random.Random(11)
    graph = build_random_graph(rng, 30, 15)
    disk = GraphDatabase(graph, NodePointSet({0: 3, 1: 17}))
    engine = QueryEngine(disk)
    assert engine.cache_stamp == disk.generation == 0


def test_repeat_at_unchanged_stamp_hits(db):
    engine = QueryEngine(db)
    first = engine.run(SPEC)
    hit = engine.run(SPEC)
    assert engine.cache_stats.hits == 1 and engine.cache_stats.misses == 1
    assert hit.points == first.points
    assert hit.io == 0  # a hit is re-labeled with a zero cost record


def test_append_invalidates_and_refreshes(db):
    engine = QueryEngine(db)
    engine.run(SPEC)
    free = next(n for n in range(40) if db.points.point_at(n) is None)
    db.insert_point(50, free)
    refreshed = engine.run(SPEC)
    assert engine.cache_stats.hits == 0 and engine.cache_stats.misses == 2
    assert refreshed.points == db.rknn(SPEC.query, SPEC.k).points


def test_generation_alone_would_collide_across_compaction(db):
    """The collision the two-part key exists to prevent.

    Compaction swaps every base array while leaving ``generation``
    untouched; a generation-keyed cache could not tell the two
    snapshots apart.  The stamp moves, the answers (by the overlay's
    core invariant) do not.
    """
    engine = QueryEngine(db)
    db.insert_edge(0, 39, 2.0)
    before = engine.run(SPEC)
    generation_before, stamp_before = db.generation, engine.cache_stamp
    db.compact()
    assert db.generation == generation_before  # collision bait
    assert engine.cache_stamp != stamp_before  # the key still moves
    after = engine.run(SPEC)
    assert after.points == before.points
    assert engine.cache_stats.misses == 2  # distinct snapshots, no hit


def test_edge_mutations_refresh_through_engine(db):
    engine = QueryEngine(db)
    baseline = [engine.run(QuerySpec("rknn", query=q, k=2)).points
                for q in range(0, 40, 7)]
    u, v, _ = next(iter(db.graph.edges()))
    db.delete_edge(u, v)
    for q, old in zip(range(0, 40, 7), baseline):
        got = engine.run(QuerySpec("rknn", query=q, k=2)).points
        assert got == db.rknn(q, 2).points
    db.compact()
    for q in range(0, 40, 7):
        got = engine.run(QuerySpec("rknn", query=q, k=2)).points
        assert got == db.rknn(q, 2).points


def test_attach_reference_moves_the_key(db):
    """A reference swap happens outside the delta log; the stamp must
    move anyway or bichromatic answers would be served stale."""
    engine = QueryEngine(db)
    db.attach_reference(NodePointSet({0: 5, 1: 22}))
    spec = QuerySpec("bichromatic", query=3, k=1)
    engine.run(spec)
    stamp = engine.cache_stamp
    db.attach_reference(NodePointSet({0: 9}))
    assert engine.cache_stamp != stamp
    second = engine.run(spec)
    assert engine.cache_stats.hits == 0
    assert second.points == db.bichromatic_rknn(3, 1).points


def test_batch_path_uses_the_stamp(db):
    engine = QueryEngine(db)
    specs = [QuerySpec("rknn", query=q, k=1) for q in (1, 5, 9, 13)]
    outcome = engine.run_batch(specs)
    db.insert_edge(0, 39, 1.5)
    refreshed = engine.run_batch(specs)
    assert engine.cache_stats.hits == 0
    for spec, result in zip(specs, refreshed.results):
        assert result.points == db.rknn(spec.query, spec.k).points
    again = engine.run_batch(specs)
    assert [r.points for r in again.results] == [
        r.points for r in refreshed.results
    ]
    assert engine.cache_stats.hits == len(specs)
