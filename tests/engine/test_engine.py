"""QueryEngine: batch correctness, caching, concurrency, planning.

The engine's core contract: a batch returns results bitwise-identical
to a sequential loop over the facade, in the caller's order, for any
worker count -- the engine only reorders, deduplicates, and caches.
"""

import random

import pytest

from repro import GraphDatabase, NodePointSet, QuerySpec
from repro.analytics import CalibratingPlanner
from repro.datasets.workload import data_queries, place_edge_points
from repro.engine.planner import plan_batch
from repro.engine.spec import AUTO_METHOD
from repro.errors import QueryError
from tests.conftest import build_random_graph


def sequential_answers(db, specs):
    """The reference: one facade call per spec, no engine involved."""
    out = []
    for spec in specs:
        if spec.kind == "rknn":
            result = db.rknn(spec.query, spec.k, method=spec.method,
                             exclude=spec.exclude)
            out.append(result.points)
        elif spec.kind == "knn":
            out.append(db.knn(spec.query, spec.k, exclude=spec.exclude).neighbors)
        elif spec.kind == "range":
            out.append(db.range_nn(spec.query, spec.k, spec.radius,
                                   exclude=spec.exclude).neighbors)
        else:
            result = db.bichromatic_rknn(spec.query, spec.k, method=spec.method,
                                         exclude=spec.exclude)
            out.append(result.points)
    return out


def batch_answers(outcome):
    return [r.points if hasattr(r, "points") else r.neighbors
            for r in outcome.results]


@pytest.fixture
def db():
    rng = random.Random(7)
    graph = build_random_graph(rng, 60, 40)
    nodes = rng.sample(range(60), 12)
    database = GraphDatabase(graph, NodePointSet(
        {100 + i: node for i, node in enumerate(nodes)}
    ))
    database.materialize(4)
    return database


@pytest.fixture
def mixed_specs(db):
    rng = random.Random(13)
    specs = []
    for method in ("eager", "lazy", "lazy-ep", "eager-m"):
        for _ in range(4):
            specs.append(QuerySpec("rknn", rng.randrange(60), k=rng.randint(1, 2),
                                   method=method))
    for _ in range(6):
        specs.append(QuerySpec("knn", rng.randrange(60), k=3))
        specs.append(QuerySpec("range", rng.randrange(60), k=2, radius=6.0))
    return specs


class TestBatchEqualsSequential:
    def test_single_worker(self, db, mixed_specs):
        want = sequential_answers(db, mixed_specs)
        outcome = db.engine().run_batch(mixed_specs)
        assert batch_answers(outcome) == want
        assert len(outcome) == len(mixed_specs)

    def test_four_workers(self, db, mixed_specs):
        want = sequential_answers(db, mixed_specs)
        outcome = db.engine().run_batch(mixed_specs, workers=4)
        assert batch_answers(outcome) == want

    def test_unplanned_batch(self, db, mixed_specs):
        want = sequential_answers(db, mixed_specs)
        outcome = db.engine(plan=False).run_batch(mixed_specs)
        assert batch_answers(outcome) == want
        assert outcome.order == tuple(range(len(mixed_specs)))

    def test_uncached_batch(self, db, mixed_specs):
        want = sequential_answers(db, mixed_specs)
        outcome = db.engine(cache_entries=0).run_batch(mixed_specs, workers=2)
        assert batch_answers(outcome) == want

    def test_unrestricted_network(self):
        rng = random.Random(5)
        graph = build_random_graph(rng, 40, 25)
        db = GraphDatabase(graph, place_edge_points(graph, 0.2, seed=2))
        queries = data_queries(db.points, count=10, seed=3)
        specs = [QuerySpec("rknn", q.location, k=1, exclude=q.exclude)
                 for q in queries]
        want = sequential_answers(db, specs)
        assert batch_answers(db.engine().run_batch(specs, workers=3)) == want

    def test_bichromatic_specs(self, db):
        rng = random.Random(11)
        refs = NodePointSet({500 + i: node
                             for i, node in enumerate(rng.sample(range(60), 8))})
        db.attach_reference(refs)
        specs = [QuerySpec("bichromatic", rng.randrange(60), k=1, method=method)
                 for method in ("eager", "lazy") for _ in range(3)]
        want = sequential_answers(db, specs)
        assert batch_answers(db.engine().run_batch(specs, workers=2)) == want

    def test_invalid_workers(self, db):
        with pytest.raises(QueryError, match="workers"):
            db.engine().run_batch([QuerySpec("knn", 0)], workers=0)


class TestCache:
    def test_warm_hits_are_zero_io(self, db, mixed_specs):
        engine = db.engine()
        first = engine.run_batch(mixed_specs)
        warm = engine.run_batch(mixed_specs)
        assert warm.misses == 0
        assert warm.hits == len(mixed_specs)
        assert warm.io == 0
        assert all(r.io == 0 for r in warm.results)
        assert all(r.counters.io_operations == 0 for r in warm.results)
        assert batch_answers(warm) == batch_answers(first)

    def test_within_batch_duplicates_execute_once(self, db):
        spec = QuerySpec("rknn", 3, k=2)
        outcome = db.engine().run_batch([spec] * 5)
        assert outcome.executed == 1
        assert outcome.misses == 1 and outcome.hits == 4
        answers = batch_answers(outcome)
        assert all(a == answers[0] for a in answers)

    def test_single_run_uses_cache(self, db):
        engine = db.engine()
        spec = QuerySpec("knn", 7, k=2)
        first = engine.run(spec)
        second = engine.run(spec)
        assert second.neighbors == first.neighbors
        assert second.io == 0 and second.cpu_seconds == 0.0
        assert engine.cache_stats.hits == 1

    def test_insert_invalidates(self, db):
        engine = db.engine()
        spec = QuerySpec("rknn", 0, k=1)
        before = engine.run(spec)
        free_node = next(n for n in range(60) if db.points.point_at(n) is None)
        db.insert_point(999, free_node)
        after = engine.run(spec)  # re-executed, not served stale
        assert engine.cache_stats.hits == 0
        assert after.points == db.rknn(0, 1).points

    def test_delete_invalidates(self, db):
        engine = db.engine()
        victim = sorted(db.points.ids())[0]
        spec = QuerySpec("rknn", db.points.node_of(victim), k=1)
        stale = engine.run(spec)
        db.delete_point(victim)
        fresh = engine.run(spec)
        assert victim not in fresh.points
        assert engine.generation == db.generation

    def test_generation_counts_updates(self, db):
        g0 = db.generation
        free_node = next(n for n in range(60) if db.points.point_at(n) is None)
        db.insert_point(999, free_node)
        db.delete_point(999)
        assert db.generation == g0 + 2


class TestWorkers:
    def test_worker_counters_merge_into_db_tracker(self, db, mixed_specs):
        engine = db.engine(cache_entries=0)
        before = db.tracker.snapshot()
        outcome = engine.run_batch(mixed_specs, workers=4)
        diff = db.tracker.diff(before)
        # every page fault and node visit a worker session performed is
        # visible in the database's global accounting
        assert diff.page_reads == outcome.counters.page_reads
        assert diff.nodes_visited == outcome.counters.nodes_visited
        assert outcome.counters.nodes_visited > 0

    def test_batch_counters_sum_per_query_diffs(self, db, mixed_specs):
        outcome = db.engine().run_batch(mixed_specs, workers=1)
        assert outcome.counters.nodes_visited == sum(
            r.counters.nodes_visited for r in outcome.results
        )
        assert outcome.io == sum(r.io for r in outcome.results)

    def test_read_clone_is_independent(self, db):
        clone = db.read_clone()
        assert clone.tracker is not db.tracker
        assert clone.buffer is not db.buffer
        before = db.tracker.snapshot()
        result = clone.rknn(5, 2)
        assert result.points == db.rknn(5, 2).points
        # the clone's work never touched the parent's counters
        assert db.tracker.diff(before).nodes_visited == db.rknn(5, 2).counters.nodes_visited

    def test_more_workers_than_queries(self, db):
        specs = [QuerySpec("knn", 1), QuerySpec("knn", 2)]
        outcome = db.engine().run_batch(specs, workers=8)
        assert batch_answers(outcome) == sequential_answers(db, specs)


class TestPlanner:
    def test_plan_groups_same_pages_adjacently(self, db):
        specs = [QuerySpec("rknn", node, k=1) for node in range(0, 60, 3)]
        plan = plan_batch(db, specs)
        pages = [db.disk.page_of(plan.specs[i].query) for i in plan.order]
        # page ranks are non-decreasing within the single (kind, method, k) group
        assert pages == sorted(pages)
        assert sorted(plan.order) == list(range(len(specs)))

    def test_auto_method_needs_calibrator(self, db):
        with pytest.raises(QueryError, match="auto"):
            db.engine().run_batch([QuerySpec("rknn", 0, method=AUTO_METHOD)])

    def test_auto_method_resolved_by_calibrator(self, db):
        calibrator = CalibratingPlanner(db, samples=1)
        engine = db.engine(calibrator=calibrator)
        spec = QuerySpec("rknn", 0, k=1, method=AUTO_METHOD)
        outcome = engine.run_batch([spec])
        assert batch_answers(outcome) == [db.rknn(0, 1).points]
        assert calibrator.method_for(1) in ("eager", "lazy", "eager-m", "lazy-ep")

    def test_plan_explain_lists_every_query(self, db):
        specs = [QuerySpec("rknn", 1), QuerySpec("knn", 2)]
        text = plan_batch(db, specs).explain()
        assert "rknn" in text and "knn" in text
        assert len(text.splitlines()) == 3
