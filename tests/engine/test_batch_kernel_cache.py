"""Generation safety of batch-kernel answers in the engine cache.

The engine stores every result under ``(db generation, spec.key())``.
Answers produced by the vectorized batch kernel flow through exactly
the same ``cache.put`` as scalar ones, so a point mutation between two
identical batches must invalidate every vectorized entry -- a stale
batched answer served after an update would be a silent correctness
hole no throughput win excuses.  These tests pin that contract and its
flip side: at an unchanged generation, a repeated batch is served
entirely from cache without re-entering the kernel.
"""

from repro import CompactDatabase, NodePointSet, QuerySpec
from repro.datasets.grid import generate_grid


def _fixture():
    graph = generate_grid(100, average_degree=4.0, seed=5)
    points = NodePointSet({pid: node for pid, node in
                           enumerate(range(0, 40, 5))})
    specs = [QuerySpec("rknn", query=q, k=2, method="eager")
             for q in (3, 17, 42, 66, 91)]
    return graph, points, specs


def _answers(outcome):
    return [result.points for result in outcome.results]


def test_mutation_invalidates_batched_answers():
    graph, points, specs = _fixture()
    db = CompactDatabase(graph, points)
    engine = db.engine()

    first = engine.run_batch(specs)
    assert first.misses == len(specs) and first.hits == 0

    # placing the new point on a query node puts it at distance zero
    # from that query: it must join the recomputed answer
    db.insert_point(900, specs[2].query)

    second = engine.run_batch(specs)
    assert second.hits == 0, (
        "a stale vectorized answer was served across a generation bump"
    )
    assert second.misses == len(specs)

    # the recomputed batch must equal a fresh scalar pass over the
    # mutated database, not the pre-mutation answers
    fresh = CompactDatabase(graph, db.points)
    expected = [fresh.rknn(s.query, s.k, method=s.method).points
                for s in specs]
    assert _answers(second) == expected
    assert _answers(second) != _answers(first), (
        "the inserted point should appear in some reverse neighborhood; "
        "widen the fixture if this ever degenerates"
    )


def test_unchanged_generation_serves_batch_from_cache():
    graph, points, specs = _fixture()
    db = CompactDatabase(graph, points)
    engine = db.engine()

    first = engine.run_batch(specs)
    again = engine.run_batch(specs)
    assert again.hits == len(specs) and again.misses == 0
    assert _answers(again) == _answers(first)


def test_scalar_and_batch_kernel_share_cache_entries():
    """A batch-kernel answer satisfies a later scalar-path look-up for
    the same spec (and vice versa): one key space, one contract."""
    graph, points, specs = _fixture()
    db = CompactDatabase(graph, points)
    engine = db.engine()
    engine.run_batch(specs)

    solo = engine.run(specs[0])
    outcome = engine.run_batch(specs)
    assert outcome.hits == len(specs)
    assert solo.points == outcome.results[0].points
