"""Tests for DIMACS and METIS interchange formats."""

import random

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.interop import load_dimacs, load_metis, save_dimacs, save_metis
from tests.conftest import build_random_graph


def graphs_equal(a: Graph, b: Graph) -> bool:
    return (
        a.num_nodes == b.num_nodes
        and sorted(a.edges()) == sorted(b.edges())
    )


class TestDimacsRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_graph_round_trips(self, tmp_path, seed):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(3, 30), rng.randint(0, 30))
        path = tmp_path / "g.gr"
        save_dimacs(path, graph)
        assert graphs_equal(load_dimacs(path), graph)

    def test_float_weights_round_trip(self, tmp_path):
        graph = Graph(3, [(0, 1, 1.5), (1, 2, 2.25)])
        path = tmp_path / "g.gr"
        save_dimacs(path, graph)
        assert sorted(load_dimacs(path).edges()) == sorted(graph.edges())

    def test_coordinates_round_trip(self, tmp_path):
        graph = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)],
                      coords=[(0.0, 0.0), (1.5, 2.0), (3.0, 4.0)])
        gr, co = tmp_path / "g.gr", tmp_path / "g.co"
        save_dimacs(gr, graph, coordinates=co)
        loaded = load_dimacs(gr, coordinates=co)
        assert loaded.coords == graph.coords

    def test_saving_coords_without_coords_is_an_error(self, tmp_path):
        graph = Graph(2, [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            save_dimacs(tmp_path / "g.gr", graph, coordinates=tmp_path / "g.co")


class TestDimacsParsing:
    def test_comments_and_one_based_ids(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text(
            "c a road network\n"
            "p sp 3 4\n"
            "a 1 2 5\n"
            "a 2 1 5\n"
            "a 2 3 7\n"
            "a 3 2 7\n"
        )
        graph = load_dimacs(path)
        assert graph.num_nodes == 3
        assert graph.weight(0, 1) == 5.0
        assert graph.weight(1, 2) == 7.0

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("a 1 2 5\n")
        with pytest.raises(GraphError):
            load_dimacs(path)

    def test_arc_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 3\na 1 2 5\na 2 1 5\n")
        with pytest.raises(GraphError):
            load_dimacs(path)

    def test_asymmetric_arcs_rejected_by_default(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 2\na 1 2 5\na 2 1 9\n")
        with pytest.raises(GraphError):
            load_dimacs(path)

    @pytest.mark.parametrize("mode,expected", [("min", 5.0), ("max", 9.0)])
    def test_asymmetric_arc_resolution(self, tmp_path, mode, expected):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 2\na 1 2 5\na 2 1 9\n")
        assert load_dimacs(path, on_asymmetric=mode).weight(0, 1) == expected

    def test_bad_resolution_mode_rejected(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text("p sp 2 2\na 1 2 5\na 2 1 5\n")
        with pytest.raises(GraphError):
            load_dimacs(path, on_asymmetric="avg")

    def test_incomplete_coordinates_rejected(self, tmp_path):
        gr, co = tmp_path / "g.gr", tmp_path / "g.co"
        gr.write_text("p sp 2 2\na 1 2 5\na 2 1 5\n")
        co.write_text("p aux sp co 2\nv 1 0.0 0.0\n")
        with pytest.raises(GraphError):
            load_dimacs(gr, coordinates=co)


class TestMetisRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_graph_round_trips(self, tmp_path, seed):
        rng = random.Random(100 + seed)
        graph = build_random_graph(rng, rng.randint(3, 30), rng.randint(0, 30))
        path = tmp_path / "g.graph"
        save_metis(path, graph)
        assert graphs_equal(load_metis(path), graph)

    def test_float_weights_rejected_on_save(self, tmp_path):
        graph = Graph(2, [(0, 1, 1.5)])
        with pytest.raises(GraphError):
            save_metis(tmp_path / "g.graph", graph)


class TestMetisParsing:
    def test_unweighted_file_gets_unit_weights(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("% a comment\n3 2\n2\n1 3\n2\n")
        graph = load_metis(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.weight(0, 1) == 1.0

    def test_weighted_file(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("3 2 1\n2 7\n1 7 3 9\n2 9\n")
        graph = load_metis(path)
        assert graph.weight(0, 1) == 7.0
        assert graph.weight(1, 2) == 9.0

    def test_isolated_node_blank_line(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("3 1\n2\n1\n\n")
        graph = load_metis(path)
        assert graph.num_nodes == 3
        assert graph.degree(2) == 0

    def test_node_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("3 1\n2\n1\n")
        with pytest.raises(GraphError):
            load_metis(path)

    def test_self_loop_rejected(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1\n1\n1\n")
        with pytest.raises(GraphError):
            load_metis(path)

    def test_edge_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("3 5\n2\n1 3\n2\n")
        with pytest.raises(GraphError):
            load_metis(path)

    def test_inconsistent_weights_rejected(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 1\n2 5\n1 6\n")
        with pytest.raises(GraphError):
            load_metis(path)

    def test_node_weight_formats_rejected(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("2 1 11\n1 2\n1 1\n")
        with pytest.raises(GraphError):
            load_metis(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "g.graph"
        path.write_text("")
        with pytest.raises(GraphError):
            load_metis(path)
