"""Unit tests for the in-memory graph model."""

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph, edge_key


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)

    def test_identity_on_equal(self):
        assert edge_key(3, 3) == (3, 3)


class TestConstruction:
    def test_basic_counts(self, path_graph):
        assert path_graph.num_nodes == 5
        assert path_graph.num_edges == 4

    def test_neighbors_symmetric(self, path_graph):
        assert (1, 2.0) in path_graph.neighbors(0)
        assert (0, 2.0) in path_graph.neighbors(1)

    def test_weight_lookup_either_direction(self, path_graph):
        assert path_graph.weight(0, 1) == 2.0
        assert path_graph.weight(1, 0) == 2.0

    def test_missing_edge_rejected(self, path_graph):
        with pytest.raises(GraphError):
            path_graph.weight(0, 4)

    def test_degree_and_average(self, path_graph):
        assert path_graph.degree(0) == 1
        assert path_graph.degree(1) == 2
        assert path_graph.average_degree() == pytest.approx(8 / 5)

    def test_edges_iterates_once_canonical(self, path_graph):
        edges = list(path_graph.edges())
        assert len(edges) == 4
        assert all(u < v for u, v, _ in edges)

    def test_rejects_zero_nodes(self):
        with pytest.raises(GraphError):
            Graph(0, [])

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 0, 1.0)])

    def test_rejects_non_positive_weight(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1, 0.0)])
        with pytest.raises(GraphError):
            Graph(2, [(0, 1, -3.0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1, 1.0), (1, 0, 2.0)])

    def test_rejects_unknown_node(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 5, 1.0)])

    def test_from_edges_infers_node_count(self):
        graph = Graph.from_edges([(0, 3, 1.0)])
        assert graph.num_nodes == 4

    def test_coords_length_checked(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1, 1.0)], coords=[(0.0, 0.0)])


class TestConnectivity:
    def test_connected_graph(self, ring_graph):
        assert ring_graph.is_connected()
        assert len(ring_graph.connected_components()) == 1

    def test_disconnected_components(self):
        graph = Graph(5, [(0, 1, 1.0), (2, 3, 1.0)])
        components = graph.connected_components()
        assert sorted(map(tuple, components)) == [(0, 1), (2, 3), (4,)]

    def test_largest_component_subgraph_relabels(self):
        graph = Graph(6, [(3, 4, 1.0), (4, 5, 2.0), (0, 1, 1.0)])
        sub, old_ids = graph.largest_component_subgraph()
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert old_ids == [3, 4, 5]
        assert sub.weight(old_ids.index(3), old_ids.index(4)) == 1.0

    def test_largest_component_keeps_coords(self):
        coords = [(float(i), 0.0) for i in range(4)]
        graph = Graph(4, [(2, 3, 1.0)], coords=coords)
        sub, old_ids = graph.largest_component_subgraph()
        assert sub.coords == [coords[i] for i in old_ids]
