"""Unit tests for node ordering and page partitioning."""

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.partition import (
    _hilbert_d,
    bfs_order,
    hilbert_order,
    partition_nodes,
)


class TestBfsOrder:
    def test_covers_all_nodes_once(self, ring_graph):
        order = bfs_order(ring_graph)
        assert sorted(order) == list(range(6))

    def test_neighbors_are_near_in_order(self):
        n = 50
        path = Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        order = bfs_order(path, seed=0)
        assert order == list(range(n))

    def test_disconnected_graph_covered(self):
        graph = Graph(4, [(0, 1, 1.0)])
        assert sorted(bfs_order(graph)) == [0, 1, 2, 3]

    def test_bad_seed_rejected(self, ring_graph):
        with pytest.raises(GraphError):
            bfs_order(ring_graph, seed=77)


class TestHilbertOrder:
    def test_requires_coords(self, ring_graph):
        with pytest.raises(GraphError):
            hilbert_order(ring_graph)

    def test_spatial_neighbors_are_near(self):
        # 4x4 grid with coordinates; Hilbert order keeps spatial locality
        side = 4
        coords = [(float(i % side), float(i // side)) for i in range(side * side)]
        edges = []
        for row in range(side):
            for col in range(side):
                if col + 1 < side:
                    edges.append((row * side + col, row * side + col + 1, 1.0))
                if row + 1 < side:
                    edges.append((row * side + col, (row + 1) * side + col, 1.0))
        graph = Graph(side * side, edges, coords=coords)
        order = hilbert_order(graph, bits=8)
        assert sorted(order) == list(range(side * side))
        position = {node: i for i, node in enumerate(order)}
        # average order-distance of grid neighbors stays small
        gaps = [abs(position[u] - position[v]) for u, v, _ in edges]
        assert sum(gaps) / len(gaps) < side * side / 2

    def test_hilbert_curve_is_bijective(self):
        bits = 3
        side = 1 << bits
        values = {_hilbert_d(bits, x, y) for x in range(side) for y in range(side)}
        assert values == set(range(side * side))


class TestPartitionNodes:
    def test_respects_order_and_size(self):
        order = [3, 1, 0, 2]
        sizes = [30, 30, 30, 30]
        pages = partition_nodes(order, sizes, page_size=70)
        assert pages == [[3, 1], [0, 2]]

    def test_indexes_sizes_by_node_id(self):
        order = [1, 0]
        sizes = [60, 10]  # node 0 is large, node 1 small
        pages = partition_nodes(order, sizes, page_size=64)
        assert pages == [[1], [0]]
