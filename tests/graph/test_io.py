"""Unit tests for graph persistence."""

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.io import load_graph, save_graph
from repro.points.points import EdgePointSet, NodePointSet


class TestRoundTrip:
    def test_graph_only(self, tmp_path, path_graph):
        path = tmp_path / "g.txt"
        save_graph(path, path_graph)
        loaded, points = load_graph(path)
        assert points is None
        assert loaded.num_nodes == path_graph.num_nodes
        assert sorted(loaded.edges()) == sorted(path_graph.edges())

    def test_with_node_points(self, tmp_path, path_graph):
        path = tmp_path / "g.txt"
        points = NodePointSet({7: 0, 9: 3})
        save_graph(path, path_graph, points)
        _, loaded = load_graph(path)
        assert isinstance(loaded, NodePointSet)
        assert dict(loaded.items()) == {7: 0, 9: 3}

    def test_with_edge_points(self, tmp_path, path_graph):
        path = tmp_path / "g.txt"
        points = EdgePointSet({7: (0, 1, 0.5), 9: (2, 3, 0.25)})
        save_graph(path, path_graph, points)
        _, loaded = load_graph(path)
        assert isinstance(loaded, EdgePointSet)
        assert dict(loaded.items()) == {7: (0, 1, 0.5), 9: (2, 3, 0.25)}

    def test_with_coords(self, tmp_path):
        graph = Graph(2, [(0, 1, 1.5)], coords=[(0.25, 1.0), (3.5, 4.0)])
        path = tmp_path / "g.txt"
        save_graph(path, graph)
        loaded, _ = load_graph(path)
        assert loaded.coords == [(0.25, 1.0), (3.5, 4.0)]

    def test_weights_survive_repr_round_trip(self, tmp_path):
        weight = 0.1 + 0.2  # not exactly representable in decimal
        graph = Graph(2, [(0, 1, weight)])
        path = tmp_path / "g.txt"
        save_graph(path, graph)
        loaded, _ = load_graph(path)
        assert loaded.weight(0, 1) == weight


class TestMalformedFiles:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("E 0 1 1.0\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_unknown_tag(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("V 2\nX what\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("V 2\nE 0 oops 1.0\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_mixed_point_modes_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("V 3\nE 0 1 1.0\nE 1 2 1.0\nNP 5 0\nEP 6 0 1 0.5\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_partial_coords_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("V 2\nC 0 1.0 2.0\nE 0 1 1.0\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text("# header\nV 2\n\nE 0 1 1.0\n# trailing\n")
        graph, _ = load_graph(path)
        assert graph.num_edges == 1
