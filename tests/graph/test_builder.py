"""Unit tests for the incremental graph builder."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder


class TestBuilderEdges:
    def test_build_simple(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, 2.0)
        builder.add_edge(1, 2, 3.0)
        graph = builder.build()
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_duplicate_error_policy(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, 2.0)
        with pytest.raises(GraphError):
            builder.add_edge(1, 0, 5.0)

    def test_duplicate_min_policy(self):
        builder = GraphBuilder(on_duplicate="min")
        builder.add_edge(0, 1, 5.0)
        builder.add_edge(1, 0, 2.0)
        assert builder.build().weight(0, 1) == 2.0

    def test_duplicate_ignore_policy(self):
        builder = GraphBuilder(on_duplicate="ignore")
        builder.add_edge(0, 1, 5.0)
        builder.add_edge(1, 0, 2.0)
        assert builder.build().weight(0, 1) == 5.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder(on_duplicate="overwrite")

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder().add_edge(2, 2, 1.0)

    def test_bad_weight_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder().add_edge(0, 1, -1.0)

    def test_add_edges_bulk(self):
        builder = GraphBuilder()
        builder.add_edges([(0, 1, 1.0), (1, 2, 2.0)])
        assert builder.num_edges == 2

    def test_empty_builder_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder().build()

    def test_explicit_node_count_padding(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, 1.0)
        graph = builder.build(num_nodes=10)
        assert graph.num_nodes == 10
        assert graph.degree(9) == 0


class TestLabelInterning:
    def test_labels_get_dense_ids(self):
        builder = GraphBuilder()
        builder.add_labeled_edge("alice", "bob", 1.0)
        builder.add_labeled_edge("bob", "carol", 1.0)
        assert builder.labels == ["alice", "bob", "carol"]
        graph = builder.build()
        assert graph.num_nodes == 3
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)

    def test_intern_is_stable(self):
        builder = GraphBuilder()
        first = builder.intern("x")
        second = builder.intern("x")
        assert first == second
