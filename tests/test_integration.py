"""End-to-end integration tests across the full stack.

Each test drives the public API over a generated data set -- the same
path the benchmarks and examples take -- and cross-checks results
between algorithms and against the oracle.
"""

import pytest

from repro import GraphDatabase
from repro.core.baseline import brute_force_rknn
from repro.datasets.brite import generate_brite
from repro.datasets.dblp import generate_dblp
from repro.datasets.grid import generate_grid
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import (
    data_queries,
    place_edge_points,
    place_node_points,
    random_route,
)

ALL_METHODS = ("eager", "lazy", "eager-m", "lazy-ep")


class TestDblpFlow:
    @pytest.fixture(scope="class")
    def db(self):
        dblp = generate_dblp(num_nodes=400, num_edges=1200, seed=1)
        points = place_node_points(dblp.graph, 0.1, seed=2)
        db = GraphDatabase(dblp.graph, points)
        db.materialize(3)
        return db

    def test_methods_agree(self, db):
        for query in data_queries(db.points, count=6, seed=3):
            results = {
                method: db.rknn(
                    query.location, 2, method=method, exclude=query.exclude
                ).points
                for method in ALL_METHODS
            }
            assert len(set(results.values())) == 1, results

    def test_matches_oracle(self, db):
        (query,) = data_queries(db.points, count=1, seed=4)
        want = brute_force_rknn(db.graph, db.points, query.location, 1, query.exclude)
        got = list(db.rknn(query.location, 1, exclude=query.exclude).points)
        assert got == want


class TestBriteFlow:
    @pytest.fixture(scope="class")
    def db(self):
        graph = generate_brite(800, seed=5)
        points = place_node_points(graph, 0.05, seed=6)
        db = GraphDatabase(graph, points)
        db.materialize(2)
        return db

    def test_methods_agree(self, db):
        for query in data_queries(db.points, count=5, seed=7):
            results = {
                method: db.rknn(
                    query.location, 1, method=method, exclude=query.exclude
                ).points
                for method in ALL_METHODS
            }
            assert len(set(results.values())) == 1, results

    def test_eager_visits_fewer_nodes_than_lazy(self, db):
        """The exponential-expansion effect (paper Figs. 15-16)."""
        eager_visited = 0
        lazy_visited = 0
        for query in data_queries(db.points, count=5, seed=8):
            result = db.rknn(query.location, 1, method="eager",
                             exclude=query.exclude)
            eager_visited += result.counters.nodes_visited
            result = db.rknn(query.location, 1, method="lazy",
                             exclude=query.exclude)
            lazy_visited += result.counters.nodes_visited
        assert eager_visited < lazy_visited


class TestSpatialFlow:
    @pytest.fixture(scope="class")
    def db(self):
        graph = generate_spatial(900, seed=9)
        points = place_edge_points(graph, 0.02, seed=10)
        db = GraphDatabase(graph, points, node_order="hilbert")
        db.materialize(3)
        return db

    def test_methods_agree_on_edge_queries(self, db):
        for query in data_queries(db.points, count=4, seed=11):
            results = {
                method: db.rknn(
                    query.location, 2, method=method, exclude=query.exclude
                ).points
                for method in ALL_METHODS
            }
            assert len(set(results.values())) == 1, results

    def test_continuous_queries(self, db):
        route = random_route(db.graph, 8, seed=12)
        results = {
            method: tuple(db.continuous_rknn(route, 1, method=method).points)
            for method in ALL_METHODS
        }
        assert len(set(results.values())) == 1, results

    def test_update_cycle_preserves_correctness(self, db):
        pid = max(db.points.ids())
        location = db.points.location(pid)
        db.delete_point(pid)
        db.insert_point(pid, location)
        (query,) = data_queries(db.points, count=1, seed=13)
        want = brute_force_rknn(db.graph, db.points, query.location, 1, query.exclude)
        got = list(db.rknn(query.location, 1, method="eager-m",
                           exclude=query.exclude).points)
        assert got == want


class TestGridFlow:
    def test_grid_degree_sweep_runs(self):
        for degree in (4.0, 5.0):
            graph = generate_grid(400, average_degree=degree, seed=14)
            points = place_node_points(graph, 0.05, seed=15)
            db = GraphDatabase(graph, points)
            (query,) = data_queries(points, count=1, seed=16)
            results = {
                method: db.rknn(
                    query.location, 1, method=method, exclude=query.exclude
                ).points
                for method in ("eager", "lazy", "lazy-ep")
            }
            assert len(set(results.values())) == 1
