"""Integration tests across the related-work subsystems.

Each test wires several packages together over a realistic generated
data set, the way the examples do -- catching interface drift that
unit tests scoped to one module would miss.
"""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.analytics import CalibratingPlanner, network_report, recommend_method
from repro.core.in_route import in_route_knn, in_route_nn_ids
from repro.datasets.brite import generate_brite
from repro.datasets.dblp import generate_dblp
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import data_queries, place_node_points, random_route
from repro.graph.interop import load_dimacs, load_metis, save_dimacs, save_metis
from repro.hier.hepv import HierarchicalDistanceIndex
from repro.metric.rnn import metric_rknn
from repro.paths.astar import astar_path, euclidean_heuristic
from repro.paths.dijkstra import shortest_path
from repro.paths.landmarks import LandmarkIndex
from repro.streams.monitor import BichromaticRnnMonitor, RnnMonitor
from repro.voronoi.nvd import NetworkVoronoi
from repro.voronoi.rnn import voronoi_rnn


@pytest.fixture(scope="module")
def spatial_db():
    graph = generate_spatial(800, seed=21)
    points = place_node_points(graph, 0.02, seed=22, first_id=100)
    return GraphDatabase(graph, points, node_order="hilbert")


class TestRnnMethodsAgreeAcrossSubsystems:
    """eager, Voronoi and the metric index are three independent
    implementations of the same query -- they must agree on real
    workloads, not just on toy graphs."""

    def test_on_spatial_workload(self, spatial_db):
        queries = data_queries(spatial_db.points, count=6, seed=23)
        for query in queries:
            expected = sorted(
                spatial_db.rknn(query.location, 1, method="eager",
                                exclude=query.exclude).points
            )
            assert voronoi_rnn(spatial_db.view, query.location,
                               exclude=query.exclude) == expected
            assert metric_rknn(spatial_db.view, query.location, 1,
                               exclude=query.exclude) == expected

    def test_on_dblp_unit_weights(self):
        coauth = generate_dblp(num_nodes=400, seed=4)
        points = place_node_points(coauth.graph, 0.05, seed=5, first_id=100)
        db = GraphDatabase(coauth.graph, points)
        for query in data_queries(points, count=5, seed=6):
            expected = sorted(
                db.rknn(query.location, 1, method="lazy",
                        exclude=query.exclude).points
            )
            assert voronoi_rnn(db.view, query.location,
                               exclude=query.exclude) == expected


class TestDistanceSubstratesAgree:
    """Four distance oracles over the same spatial graph."""

    def test_dijkstra_astar_hepv_agree(self, spatial_db):
        graph = spatial_db.graph
        index = HierarchicalDistanceIndex.build(graph, fragment_size=24)
        landmarks = LandmarkIndex.build(graph, graph.num_nodes, count=4)
        rng = random.Random(9)
        for _ in range(8):
            u, v = rng.sample(range(graph.num_nodes), 2)
            reference = shortest_path(graph, u, v).distance
            assert index.distance(u, v) == pytest.approx(reference)
            h = euclidean_heuristic(graph.coords, v)
            assert astar_path(graph, u, v, h).distance == pytest.approx(reference)
            alt = astar_path(graph, u, v, landmarks.heuristic(v))
            assert alt.distance == pytest.approx(reference)

    def test_api_network_distance_matches_paths(self, spatial_db):
        rng = random.Random(10)
        u, v = rng.sample(range(spatial_db.graph.num_nodes), 2)
        assert spatial_db.network_distance(u, v) == pytest.approx(
            shortest_path(spatial_db.graph, u, v).distance
        )


class TestVoronoiDrivesMonitoring:
    def test_cell_sizes_predict_bichromatic_influence(self):
        """A stand's bichromatic RNN count over uniformly-spread taxis
        tracks its Voronoi cell: every taxi strictly inside the cell
        belongs to the stand's result."""
        graph = generate_spatial(500, seed=30)
        stands = {0: 10, 1: graph.num_nodes - 10}
        db = GraphDatabase(graph, NodePointSet({}))
        monitor = BichromaticRnnMonitor(db, stands, k=1)
        stand_db = GraphDatabase(
            graph, NodePointSet({900 + sid: node for sid, node in stands.items()})
        )
        nvd = NetworkVoronoi.build(stand_db.view)
        rng = random.Random(31)
        taxis = {}
        for pid in range(100, 130):
            node = rng.randrange(graph.num_nodes)
            if node in taxis.values() or node in stands.values():
                continue
            taxis[pid] = node
            monitor.insert(pid, node)
        for pid, node in taxis.items():
            owners = nvd.owners_of(node)
            if len(owners) == 1:
                sid = owners[0] - 900
                assert pid in monitor.result(sid)

    def test_monochromatic_monitor_matches_direct_queries(self):
        graph = generate_brite(300, seed=32)
        db = GraphDatabase(graph, NodePointSet({}))
        monitor = RnnMonitor(db, {0: 5, 1: 100}, k=2)
        rng = random.Random(33)
        for pid in range(50, 62):
            taken = {db.points.node_of(p) for p in db.points.ids()}
            node = rng.choice([n for n in range(graph.num_nodes)
                               if n not in taken])
            monitor.insert(pid, node)
        check_db = GraphDatabase(graph, db.points)
        for qid, qnode in ((0, 5), (1, 100)):
            direct = check_db.rknn(qnode, 2, method="eager")
            assert monitor.result(qid) == sorted(direct.points)


class TestInteropFeedsTheEngine:
    def test_dimacs_round_trip_preserves_query_results(self, tmp_path,
                                                        spatial_db):
        gr, co = tmp_path / "g.gr", tmp_path / "g.co"
        save_dimacs(gr, spatial_db.graph, coordinates=co)
        reloaded = load_dimacs(gr, coordinates=co)
        db2 = GraphDatabase(reloaded, spatial_db.points, node_order="hilbert")
        query = data_queries(spatial_db.points, count=1, seed=40)[0]
        original = spatial_db.rknn(query.location, 2, exclude=query.exclude)
        again = db2.rknn(query.location, 2, exclude=query.exclude)
        assert original.points == again.points

    def test_metis_round_trip_preserves_distances(self, tmp_path):
        coauth = generate_dblp(num_nodes=250, seed=41)
        path = tmp_path / "g.graph"
        save_metis(path, coauth.graph)
        reloaded = load_metis(path)
        rng = random.Random(42)
        for _ in range(5):
            u, v = rng.sample(range(reloaded.num_nodes), 2)
            assert shortest_path(reloaded, u, v).distance == \
                shortest_path(coauth.graph, u, v).distance


class TestPlanningOverGeneratedWorkloads:
    def test_planner_and_rules_produce_usable_methods(self, spatial_db):
        advice = recommend_method(spatial_db, k=1)
        assert advice.method in ("eager", "lazy", "eager-m", "lazy-ep")
        planner = CalibratingPlanner(spatial_db, methods=("eager", "lazy"),
                                     samples=2)
        plan = planner.plan_for(1)
        result = planner.rknn(
            spatial_db.points.node_of(100), 1, exclude={100}
        )
        assert plan.method in ("eager", "lazy")
        assert result.points == spatial_db.rknn(
            spatial_db.points.node_of(100), 1, method=plan.method,
            exclude={100},
        ).points

    def test_report_describes_the_database(self, spatial_db):
        report = network_report(spatial_db)
        assert report.num_points == len(spatial_db.points)
        assert not report.expansion.exponential  # spatial nets are local


class TestRoutesAcrossSubsystems:
    def test_in_route_ids_consistent_with_exact_lists(self, spatial_db):
        route = random_route(spatial_db.graph, length=12, seed=50)
        exact = in_route_knn(spatial_db.view, route, 2)
        ids = in_route_nn_ids(spatial_db.view, route, 2)
        for (node_a, neighbors), (node_b, id_set) in zip(exact, ids):
            assert node_a == node_b
            assert len(id_set) == len(neighbors)

    def test_api_route_query_accounts_cost(self, spatial_db):
        route = random_route(spatial_db.graph, length=6, seed=51)
        spatial_db.clear_buffer()
        stops, cost = spatial_db.in_route_knn(route, 1)
        assert len(stops) == len(route)
        assert cost.io > 0
