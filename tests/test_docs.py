"""The documentation's code must run.

Extracts the fenced ``python`` blocks from README.md, the docs pages
(``docs/architecture.md``, ``docs/algorithms.md``,
``docs/observability.md``) and the package docstring example, and
executes them -- one shared namespace per document, blocks in order --
so no published snippet can drift from the actual API.
"""

import re
from pathlib import Path

import pytest

import repro

ROOT = Path(__file__).resolve().parent.parent
README = ROOT / "README.md"
DOCS_PAGES = sorted((ROOT / "docs").glob("*.md"))


def python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def run_blocks(path: Path) -> dict:
    """Execute every python block of a page in one shared namespace."""
    namespace: dict[str, object] = {}
    for block in python_blocks(path.read_text()):
        exec(compile(block, str(path), "exec"), namespace)
    return namespace


class TestReadmeExamples:
    def test_readme_has_python_blocks(self):
        blocks = python_blocks(README.read_text())
        assert len(blocks) >= 3

    def test_blocks_execute_in_order(self):
        # the quickstart leaves a database around with expected state
        db = run_blocks(README)["db"]
        assert db.points is not None


class TestDocsPages:
    """docs/*.md snippets execute (architecture + algorithms pages)."""

    def test_docs_pages_exist(self):
        names = {page.name for page in DOCS_PAGES}
        assert {"architecture.md", "algorithms.md"} <= names

    @pytest.mark.parametrize("page", DOCS_PAGES, ids=lambda p: p.name)
    def test_page_has_enough_snippets(self, page):
        assert len(python_blocks(page.read_text())) >= 2

    def test_architecture_page_executes(self):
        namespace = run_blocks(ROOT / "docs" / "architecture.md")
        # the walkthrough leaves a sharded database around
        assert namespace["db"].num_shards == 4
        # ... and a compact one, promoted from the disk store
        assert namespace["cdb"].backend == "compact"
        assert namespace["promoted"].backend == "compact"
        # the delta-overlay walkthrough compacted to a fresh base while
        # a pinned clone kept the original snapshot
        assert namespace["odb"].stamp == (1, 0)
        assert namespace["pinned"].stamp == (0, 0)
        # the process-fleet walkthrough booted real worker processes
        assert namespace["fleet_metrics"]["mode"] == "fleet"
        assert namespace["fleet_metrics"]["live_workers"] == 2

    def test_algorithms_page_executes(self):
        namespace = run_blocks(ROOT / "docs" / "algorithms.md")
        # every method agreed with the brute-force oracle along the way
        assert namespace["expected"]

    def test_observability_page_executes(self):
        namespace = run_blocks(ROOT / "docs" / "observability.md")
        # the span tree accounted for exactly the tracker's edge diff
        assert namespace["traced_edges"] == namespace["tracker_edges"]
        assert namespace["traced_edges"] > 0
        # EXPLAIN answered with plan + trace
        assert namespace["payload"]["explain"] is True
        # the live scrape round-tripped through the in-repo parser
        assert namespace["server_samples"]["repro_queries_served_total"] >= 2.0
        # the slow-query log recorded the forced-slow query
        assert namespace["slow"].recorded == 1


class TestPackageDocstring:
    def test_module_quickstart_runs(self):
        doc = repro.__doc__
        code = re.search(
            r"Quickstart::\n\n((?:    .*\n?)+)", doc
        ).group(1)
        source = "\n".join(line[4:] for line in code.splitlines())
        namespace: dict[str, object] = {}
        exec(compile(source, "repro.__doc__", "exec"), namespace)


class TestExamples:
    def test_every_example_compiles(self):
        import py_compile

        examples = sorted(
            (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
        )
        assert len(examples) >= 12
        for script in examples:
            py_compile.compile(str(script), doraise=True)

    def test_quickstart_example_runs(self, capsys):
        import runpy

        script = (Path(__file__).resolve().parent.parent / "examples"
                  / "quickstart.py")
        runpy.run_path(str(script), run_name="__main__")
        out = capsys.readouterr().out
        assert out.strip()
