"""The documentation's code must run.

Extracts the fenced ``python`` blocks from README.md and the package
docstring example and executes them in one shared namespace, so the
quickstart can never drift from the actual API.
"""

import re
from pathlib import Path

import repro

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeExamples:
    def test_readme_has_python_blocks(self):
        blocks = python_blocks(README.read_text())
        assert len(blocks) >= 3

    def test_blocks_execute_in_order(self):
        blocks = python_blocks(README.read_text())
        namespace: dict[str, object] = {}
        for block in blocks:
            exec(compile(block, str(README), "exec"), namespace)
        # the quickstart leaves a database around with expected state
        db = namespace["db"]
        assert db.points is not None


class TestPackageDocstring:
    def test_module_quickstart_runs(self):
        doc = repro.__doc__
        code = re.search(
            r"Quickstart::\n\n((?:    .*\n?)+)", doc
        ).group(1)
        source = "\n".join(line[4:] for line in code.splitlines())
        namespace: dict[str, object] = {}
        exec(compile(source, "repro.__doc__", "exec"), namespace)


class TestExamples:
    def test_every_example_compiles(self):
        import py_compile

        examples = sorted(
            (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
        )
        assert len(examples) >= 11
        for script in examples:
            py_compile.compile(str(script), doraise=True)

    def test_quickstart_example_runs(self, capsys):
        import runpy

        script = (Path(__file__).resolve().parent.parent / "examples"
                  / "quickstart.py")
        runpy.run_path(str(script), run_name="__main__")
        out = capsys.readouterr().out
        assert out.strip()
