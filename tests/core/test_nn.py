"""Unit tests for the NN primitives: knn, range-NN and verify."""

import math
import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.core.baseline import brute_force_knn
from repro.core.nn import knn, range_nn, verify
from tests.conftest import build_random_graph


@pytest.fixture
def db(path_graph):
    # points: 10 at node 0, 11 at node 2, 12 at node 4
    return GraphDatabase(path_graph, NodePointSet({10: 0, 11: 2, 12: 4}))


class TestKnn:
    def test_first_nn(self, db):
        assert knn(db.view, 1, 1) == [(10, 2.0)]

    def test_order_and_distances(self, db):
        assert knn(db.view, 1, 3) == [(10, 2.0), (11, 3.0), (12, 8.0)]

    def test_k_larger_than_points(self, db):
        assert len(knn(db.view, 1, 10)) == 3

    def test_exclude(self, db):
        assert knn(db.view, 1, 1, exclude={10}) == [(11, 3.0)]

    def test_point_on_source_node(self, db):
        assert knn(db.view, 0, 1) == [(10, 0.0)]


class TestRangeNn:
    def test_strict_radius(self, db):
        # point 11 lies at exactly distance 3 from node 1: excluded
        assert range_nn(db.view, 1, 2, 3.0) == [(10, 2.0)]

    def test_radius_just_above(self, db):
        assert range_nn(db.view, 1, 2, 3.0001) == [(10, 2.0), (11, 3.0)]

    def test_k_limits_result(self, db):
        assert range_nn(db.view, 1, 1, 100.0) == [(10, 2.0)]

    def test_empty_when_radius_zero(self, db):
        assert range_nn(db.view, 1, 1, 0.0) == []

    def test_counts_calls(self, db):
        before = db.tracker.range_nn_calls
        range_nn(db.view, 1, 1, 5.0)
        assert db.tracker.range_nn_calls == before + 1


class TestVerify:
    def test_query_is_nn(self, db):
        # point 10 at node 0; query at node 1 (distance 2); nearest other
        # point is 11 at distance 5: the query wins
        assert verify(db.view, 10, 1, {1}, bound=2.0)

    def test_query_not_nn(self, db):
        # point 11 at node 2; query at node 4 (distance 5); point 10 is
        # at distance 5 (tie): the query still wins on ties
        assert verify(db.view, 11, 1, {4}, bound=5.0)

    def test_strictly_closer_point_defeats_query(self, db):
        # point 12 at node 4; query at node 0 (distance 10); point 11 at
        # distance 5 is strictly closer
        assert not verify(db.view, 12, 1, {0}, bound=10.0)

    def test_k2_tolerates_one_closer_point(self, db):
        assert verify(db.view, 12, 2, {0}, bound=10.0)

    def test_unreachable_target(self):
        from repro.graph.graph import Graph

        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        db = GraphDatabase(graph, NodePointSet({10: 0}))
        assert not verify(db.view, 10, 1, {3}, bound=math.inf)

    def test_route_targets_use_first_met(self, db):
        # targets {1, 3}: point 10 reaches node 1 first (distance 2)
        assert verify(db.view, 10, 1, {1, 3}, bound=10.0)

    @pytest.mark.parametrize("seed", range(10))
    def test_knn_matches_brute_force(self, seed):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(5, 25), rng.randint(0, 15))
        nodes = rng.sample(range(graph.num_nodes), rng.randint(1, graph.num_nodes // 2 + 1))
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        source = rng.randrange(graph.num_nodes)
        k = rng.randint(1, 4)
        got = knn(db.view, source, k)
        want = brute_force_knn(graph, points, source, k)
        assert [d for _, d in got] == [d for _, d in want]
