"""Unit tests for all-NN materialization and its update maintenance."""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.core.baseline import dijkstra
from repro.core.materialize import MaterializedKNN, all_nn
from repro.errors import MaterializationError
from repro.graph.graph import Graph
from tests.conftest import build_random_graph


def reference_lists(graph, points, capacity):
    """K-NN lists recomputed from scratch with plain Dijkstra."""
    lists = {}
    per_point = {
        pid: dijkstra(graph, [(node, 0.0)]) for pid, node in points.items()
    }
    for node in graph.nodes():
        ranked = sorted(
            (dists[node], pid)
            for pid, dists in per_point.items()
            if node in dists
        )
        lists[node] = [(pid, dist) for dist, pid in ranked[:capacity]]
    return lists


def assert_equivalent(got, want, capacity):
    """Lists must agree on distances (ties may permute identities)."""
    for node, want_list in want.items():
        got_list = list(got.get(node, ()))
        assert [d for _, d in got_list] == pytest.approx(
            [d for _, d in want_list]
        ), f"node {node}: {got_list} != {want_list}"
        assert len(got_list) <= capacity


class TestAllNn:
    def test_single_point(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({10: 2}))
        lists = all_nn(db.view, 1, [(2, 10, 0.0)])
        assert lists[2] == [(10, 0.0)]
        assert lists[0] == [(10, 5.0)]
        assert lists[4] == [(10, 5.0)]

    def test_matches_reference_on_fixture(self, p2p_graph, p2p_points):
        db = GraphDatabase(p2p_graph, p2p_points)
        seeds = [(node, pid, 0.0) for pid, node in p2p_points.items()]
        for capacity in (1, 2, 3):
            got = all_nn(db.view, capacity, seeds)
            want = reference_lists(p2p_graph, p2p_points, capacity)
            assert_equivalent(got, want, capacity)

    def test_invalid_capacity(self, p2p_db):
        with pytest.raises(MaterializationError):
            all_nn(p2p_db.view, 0, [])

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_reference_randomized(self, seed):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(5, 25), rng.randint(0, 20))
        count = rng.randint(1, graph.num_nodes // 2)
        nodes = rng.sample(range(graph.num_nodes), count)
        points = NodePointSet({100 + i: n for i, n in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        capacity = rng.randint(1, 4)
        seeds = [(node, pid, 0.0) for pid, node in points.items()]
        got = all_nn(db.view, capacity, seeds)
        want = reference_lists(graph, points, capacity)
        assert_equivalent(got, want, capacity)


class TestInsertMaintenance:
    def test_insert_updates_nearby_lists(self, path_graph):
        points = NodePointSet({10: 0})
        db = GraphDatabase(path_graph, points)
        db.materialize(1)
        db.insert_point(11, 4)
        # node 3 is now closer to the new point (4.0) than to 10 (6.0)
        assert db.materialized.get(3) == ((11, 4.0),)
        # node 0 keeps its original nearest point
        assert db.materialized.get(0) == ((10, 0.0),)

    def test_insert_tie_keeps_incumbent(self):
        graph = Graph(3, [(0, 1, 2.0), (1, 2, 2.0)])
        db = GraphDatabase(graph, NodePointSet({10: 0}))
        db.materialize(1)
        db.insert_point(11, 2)  # node 1 ties at distance 2
        assert db.materialized.get(1) == ((10, 2.0),)

    def test_duplicate_insert_rejected(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({10: 0}))
        db.materialize(1)
        with pytest.raises(Exception):
            db.insert_point(10, 2)

    @pytest.mark.parametrize("seed", range(8))
    def test_insert_equals_rebuild(self, seed):
        rng = random.Random(seed + 500)
        graph = build_random_graph(rng, rng.randint(6, 20), rng.randint(0, 15))
        nodes = rng.sample(range(graph.num_nodes), 3)
        points = NodePointSet({100: nodes[0], 101: nodes[1]})
        db = GraphDatabase(graph, points)
        capacity = rng.randint(1, 3)
        db.materialize(capacity)
        db.insert_point(102, nodes[2])
        rebuilt = reference_lists(
            graph, NodePointSet({100: nodes[0], 101: nodes[1], 102: nodes[2]}),
            capacity,
        )
        got = {n: db.materialized.get(n) for n in graph.nodes()}
        assert_equivalent(got, rebuilt, capacity)


class TestDeleteMaintenance:
    def test_delete_refills_lists(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({10: 0, 11: 4}))
        db.materialize(1)
        db.delete_point(10)
        # every node must now point at 11
        for node in path_graph.nodes():
            entries = db.materialized.get(node)
            assert [pid for pid, _ in entries] == [11]

    def test_delete_affected_count(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({10: 0, 11: 4}))
        db.materialize(1)
        outcome = db.delete_point(11)
        # nodes 3 and 4 had 11 as NN (distances: node2 -> 10 at 5 vs 11 at 5
        # tie kept by all-NN order)
        assert outcome.affected_nodes >= 2

    def test_delete_last_point_leaves_empty_lists(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({10: 2}))
        db.materialize(1)
        db.delete_point(10)
        for node in path_graph.nodes():
            assert db.materialized.get(node) == ()

    @pytest.mark.parametrize("seed", range(10))
    def test_delete_equals_rebuild(self, seed):
        rng = random.Random(seed + 900)
        graph = build_random_graph(rng, rng.randint(6, 22), rng.randint(0, 18))
        count = rng.randint(2, max(2, graph.num_nodes // 2))
        nodes = rng.sample(range(graph.num_nodes), count)
        points = NodePointSet({100 + i: n for i, n in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        capacity = rng.randint(1, 3)
        db.materialize(capacity)
        victim = 100 + rng.randrange(count)
        db.delete_point(victim)
        remaining = points.without_point(victim)
        rebuilt = reference_lists(graph, remaining, capacity)
        got = {n: db.materialized.get(n) for n in graph.nodes()}
        assert_equivalent(got, rebuilt, capacity)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_update_sequence_equals_rebuild(self, seed):
        rng = random.Random(seed + 1300)
        graph = build_random_graph(rng, 15, 10)
        points = NodePointSet({100: 0, 101: 5})
        db = GraphDatabase(graph, points)
        capacity = 2
        db.materialize(capacity)
        live = {100: 0, 101: 5}
        next_id = 102
        for _ in range(8):
            occupied = set(live.values())
            free = [n for n in graph.nodes() if n not in occupied]
            if live and (rng.random() < 0.4 or not free):
                victim = rng.choice(sorted(live))
                db.delete_point(victim)
                del live[victim]
            else:
                node = rng.choice(free)
                db.insert_point(next_id, node)
                live[next_id] = node
                next_id += 1
        rebuilt = reference_lists(graph, NodePointSet(live), capacity)
        got = {n: db.materialized.get(n) for n in graph.nodes()}
        assert_equivalent(got, rebuilt, capacity)


class TestMaterializedStore:
    def test_build_persists_to_pages(self, p2p_graph, p2p_points):
        db = GraphDatabase(p2p_graph, p2p_points)
        db.materialize(2)
        assert isinstance(db.materialized, MaterializedKNN)
        assert db.materialized.capacity == 2
        db.clear_buffer()
        db.reset_stats()
        db.materialized.get(0)
        assert db.tracker.page_reads >= 1
