"""Unit tests for the eager RkNN algorithm."""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.core.baseline import brute_force_rknn
from repro.core.eager import eager_rknn
from repro.graph.graph import Graph
from tests.conftest import build_random_graph


class TestEagerBasics:
    def test_running_example(self, p2p_db):
        # query on the hub node n2: every point keeps the query as its NN
        assert eager_rknn(p2p_db.view, 2, 1) == [1, 2, 3]

    def test_empty_result(self, p2p_db):
        # from n4, every point has another point closer than the query
        assert eager_rknn(p2p_db.view, 4, 1) == []

    def test_k2_only_p1_qualifies(self, p2p_db):
        # p2 and p3 each have two points strictly closer than the query
        assert eager_rknn(p2p_db.view, 4, 2) == [1]

    def test_point_on_query_node_is_result(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({10: 2, 11: 4}))
        assert 10 in eager_rknn(db.view, 2, 1)

    def test_exclusion_hides_point(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({10: 2, 11: 4}))
        result = eager_rknn(db.view, 2, 1, exclude={10})
        assert 10 not in result
        assert result == [11]

    def test_no_points_no_result(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        assert eager_rknn(db.view, 0, 1) == []

    def test_single_point_is_always_rnn(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 3}))
        assert eager_rknn(db.view, 0, 1) == [10]


class TestEagerPruning:
    def test_expansion_stops_at_guarded_frontier(self):
        # long path with points bracketing the query: eager must not
        # walk to the far ends (Lemma 1 prunes behind each point)
        n = 101
        graph = Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        db = GraphDatabase(graph, NodePointSet({10: 45, 11: 55}))
        result = eager_rknn(db.view, 50, 1)
        assert result == [10, 11]
        assert db.tracker.nodes_visited < n  # did not sweep the path

    def test_verifies_each_point_once(self, p2p_db):
        eager_rknn(p2p_db.view, 2, 1)
        assert p2p_db.tracker.verifications <= 3  # one per data point


class TestEagerRandomized:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_oracle(self, seed):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(5, 30), rng.randint(0, 25))
        count = rng.randint(1, graph.num_nodes // 2)
        nodes = rng.sample(range(graph.num_nodes), count)
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        query = rng.randrange(graph.num_nodes)
        k = rng.randint(1, 3)
        assert eager_rknn(db.view, query, k) == brute_force_rknn(
            graph, points, query, k
        )
