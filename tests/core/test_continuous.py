"""Unit tests for continuous (route) RkNN queries."""

import random

import pytest

from repro import GraphDatabase, NodePointSet, QueryError
from repro.core.baseline import brute_force_rknn
from repro.core.continuous import continuous_rknn, validate_route
from repro.graph.graph import Graph
from tests.conftest import build_random_graph

METHODS = ("eager", "lazy", "eager-m", "lazy-ep")


@pytest.fixture
def route_db(path_graph):
    db = GraphDatabase(path_graph, NodePointSet({10: 0, 11: 4}))
    db.materialize(3)
    return db


class TestRouteValidation:
    def test_valid_route(self, route_db):
        validate_route(route_db.view, [0, 1, 2])

    def test_empty_route_rejected(self, route_db):
        with pytest.raises(QueryError):
            validate_route(route_db.view, [])

    def test_non_edge_hop_rejected(self, route_db):
        with pytest.raises(QueryError):
            validate_route(route_db.view, [0, 2])

    def test_out_of_range_node_rejected(self, route_db):
        with pytest.raises(QueryError):
            validate_route(route_db.view, [0, 99])

    def test_consecutive_repeat_rejected(self, route_db):
        with pytest.raises(QueryError):
            validate_route(route_db.view, [0, 0])


class TestContinuousSemantics:
    def test_union_of_node_results(self, route_db):
        # route covering the whole path: both points are reverse NNs of
        # some route node
        for method in METHODS:
            got = continuous_rknn(
                route_db.view, [0, 1, 2, 3, 4], 1, method,
                materialized=route_db.materialized,
            )
            assert got == [10, 11]

    def test_single_node_route_equals_point_query(self, route_db):
        for method in METHODS:
            route_result = continuous_rknn(
                route_db.view, [2], 1, method,
                materialized=route_db.materialized,
            )
            point_result = list(route_db.rknn(2, 1, method=method).points)
            assert route_result == point_result

    def test_route_through_point_node_collects_it(self, route_db):
        for method in METHODS:
            got = continuous_rknn(
                route_db.view, [0, 1], 1, method,
                materialized=route_db.materialized,
            )
            assert 10 in got

    def test_eager_m_requires_materialization(self, route_db):
        with pytest.raises(QueryError):
            continuous_rknn(route_db.view, [0, 1], 1, "eager-m")

    def test_unknown_method_rejected(self, route_db):
        with pytest.raises(QueryError):
            continuous_rknn(route_db.view, [0, 1], 1, "psychic")


class TestContinuousScenario:
    def test_longer_route_collects_more(self):
        # points spread along a long path: a growing route accumulates
        # reverse neighbors (the Fig. 19 intuition)
        n = 40
        graph = Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        points = NodePointSet({100 + i: 4 * i for i in range(10)})
        db = GraphDatabase(graph, points)
        sizes = []
        for length in (1, 5, 15, 30):
            route = list(range(length))
            sizes.append(len(continuous_rknn(db.view, route, 1, "eager")))
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]


class TestContinuousRandomized:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_oracle(self, seed):
        rng = random.Random(seed + 7000)
        graph = build_random_graph(rng, rng.randint(6, 24), rng.randint(0, 20))
        count = rng.randint(1, graph.num_nodes // 2)
        nodes = rng.sample(range(graph.num_nodes), count)
        points = NodePointSet({100 + i: n for i, n in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        k = rng.randint(1, 3)
        db.materialize(k + 1)
        route = [rng.randrange(graph.num_nodes)]
        for _ in range(rng.randint(0, 5)):
            options = [x for x, _ in graph.neighbors(route[-1]) if x != route[-1]]
            if not options:
                break
            route.append(rng.choice(options))
        route = [route[0]] + [b for a, b in zip(route, route[1:]) if a != b]
        want = brute_force_rknn(graph, points, [int(x) for x in route], k)
        for method in METHODS:
            got = continuous_rknn(
                db.view, route, k, method, materialized=db.materialized
            )
            assert got == want, (seed, method, route)
