"""Unit tests for network expansion (the Dijkstra generator)."""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.core.baseline import dijkstra
from repro.core.expansion import distances_from, expand_nodes
from tests.conftest import build_random_graph


def make_view(graph):
    return GraphDatabase(graph, NodePointSet({})).view


class TestExpandNodes:
    def test_ascending_order(self, path_graph):
        view = make_view(path_graph)
        dists = [dist for _, dist in expand_nodes(view, [(0, 0.0)])]
        assert dists == sorted(dists)

    def test_distances_match_dijkstra(self, path_graph):
        view = make_view(path_graph)
        expected = dijkstra(path_graph, [(0, 0.0)])
        assert distances_from(view, [(0, 0.0)]) == expected

    def test_each_node_once(self, ring_graph):
        view = make_view(ring_graph)
        nodes = [node for node, _ in expand_nodes(view, [(0, 0.0)])]
        assert sorted(nodes) == list(range(6))

    def test_max_dist_cuts_off(self, path_graph):
        view = make_view(path_graph)
        reached = distances_from(view, [(0, 0.0)], max_dist=5.0)
        assert reached == {0: 0.0, 1: 2.0, 2: 5.0}

    def test_multi_source(self, path_graph):
        view = make_view(path_graph)
        dists = distances_from(view, [(0, 0.0), (4, 0.0)])
        assert dists[2] == min(5.0, 5.0)
        assert dists[3] == 4.0

    def test_seed_offsets_respected(self, path_graph):
        view = make_view(path_graph)
        dists = distances_from(view, [(0, 1.5)])
        assert dists[0] == 1.5
        assert dists[1] == 3.5

    def test_lazy_io(self, ring_graph):
        # stopping the generator early must avoid further page reads
        view = make_view(ring_graph)
        gen = expand_nodes(view, [(0, 0.0)])
        next(gen)
        gen.close()
        assert view.tracker.nodes_visited == 1

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_match_dijkstra(self, seed):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(5, 30), rng.randint(0, 20))
        view = make_view(graph)
        source = rng.randrange(graph.num_nodes)
        assert distances_from(view, [(source, 0.0)]) == dijkstra(
            graph, [(source, 0.0)]
        )
