"""Unit tests for unrestricted networks (data points on edges)."""

import math
import random

import pytest

from repro import EdgePointSet, GraphDatabase, QueryError
from repro.core.baseline import brute_force_brknn, brute_force_knn, brute_force_rknn
from repro.core.unrestricted import (
    direct_distance,
    normalize_location,
    unrestricted_knn,
    unrestricted_range_nn,
    unrestricted_verify,
)
from repro.graph.graph import Graph
from tests.conftest import build_random_graph

METHODS = ("eager", "lazy", "eager-m", "lazy-ep")


@pytest.fixture
def road():
    """A 6-node path with weights 4, so points sit mid-edge."""
    return Graph(6, [(i, i + 1, 4.0) for i in range(5)])


@pytest.fixture
def road_points():
    # p10 on edge (0,1) at 1.0, p11 on (2,3) at 2.0, p12 on (4,5) at 3.0
    return EdgePointSet({10: (0, 1, 1.0), 11: (2, 3, 2.0), 12: (4, 5, 3.0)})


@pytest.fixture
def road_db(road, road_points):
    db = GraphDatabase(road, road_points)
    db.materialize(3)
    return db


class TestLocations:
    def test_normalize_accepts_nodes(self):
        assert normalize_location(4) == 4

    def test_normalize_rejects_reversed_edge(self):
        with pytest.raises(QueryError):
            normalize_location((3, 1, 0.5))

    def test_normalize_rejects_negative_offset(self):
        with pytest.raises(QueryError):
            normalize_location((1, 3, -0.5))

    def test_direct_distance_same_edge(self):
        assert direct_distance((0, 1, 1.0), (0, 1, 3.5)) == 2.5

    def test_direct_distance_other_edge(self):
        assert direct_distance((0, 1, 1.0), (1, 2, 0.5)) is None


class TestUnrestrictedKnn:
    def test_from_node(self, road_db):
        got = unrestricted_knn(road_db.view, 2, 2)
        assert [pid for pid, _ in got] == [11, 10]
        assert [d for _, d in got] == [2.0, 7.0]

    def test_from_edge_location(self, road_db):
        got = unrestricted_knn(road_db.view, (2, 3, 1.0), 1)
        assert got == [(11, 1.0)]

    def test_same_edge_direct_distance_used(self, road_db):
        # query on the same edge as point 10
        got = unrestricted_knn(road_db.view, (0, 1, 3.0), 1)
        assert got == [(10, 2.0)]

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_oracle(self, seed):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(5, 18), rng.randint(0, 12),
                                   int_weights=False)
        edges = list(graph.edges())
        locs = {}
        for i in range(rng.randint(1, len(edges))):
            u, v, w = edges[rng.randrange(len(edges))]
            locs[100 + i] = (u, v, rng.uniform(0, w))
        points = EdgePointSet(locs)
        db = GraphDatabase(graph, points)
        u, v, w = edges[rng.randrange(len(edges))]
        query = (u, v, rng.uniform(0, w))
        k = rng.randint(1, 3)
        got = unrestricted_knn(db.view, query, k)
        want = brute_force_knn(graph, points, query, k)
        assert [d for _, d in got] == pytest.approx([d for _, d in want])


class TestUnrestrictedRangeNn:
    def test_strict_radius(self, road_db):
        # point 11 is exactly at distance 2 from node 2
        assert unrestricted_range_nn(road_db.view, 2, 1, 2.0) == []
        assert unrestricted_range_nn(road_db.view, 2, 1, 2.5) == [(11, 2.0)]

    def test_k_limits(self, road_db):
        got = unrestricted_range_nn(road_db.view, 2, 1, 100.0)
        assert len(got) == 1

    def test_exclude(self, road_db):
        got = unrestricted_range_nn(road_db.view, 2, 1, 100.0, exclude={11})
        assert got[0][0] == 10


class TestUnrestrictedVerify:
    def test_query_wins(self, road_db):
        # point 11 at (2,3,2.0); query at (2,3,3.0): distance 1, the
        # nearest other point (10) is at 7.0
        assert unrestricted_verify(
            road_db.view, road_db.view, (2, 3, 2.0), 11, 1,
            frozenset(), (2, 3, 3.0), bound=1.0,
        )

    def test_other_point_wins(self, road_db):
        # point 12 at (4,5,3.0); query at node 0 (distance 17); point 11
        # is at distance 9: strictly closer
        assert not unrestricted_verify(
            road_db.view, road_db.view, (4, 5, 3.0), 12, 1,
            frozenset({0}), None, bound=17.0,
        )

    def test_k2_still_fails_with_two_closer(self, road_db):
        # both other points (distances 9 and 18) beat the query at 19
        assert not unrestricted_verify(
            road_db.view, road_db.view, (4, 5, 3.0), 12, 2,
            frozenset({0}), None, bound=19.0,
        )

    def test_k3_tolerates_two(self, road_db):
        assert unrestricted_verify(
            road_db.view, road_db.view, (4, 5, 3.0), 12, 3,
            frozenset({0}), None, bound=19.0,
        )

    def test_unreachable_query(self):
        graph = Graph(4, [(0, 1, 2.0), (2, 3, 2.0)])
        points = EdgePointSet({10: (0, 1, 1.0)})
        db = GraphDatabase(graph, points)
        assert not unrestricted_verify(
            db.view, db.view, (0, 1, 1.0), 10, 1,
            frozenset({3}), None, bound=math.inf,
        )


class TestUnrestrictedRknn:
    def test_simple_case_all_methods(self, road_db):
        # query mid-network; compute the oracle and compare every method
        want = brute_force_rknn(road_db.graph, road_db.points, (2, 3, 1.0), 1)
        for method in METHODS:
            got = list(road_db.rknn((2, 3, 1.0), 1, method=method).points)
            assert got == want, method

    def test_query_at_node(self, road_db):
        want = brute_force_rknn(road_db.graph, road_db.points, 0, 1)
        for method in METHODS:
            assert list(road_db.rknn(0, 1, method=method).points) == want

    def test_point_between_query_and_node(self):
        # regression for probe-only discovery: the point sits on the
        # query's edge, far side of a node with a small query distance
        graph = Graph(3, [(0, 1, 10.0), (1, 2, 1.0)])
        points = EdgePointSet({10: (0, 1, 1.0)})
        db = GraphDatabase(graph, points)
        query = (0, 1, 9.0)
        want = brute_force_rknn(graph, points, query, 1)
        assert want == [10]
        for method in METHODS[:2] + METHODS[3:]:  # no materialization here
            got = list(db.rknn(query, 1, method=method).points)
            assert got == [10], method

    def test_exclusion(self, road_db):
        got = road_db.rknn((2, 3, 2.0), 1, method="eager", exclude={11})
        assert 11 not in got.points

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_oracle_randomized(self, seed):
        rng = random.Random(seed + 600)
        graph = build_random_graph(rng, rng.randint(5, 16), rng.randint(0, 10),
                                   int_weights=False)
        edges = list(graph.edges())
        locs = {}
        for i in range(rng.randint(1, len(edges))):
            u, v, w = edges[rng.randrange(len(edges))]
            locs[100 + i] = (u, v, rng.uniform(0, w))
        points = EdgePointSet(locs)
        db = GraphDatabase(graph, points)
        k = rng.randint(1, 3)
        db.materialize(k + 1)
        if rng.random() < 0.5:
            query = rng.randrange(graph.num_nodes)
        else:
            u, v, w = edges[rng.randrange(len(edges))]
            query = (u, v, rng.uniform(0, w))
        want = brute_force_rknn(graph, points, query, k)
        for method in METHODS:
            got = list(db.rknn(query, k, method=method).points)
            assert got == want, (seed, method)


class TestUnrestrictedBichromatic:
    def test_scenario(self, road):
        blocks = EdgePointSet({1: (0, 1, 2.0), 2: (2, 3, 1.0)})
        rivals = EdgePointSet({100: (4, 5, 1.0)})
        db = GraphDatabase(road, blocks)
        db.attach_reference(rivals)
        query = (1, 2, 2.0)
        want = brute_force_brknn(road, blocks, rivals, query, 1)
        got = list(db.bichromatic_rknn(query, 1).points)
        assert got == want

    def test_only_eager_supported(self, road):
        db = GraphDatabase(road, EdgePointSet({1: (0, 1, 2.0)}))
        db.attach_reference(EdgePointSet({100: (4, 5, 1.0)}))
        with pytest.raises(QueryError):
            db.bichromatic_rknn((1, 2, 2.0), 1, method="lazy")

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_oracle_randomized(self, seed):
        rng = random.Random(seed + 820)
        graph = build_random_graph(rng, rng.randint(5, 14), rng.randint(0, 8),
                                   int_weights=False)
        edges = list(graph.edges())

        def scatter(count, base):
            locs = {}
            for i in range(count):
                u, v, w = edges[rng.randrange(len(edges))]
                locs[base + i] = (u, v, rng.uniform(0, w))
            return EdgePointSet(locs)

        data = scatter(rng.randint(1, 6), 100)
        refs = scatter(rng.randint(1, 4), 500)
        db = GraphDatabase(graph, data)
        db.attach_reference(refs)
        u, v, w = edges[rng.randrange(len(edges))]
        query = (u, v, rng.uniform(0, w))
        k = rng.randint(1, 2)
        want = brute_force_brknn(graph, data, refs, query, k)
        assert list(db.bichromatic_rknn(query, k).points) == want
