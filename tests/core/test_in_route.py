"""Tests for in-route nearest-neighbor queries ([16])."""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.core.in_route import in_route_knn, in_route_nn_ids
from repro.datasets.workload import random_route
from repro.errors import QueryError
from repro.graph.graph import Graph
from tests.conftest import build_random_graph


class TestValidation:
    def test_empty_route_rejected(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 0}))
        with pytest.raises(QueryError):
            in_route_knn(db.view, [], 1)

    def test_bad_k_rejected(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 0}))
        with pytest.raises(QueryError):
            in_route_knn(db.view, [0, 1], 0)

    def test_out_of_range_node_rejected(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 0}))
        with pytest.raises(QueryError):
            in_route_knn(db.view, [0, 99], 1)

    def test_non_adjacent_hop_rejected(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 0}))
        with pytest.raises(QueryError):
            in_route_nn_ids(db.view, [0, 3], 1)


class TestExactLists:
    def test_each_stop_gets_its_own_neighbors(self, path_graph):
        # path 0 -2- 1 -3- 2 -1- 3 -4- 4; points at nodes 0 and 4
        db = GraphDatabase(path_graph, NodePointSet({10: 0, 11: 4}))
        stops = in_route_knn(db.view, [1, 2, 3], 1)
        assert stops[0] == (1, [(10, 2.0)])
        node, neighbors = stops[1]          # node 2 ties: d=5 both ways
        assert node == 2 and neighbors[0][1] == 5.0
        assert stops[2] == (3, [(11, 4.0)])

    def test_point_on_route_node(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 1}))
        stops = in_route_knn(db.view, [0, 1], 1)
        assert stops[1] == (1, [(10, 0.0)])

    def test_k_exceeding_point_count(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 1}))
        stops = in_route_knn(db.view, [0, 1], k=3)
        assert all(len(neighbors) == 1 for _, neighbors in stops)

    def test_exclusion(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 1, 11: 4}))
        stops = in_route_knn(db.view, [0, 1], 1, exclude={10})
        assert all(pid == 11 for _, nbrs in stops for pid, _ in nbrs)

    def test_repeated_route_nodes_served_from_cache(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 3}))
        before = db.tracker.range_nn_calls
        stops = in_route_knn(db.view, [0, 1, 0, 1], 1)
        assert stops[0] == stops[2]
        assert stops[1] == stops[3]
        assert db.tracker.range_nn_calls - before == 2  # two distinct nodes

    def test_no_points_yields_empty_lists(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        stops = in_route_knn(db.view, [0, 1, 2], 2)
        assert all(neighbors == [] for _, neighbors in stops)


class TestCertifiedIdentitySets:
    def test_matches_exact_lists_on_random_routes(self):
        for seed in range(15):
            rng = random.Random(seed)
            graph = build_random_graph(rng, rng.randint(8, 30),
                                       rng.randint(5, 30))
            count = rng.randint(1, graph.num_nodes // 2)
            nodes = rng.sample(range(graph.num_nodes), count)
            points = NodePointSet({100 + i: n for i, n in enumerate(nodes)})
            db = GraphDatabase(graph, points)
            route = random_route(graph, length=rng.randint(2, 8), seed=seed)
            k = rng.randint(1, 3)
            exact = in_route_knn(db.view, route, k)
            ids = in_route_nn_ids(db.view, route, k)
            for (node_a, neighbors), (node_b, id_set) in zip(exact, ids):
                assert node_a == node_b
                exact_dists = [d for _, d in neighbors]
                id_dists = sorted(
                    db.network_distance(points.node_of(pid), node_a)
                    for pid in id_set
                )
                # the id set must realize the same distance multiset
                # (tie sets may pick different representatives)
                assert len(id_set) == len(neighbors)
                assert id_dists == pytest.approx(exact_dists)

    def test_certification_skips_expansions(self):
        # a long path with one far-away point pair: the margin is huge,
        # so the whole route is answered from a single anchor
        n = 60
        graph = Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        db = GraphDatabase(graph, NodePointSet({10: 0, 11: 59}))
        before = db.tracker.range_nn_calls
        stops = in_route_nn_ids(db.view, list(range(0, 20)), 1)
        calls = db.tracker.range_nn_calls - before
        assert all(ids == frozenset({10}) for _, ids in stops)
        # anchored once at node 0; margin = d(11) - d(10) = 59, route
        # walks 19 < 59/2 more hops, so no re-anchor is needed
        assert calls == 1

    def test_reanchors_when_certificate_expires(self):
        n = 60
        graph = Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        db = GraphDatabase(graph, NodePointSet({10: 0, 11: 59}))
        stops = in_route_nn_ids(db.view, list(range(0, 50)), 1)
        # early nodes belong to 10, late ones to 11
        assert stops[0][1] == frozenset({10})
        assert stops[-1][1] == frozenset({11})

    def test_fewer_points_than_k_is_stable(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 2}))
        before = db.tracker.range_nn_calls
        stops = in_route_nn_ids(db.view, [0, 1, 2, 3], k=4)
        calls = db.tracker.range_nn_calls - before
        assert all(ids == frozenset({10}) for _, ids in stops)
        assert calls == 1  # infinite margin: one anchor serves the route

    def test_empty_point_set(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        stops = in_route_nn_ids(db.view, [0, 1], 2)
        assert all(ids == frozenset() for _, ids in stops)


class TestRouteHelperCompat:
    def test_route_from_workload_generator_is_accepted(self):
        rng = random.Random(5)
        graph = build_random_graph(rng, 25, 30)
        db = GraphDatabase(graph, NodePointSet({50: 3}))
        route = random_route(graph, length=6, seed=2)
        stops = in_route_knn(db.view, route, 1)
        assert len(stops) == len(route)
