"""Unit tests for the brute-force oracle itself."""

import math


from repro import EdgePointSet, NodePointSet
from repro.core.baseline import (
    brute_force_brknn,
    brute_force_knn,
    brute_force_rknn,
    dijkstra,
    direct_distance,
    location_distance,
    location_seeds,
)
from repro.graph.graph import Graph


class TestDijkstra:
    def test_path_distances(self, path_graph):
        dists = dijkstra(path_graph, [(0, 0.0)])
        assert dists == {0: 0.0, 1: 2.0, 2: 5.0, 3: 6.0, 4: 10.0}

    def test_cutoff(self, path_graph):
        dists = dijkstra(path_graph, [(0, 0.0)], cutoff=5.0)
        assert set(dists) == {0, 1, 2}

    def test_multi_seed(self, path_graph):
        dists = dijkstra(path_graph, [(0, 0.0), (4, 0.0)])
        assert dists[3] == 4.0

    def test_unreachable_absent(self):
        graph = Graph(3, [(0, 1, 1.0)])
        assert 2 not in dijkstra(graph, [(0, 0.0)])


class TestLocationHelpers:
    def test_node_seeds(self, path_graph):
        assert location_seeds(path_graph, 3) == [(3, 0.0)]

    def test_edge_seeds(self, path_graph):
        assert location_seeds(path_graph, (1, 2, 1.0)) == [(1, 1.0), (2, 2.0)]

    def test_direct_distance(self):
        assert direct_distance((0, 1, 0.5), (0, 1, 2.0)) == 1.5
        assert direct_distance((0, 1, 0.5), (1, 2, 2.0)) is None
        assert direct_distance(0, (0, 1, 0.5)) is None

    def test_location_distance_node_to_node(self, path_graph):
        assert location_distance(path_graph, 0, 4) == 10.0

    def test_location_distance_edge_to_edge(self, path_graph):
        # (0,1)@1.0 to (3,4)@2.0: 1 -> 3 costs 4, plus offsets 1 and 2
        assert location_distance(path_graph, (0, 1, 1.0), (3, 4, 2.0)) == 1.0 + 4.0 + 2.0

    def test_location_distance_same_edge_direct(self, path_graph):
        assert location_distance(path_graph, (3, 4, 0.5), (3, 4, 3.5)) == 3.0

    def test_location_distance_unreachable(self):
        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        assert math.isinf(location_distance(graph, 0, 3))


class TestBruteForceRknn:
    def test_simple_membership(self, path_graph):
        points = NodePointSet({10: 0, 11: 4})
        assert brute_force_rknn(path_graph, points, 2, 1) == [10, 11]

    def test_closer_point_disqualifies(self):
        graph = Graph(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        points = NodePointSet({10: 0, 11: 1})
        # from node 3: point 11 has 10 at distance 1 < its query distance
        assert brute_force_rknn(graph, points, 3, 1) == []
        assert brute_force_rknn(graph, points, 3, 2) == [10, 11]

    def test_exclusion(self, path_graph):
        points = NodePointSet({10: 0, 11: 2})
        assert brute_force_rknn(path_graph, points, 2, 1, exclude={11}) == [10]

    def test_unreachable_point_ignored(self):
        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        points = NodePointSet({10: 0, 11: 3})
        assert brute_force_rknn(graph, points, 1, 1) == [10]

    def test_route_query(self, path_graph):
        points = NodePointSet({10: 0, 11: 4})
        assert brute_force_rknn(path_graph, points, [1, 2], 1) == [10, 11]

    def test_edge_points(self, path_graph):
        points = EdgePointSet({10: (0, 1, 0.5), 11: (3, 4, 2.0)})
        assert brute_force_rknn(path_graph, points, 2, 1) == [10, 11]


class TestBruteForceBichromatic:
    def test_reference_beats_query(self):
        graph = Graph(4, [(i, i + 1, 1.0) for i in range(3)])
        data = NodePointSet({1: 0})
        refs = NodePointSet({100: 1})
        # query at 3: ref at distance 1 from the data point beats 3
        assert brute_force_brknn(graph, data, refs, 3, 1) == []
        assert brute_force_brknn(graph, data, refs, 1, 1) == [1]

    def test_data_points_do_not_compete(self):
        graph = Graph(4, [(i, i + 1, 1.0) for i in range(3)])
        data = NodePointSet({1: 0, 2: 1})
        refs = NodePointSet({})
        assert brute_force_brknn(graph, data, refs, 3, 1) == [1, 2]


class TestBruteForceKnn:
    def test_order(self, path_graph):
        points = NodePointSet({10: 0, 11: 2, 12: 4})
        got = brute_force_knn(path_graph, points, 1, 2)
        assert got == [(10, 2.0), (11, 3.0)]

    def test_edge_source(self, path_graph):
        points = NodePointSet({10: 0, 11: 4})
        got = brute_force_knn(path_graph, points, (1, 2, 1.5), 1)
        assert got == [(10, 3.5)]
