"""Unit tests for the floating-point tie discipline."""

import math

from repro.core.numeric import EPS, inflate_bound, strictly_less, tie_threshold


class TestStrictlyLess:
    def test_clear_cases(self):
        assert strictly_less(1.0, 2.0)
        assert not strictly_less(2.0, 1.0)
        assert not strictly_less(1.0, 1.0)

    def test_ulp_noise_treated_as_tie(self):
        a = 0.1 + 0.2
        b = 0.3
        assert not strictly_less(min(a, b), max(a, b))

    def test_guard_scales_with_magnitude(self):
        big = 1e12
        assert not strictly_less(big, big * (1 + EPS / 2))
        assert strictly_less(big, big * (1 + 10 * EPS))

    def test_genuine_small_difference_below_guard_is_tie(self):
        assert not strictly_less(1.0, 1.0 + EPS / 10)


class TestInflateBound:
    def test_padding_covers_equal_values(self):
        bound = 0.1 + 0.2
        assert 0.3 <= inflate_bound(bound)

    def test_infinite_bound_unchanged(self):
        assert math.isinf(inflate_bound(math.inf))

    def test_monotone(self):
        assert inflate_bound(5.0) > 5.0


class TestTieThreshold:
    def test_bisect_semantics(self):
        from bisect import bisect_left

        dists = [1.0, 2.0, 3.0]
        # entries strictly below 2.0 (with guard): just the 1.0
        assert bisect_left(dists, tie_threshold(2.0)) == 1
        # entries strictly below 3.5: all three
        assert bisect_left(dists, tie_threshold(3.5)) == 3

    def test_infinite_value(self):
        assert math.isinf(tie_threshold(math.inf))
