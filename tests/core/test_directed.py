"""Tests for the directed-network extension (paper Section 7)."""

import random

import pytest

from repro import DiGraph, DirectedGraphDatabase, NodePointSet, QueryError
from repro.core.directed import (
    brute_force_directed_rknn,
    directed_knn,
    directed_range_nn,
    directed_verify,
)
from repro.graph.graph import Graph

METHODS = ("eager", "eager-m", "naive")


def random_digraph(rng, num_nodes, extra_arcs):
    """A digraph with a directed cycle backbone (keeps it strongly
    connected) plus random extra arcs."""
    arcs = {}
    for node in range(num_nodes):
        arcs[(node, (node + 1) % num_nodes)] = float(rng.randint(1, 9))
    for _ in range(extra_arcs):
        u, v = rng.sample(range(num_nodes), 2)
        if (u, v) not in arcs:
            arcs[(u, v)] = float(rng.randint(1, 9))
    return DiGraph(num_nodes, [(u, v, w) for (u, v), w in arcs.items()])


@pytest.fixture
def one_way_ring():
    """Four nodes on a one-way ring: 0 -> 1 -> 2 -> 3 -> 0 (weight 1)."""
    return DiGraph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])


class TestDiGraph:
    def test_basic_accessors(self, one_way_ring):
        g = one_way_ring
        assert g.num_nodes == 4
        assert g.num_arcs == 4
        assert g.out_neighbors(0) == [(1, 1.0)]
        assert g.in_neighbors(0) == [(3, 1.0)]
        assert g.weight(0, 1) == 1.0
        assert not g.has_arc(1, 0)

    def test_asymmetric_rejects_duplicate_not_reverse(self):
        DiGraph(2, [(0, 1, 1.0), (1, 0, 2.0)])  # both directions fine
        with pytest.raises(Exception):
            DiGraph(2, [(0, 1, 1.0), (0, 1, 2.0)])

    def test_from_undirected(self, path_graph):
        g = DiGraph.from_undirected(path_graph)
        assert g.num_arcs == 2 * path_graph.num_edges
        assert g.weight(0, 1) == g.weight(1, 0)

    def test_reverse(self, one_way_ring):
        rev = one_way_ring.reverse()
        assert rev.has_arc(1, 0)
        assert not rev.has_arc(0, 1)

    def test_strong_connectivity(self, one_way_ring):
        assert one_way_ring.is_strongly_connected()
        dag = DiGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        assert not dag.is_strongly_connected()

    def test_reachable_from(self):
        dag = DiGraph(4, [(0, 1, 1.0), (1, 2, 1.0)])
        assert dag.reachable_from(0) == {0, 1, 2}
        assert dag.reachable_from(3) == {3}


class TestDirectedPrimitives:
    @pytest.fixture
    def db(self, one_way_ring):
        return DirectedGraphDatabase(one_way_ring, NodePointSet({10: 1, 11: 3}))

    def test_forward_knn_follows_arc_direction(self, db):
        # from node 0: point 10 (node 1) at 1, point 11 (node 3) at 3
        assert db.knn(0, 2).neighbors == ((10, 1.0), (11, 3.0))
        # from node 2: point 11 at 1, point 10 at 3 (around the ring)
        assert db.knn(2, 2).neighbors == ((11, 1.0), (10, 3.0))

    def test_range_nn_strict(self, db):
        assert directed_range_nn(db.view, 0, 2, 1.0) == []
        assert directed_range_nn(db.view, 0, 2, 1.5) == [(10, 1.0)]

    def test_verify_uses_forward_distance(self, db):
        # point 10 at node 1; query at node 2: d(10 -> 2) = 1 while the
        # other point is at d(10 -> 3) = 2: the query wins
        assert directed_verify(db.view, 10, 1, 2, bound=1.0)
        # query at node 0: d(10 -> 0) = 3 > d(10 -> 3) = 2: it loses
        assert not directed_verify(db.view, 10, 1, 0, bound=3.0)


class TestDirectedRknn:
    def test_one_way_asymmetry(self, one_way_ring):
        db = DirectedGraphDatabase(one_way_ring, NodePointSet({10: 1, 11: 3}))
        # query at node 2: 10 reaches it in 1 (vs 2 to the other point),
        # 11 needs 3 (vs 2 to reach 10): only 10 qualifies
        want = brute_force_directed_rknn(db.graph, db.points, 2, 1)
        assert want == [10]
        db.materialize(2)
        for method in METHODS:
            assert list(db.rknn(2, 1, method=method).points) == want

    def test_direction_matters(self):
        # undirected reading of the same network gives a different answer
        arcs = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]
        directed = DirectedGraphDatabase(
            DiGraph(4, arcs), NodePointSet({10: 1, 11: 3})
        )
        undirected = Graph(4, arcs)
        from repro import GraphDatabase
        from repro.core.baseline import brute_force_rknn

        undirected_db = GraphDatabase(undirected, NodePointSet({10: 1, 11: 3}))
        d_result = list(directed.rknn(2, 1).points)
        u_result = list(undirected_db.rknn(2, 1).points)
        assert d_result == [10]
        assert u_result == brute_force_rknn(undirected, undirected_db.points, 2, 1)
        assert d_result != u_result

    def test_unreachable_points_never_qualify(self):
        dag = DiGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        db = DirectedGraphDatabase(dag, NodePointSet({10: 2}))
        # point 10 at the sink cannot reach node 0
        assert db.rknn(0, 1).points == ()
        # but the query at the sink is reachable from the point upstream
        db2 = DirectedGraphDatabase(dag, NodePointSet({10: 0}))
        assert db2.rknn(2, 1).points == (10,)

    def test_k2(self, one_way_ring):
        db = DirectedGraphDatabase(one_way_ring, NodePointSet({10: 1, 11: 3}))
        db.materialize(3)
        want = brute_force_directed_rknn(db.graph, db.points, 2, 2)
        for method in METHODS:
            assert list(db.rknn(2, 2, method=method).points) == want

    def test_validation(self, one_way_ring):
        db = DirectedGraphDatabase(one_way_ring, NodePointSet({10: 1}))
        with pytest.raises(QueryError):
            db.rknn(0, 1, method="lazy")  # not available on digraphs
        with pytest.raises(QueryError):
            db.rknn(0, 0)
        with pytest.raises(QueryError):
            db.rknn(99, 1)
        with pytest.raises(QueryError):
            db.rknn(0, 1, method="eager-m")  # not materialized

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_oracle_randomized(self, seed):
        rng = random.Random(seed)
        graph = random_digraph(rng, rng.randint(4, 20), rng.randint(0, 25))
        count = rng.randint(1, graph.num_nodes // 2)
        nodes = rng.sample(range(graph.num_nodes), count)
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = DirectedGraphDatabase(graph, points)
        k = rng.randint(1, 3)
        db.materialize(k + 1)
        query = rng.randrange(graph.num_nodes)
        exclude = frozenset()
        coincident = points.point_at(query)
        if coincident is not None and rng.random() < 0.5:
            exclude = frozenset({coincident})
        want = brute_force_directed_rknn(graph, points, query, k, exclude)
        for method in METHODS:
            got = list(db.rknn(query, k, method=method, exclude=exclude).points)
            assert got == want, (seed, method)

    def test_eager_prunes_vs_naive(self):
        rng = random.Random(99)
        graph = random_digraph(rng, 300, 900)
        nodes = rng.sample(range(300), 30)
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = DirectedGraphDatabase(graph, points)
        db.reset_stats()
        db.rknn(0, 1, method="eager")
        eager_visited = db.tracker.nodes_visited
        db.reset_stats()
        db.rknn(0, 1, method="naive")
        naive_visited = db.tracker.nodes_visited
        # naive sweeps the whole backward-reachable set; eager prunes
        assert naive_visited >= 300


class TestDirectedMaterializationMaintenance:
    def reference_lists(self, graph, points, capacity):
        import heapq

        lists = {}
        # forward distances from every node via per-point backward search
        per_point = {}
        for pid, node in points.items():
            dists = {}
            heap = [(0.0, node)]
            while heap:
                dist, current = heapq.heappop(heap)
                if current in dists:
                    continue
                dists[current] = dist
                for nbr, weight in graph.in_neighbors(current):
                    if nbr not in dists:
                        heapq.heappush(heap, (dist + weight, nbr))
            per_point[pid] = dists
        for node in graph.nodes():
            ranked = sorted(
                (dists[node], pid)
                for pid, dists in per_point.items()
                if node in dists
            )
            lists[node] = [(pid, dist) for dist, pid in ranked[:capacity]]
        return lists

    def assert_equivalent(self, db, want):
        for node in db.graph.nodes():
            got = [d for _, d in db.materialized.get(node)]
            expected = [d for _, d in want[node]]
            assert got == pytest.approx(expected), node

    def test_all_nn_matches_reference(self):
        rng = random.Random(5)
        graph = random_digraph(rng, 15, 20)
        points = NodePointSet({100: 0, 101: 7, 102: 11})
        db = DirectedGraphDatabase(graph, points)
        db.materialize(2)
        self.assert_equivalent(db, self.reference_lists(graph, points, 2))

    @pytest.mark.parametrize("seed", range(8))
    def test_insert_equals_rebuild(self, seed):
        rng = random.Random(seed + 50)
        graph = random_digraph(rng, rng.randint(6, 16), rng.randint(0, 20))
        nodes = rng.sample(range(graph.num_nodes), 3)
        points = NodePointSet({100: nodes[0], 101: nodes[1]})
        db = DirectedGraphDatabase(graph, points)
        db.materialize(2)
        db.insert_point(102, nodes[2])
        want = self.reference_lists(
            graph, NodePointSet({100: nodes[0], 101: nodes[1], 102: nodes[2]}), 2
        )
        self.assert_equivalent(db, want)

    @pytest.mark.parametrize("seed", range(8))
    def test_delete_equals_rebuild(self, seed):
        rng = random.Random(seed + 90)
        graph = random_digraph(rng, rng.randint(6, 16), rng.randint(0, 20))
        count = rng.randint(2, graph.num_nodes // 2)
        nodes = rng.sample(range(graph.num_nodes), count)
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = DirectedGraphDatabase(graph, points)
        db.materialize(2)
        victim = 100 + rng.randrange(count)
        db.delete_point(victim)
        want = self.reference_lists(graph, points.without_point(victim), 2)
        self.assert_equivalent(db, want)
