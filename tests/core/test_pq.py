"""Unit tests for the counting and invalidatable heaps."""

from repro.core.pq import CountingHeap, InvalidatableHeap
from repro.storage.stats import CostTracker


class TestCountingHeap:
    def test_orders_by_distance(self):
        heap = CountingHeap()
        for dist in (5.0, 1.0, 3.0):
            heap.push(dist, f"n{dist}")
        assert [heap.pop()[0] for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_ties_fifo(self):
        heap = CountingHeap()
        heap.push(1.0, "first")
        heap.push(1.0, "second")
        assert heap.pop()[1] == "first"
        assert heap.pop()[1] == "second"

    def test_unorderable_payloads_ok(self):
        heap = CountingHeap()
        heap.push(1.0, {"a": 1})
        heap.push(1.0, {"b": 2})
        heap.pop()
        heap.pop()

    def test_counts_operations(self):
        tracker = CostTracker()
        heap = CountingHeap(tracker)
        heap.push(1.0, None)
        heap.push(2.0, None)
        heap.pop()
        assert tracker.heap_pushes == 2
        assert tracker.heap_pops == 1

    def test_peek_distance(self):
        heap = CountingHeap()
        heap.push(7.0, "x")
        heap.push(2.0, "y")
        assert heap.peek_distance() == 2.0
        assert len(heap) == 2


class TestInvalidatableHeap:
    def test_pop_skips_invalidated(self):
        heap = InvalidatableHeap()
        kept = heap.push(2.0, "keep")
        dead = heap.push(1.0, "dead")
        heap.invalidate(dead)
        dist, entry_id, payload = heap.pop()
        assert payload == "keep"
        assert entry_id == kept
        assert dist == 2.0

    def test_len_reflects_live_entries(self):
        heap = InvalidatableHeap()
        ids = [heap.push(float(i), i) for i in range(4)]
        heap.invalidate(ids[0])
        heap.invalidate(ids[2])
        assert len(heap) == 2

    def test_invalidate_popped_entry_is_noop(self):
        heap = InvalidatableHeap()
        first = heap.push(1.0, "a")
        heap.push(2.0, "b")
        heap.pop()
        heap.invalidate(first)  # already popped: must not corrupt state
        assert len(heap) == 1
        assert heap.pop()[2] == "b"

    def test_double_invalidate_is_noop(self):
        heap = InvalidatableHeap()
        entry = heap.push(1.0, "a")
        heap.push(2.0, "b")
        heap.invalidate(entry)
        heap.invalidate(entry)
        assert len(heap) == 1

    def test_bool_after_all_invalidated(self):
        heap = InvalidatableHeap()
        entry = heap.push(1.0, "a")
        heap.invalidate(entry)
        assert not heap

    def test_peek_skips_dead(self):
        heap = InvalidatableHeap()
        dead = heap.push(1.0, "dead")
        heap.push(5.0, "live")
        heap.invalidate(dead)
        assert heap.peek_distance() == 5.0

    def test_drain(self):
        heap = InvalidatableHeap()
        for i in range(3):
            heap.push(float(i), i)
        assert [payload for _, _, payload in heap.drain()] == [0, 1, 2]
