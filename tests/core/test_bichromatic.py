"""Unit tests for bichromatic RkNN queries (restricted networks)."""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.core.baseline import brute_force_brknn
from repro.graph.graph import Graph
from tests.conftest import build_random_graph

METHODS = ("eager", "lazy", "eager-m")


def restaurant_scene():
    """A Fig. 1b-like scenario on a path.

    blocks (P):      p1@0   p2@2     p3@5
    restaurants (Q):     q1@1        rival@6
    query: new restaurant at node 3.
    """
    graph = Graph(7, [(i, i + 1, 1.0) for i in range(6)])
    blocks = NodePointSet({1: 0, 2: 2, 3: 5})
    rivals = NodePointSet({100: 1, 101: 6})
    return graph, blocks, rivals


@pytest.fixture
def scene_db():
    graph, blocks, rivals = restaurant_scene()
    db = GraphDatabase(graph, blocks)
    db.attach_reference(rivals)
    db.materialize_reference(3)
    return db


class TestBichromaticScenario:
    def test_brnn_of_new_restaurant(self, scene_db):
        # block p2@2: query at distance 1 vs q1 at distance 1 (tie -> query
        # wins); p3@5: rival at 1 beats query at 2; p1@0: q1 at 1 beats 3.
        for method in METHODS:
            assert scene_db.bichromatic_rknn(3, 1, method=method).points == (2,)

    def test_br2nn(self, scene_db):
        for method in METHODS:
            assert scene_db.bichromatic_rknn(3, 2, method=method).points == (1, 2, 3)

    def test_query_on_rival_node(self, scene_db):
        # querying from the rival's own node while hiding the rival
        for method in METHODS:
            got = scene_db.bichromatic_rknn(6, 1, method=method, exclude={101})
            assert got.points == (3,)

    def test_matches_oracle(self, scene_db):
        graph, blocks, rivals = restaurant_scene()
        for query in range(graph.num_nodes):
            want = brute_force_brknn(graph, blocks, rivals, query, 1)
            for method in METHODS:
                got = list(scene_db.bichromatic_rknn(query, 1, method=method).points)
                assert got == want, (query, method)


class TestBichromaticEdgeCases:
    def test_empty_reference_set_everything_qualifies(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({1: 0, 2: 4}))
        db.attach_reference(NodePointSet({}))
        for method in ("eager", "lazy"):
            assert db.bichromatic_rknn(2, 1, method=method).points == (1, 2)

    def test_empty_data_set_empty_result(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({}))
        db.attach_reference(NodePointSet({100: 0}))
        assert db.bichromatic_rknn(2, 1).points == ()

    def test_reference_on_query_node_never_strictly_closer(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({1: 0, 2: 4}))
        db.attach_reference(NodePointSet({100: 2}))
        # the only rival sits exactly on the query: ties favor the query
        assert db.bichromatic_rknn(2, 1).points == (1, 2)


class TestBichromaticRandomized:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_oracle(self, seed):
        rng = random.Random(seed + 4000)
        graph = build_random_graph(rng, rng.randint(6, 24), rng.randint(0, 20))
        p_nodes = rng.sample(range(graph.num_nodes), rng.randint(1, graph.num_nodes // 2))
        q_pool = [n for n in range(graph.num_nodes) if n not in set(p_nodes)]
        q_nodes = rng.sample(q_pool, rng.randint(1, max(1, len(q_pool) // 2)))
        data = NodePointSet({100 + i: n for i, n in enumerate(p_nodes)})
        refs = NodePointSet({500 + i: n for i, n in enumerate(q_nodes)})
        db = GraphDatabase(graph, data)
        db.attach_reference(refs)
        k = rng.randint(1, 3)
        db.materialize_reference(k + 1)
        query = rng.randrange(graph.num_nodes)
        want = brute_force_brknn(graph, data, refs, query, k)
        for method in METHODS:
            got = list(db.bichromatic_rknn(query, k, method=method).points)
            assert got == want, (seed, method)
