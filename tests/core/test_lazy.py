"""Unit tests for the lazy RkNN algorithm."""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.core.baseline import brute_force_rknn
from repro.core.eager import eager_rknn
from repro.core.lazy import lazy_rknn
from repro.graph.graph import Graph
from tests.conftest import build_random_graph


class TestLazyBasics:
    def test_running_example(self, p2p_db):
        assert lazy_rknn(p2p_db.view, 2, 1) == [1, 2, 3]

    def test_empty_result(self, p2p_db):
        assert lazy_rknn(p2p_db.view, 4, 1) == []

    def test_k2(self, p2p_db):
        assert lazy_rknn(p2p_db.view, 4, 2) == [1]

    def test_exclusion(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({10: 2, 11: 4}))
        assert lazy_rknn(db.view, 2, 1, exclude={10}) == [11]

    def test_agrees_with_eager(self, p2p_db):
        for query in range(p2p_db.graph.num_nodes):
            for k in (1, 2, 3):
                assert lazy_rknn(p2p_db.view, query, k) == eager_rknn(
                    p2p_db.view, query, k
                )


class TestLazyPruning:
    def test_verification_invalidates_heap_entries(self):
        # Fig. 5/6 scenario: the verification of the first discovered
        # point visits nodes the main expansion would otherwise expand.
        # After the fix the traversal must stay local.
        n = 60
        graph = Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        db = GraphDatabase(graph, NodePointSet({10: 28, 11: 34}))
        result = lazy_rknn(db.view, 30, 1)
        assert result == [10, 11]
        assert db.tracker.nodes_visited < n

    def test_point_node_stops_expansion_for_k1(self):
        # beyond a data point, every node is closer to it than to q
        n = 30
        graph = Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        db = GraphDatabase(graph, NodePointSet({10: 5}))
        lazy_rknn(db.view, 0, 1)
        # nodes far beyond the point (e.g. 20+) must never be de-heaped
        assert db.tracker.nodes_visited < 20

    def test_k2_expands_past_single_point(self):
        n = 30
        graph = Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        db = GraphDatabase(graph, NodePointSet({10: 5, 11: 8}))
        assert lazy_rknn(db.view, 0, 2) == [10, 11]


class TestLazyRandomized:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_oracle(self, seed):
        rng = random.Random(seed + 1000)
        graph = build_random_graph(rng, rng.randint(5, 30), rng.randint(0, 25))
        count = rng.randint(1, graph.num_nodes // 2)
        nodes = rng.sample(range(graph.num_nodes), count)
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        query = rng.randrange(graph.num_nodes)
        k = rng.randint(1, 3)
        assert lazy_rknn(db.view, query, k) == brute_force_rknn(
            graph, points, query, k
        )
