"""Unit tests for lazy-EP (extended pruning with the parallel heap)."""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.core.baseline import brute_force_rknn
from repro.core.lazy import lazy_rknn
from repro.core.lazy_ep import lazy_ep_rknn
from repro.graph.graph import Graph
from tests.conftest import build_random_graph


class TestLazyEpBasics:
    def test_running_example(self, p2p_db):
        assert lazy_ep_rknn(p2p_db.view, 2, 1) == [1, 2, 3]

    def test_empty_result(self, p2p_db):
        assert lazy_ep_rknn(p2p_db.view, 4, 1) == []

    def test_k2(self, p2p_db):
        assert lazy_ep_rknn(p2p_db.view, 4, 2) == [1]

    def test_exclusion(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({10: 2, 11: 4}))
        assert lazy_ep_rknn(db.view, 2, 1, exclude={10}) == [11]


class TestExtendedPruning:
    def fig12_like(self):
        """A discovered point whose verification prunes nothing, but
        whose parallel expansion cuts the main traversal (Fig. 12):
        q -1- p1 -2- hub -1- long tail..."""
        n = 40
        edges = [(0, 1, 1.0), (1, 2, 2.0)]
        edges += [(i, i + 1, 1.0) for i in range(2, n - 1)]
        graph = Graph(n, edges)
        points = NodePointSet({10: 1})
        return graph, points

    def test_prunes_beyond_discovered_point(self):
        graph, points = self.fig12_like()
        db_ep = GraphDatabase(graph, points)
        result = lazy_ep_rknn(db_ep.view, 0, 1)
        assert result == [10]
        visited_ep = db_ep.tracker.nodes_visited
        assert visited_ep < graph.num_nodes  # tail never traversed

    def test_not_worse_than_lazy_on_result(self):
        graph, points = self.fig12_like()
        db = GraphDatabase(graph, points)
        assert lazy_ep_rknn(db.view, 0, 1) == lazy_rknn(db.view, 0, 1)

    def test_pruning_points_still_verified(self):
        # a point can prune the path to its own node; it must still be
        # reported when it qualifies (regression for the H'-discovery fix)
        edges = [(0, 1, 4.0), (1, 2, 5.0), (1, 3, 5.0), (2, 4, 1.0),
                 (3, 4, 1.0), (4, 5, 1.0)]
        graph = Graph(6, edges)
        points = NodePointSet({10: 4, 11: 5})
        db = GraphDatabase(graph, points)
        want = brute_force_rknn(graph, points, 0, 2)
        assert lazy_ep_rknn(db.view, 0, 2) == want


class TestLazyEpRandomized:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_oracle(self, seed):
        rng = random.Random(seed + 2000)
        graph = build_random_graph(rng, rng.randint(5, 30), rng.randint(0, 25))
        count = rng.randint(1, graph.num_nodes // 2)
        nodes = rng.sample(range(graph.num_nodes), count)
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        query = rng.randrange(graph.num_nodes)
        k = rng.randint(1, 3)
        assert lazy_ep_rknn(db.view, query, k) == brute_force_rknn(
            graph, points, query, k
        )
