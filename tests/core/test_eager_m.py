"""Unit tests for eager-M (materialized K-NN lists)."""

import random

import pytest

from repro import GraphDatabase, NodePointSet, QueryError
from repro.core.baseline import brute_force_rknn
from repro.core.eager import eager_rknn
from repro.core.eager_m import eager_m_rknn
from tests.conftest import build_random_graph


@pytest.fixture
def mat_db(p2p_graph, p2p_points):
    db = GraphDatabase(p2p_graph, p2p_points)
    db.materialize(3)
    return db


class TestEagerMBasics:
    def test_running_example(self, mat_db):
        assert eager_m_rknn(mat_db.view, mat_db.materialized, 2, 1) == [1, 2, 3]

    def test_empty_result(self, mat_db):
        assert eager_m_rknn(mat_db.view, mat_db.materialized, 4, 1) == []

    def test_k2(self, mat_db):
        assert eager_m_rknn(mat_db.view, mat_db.materialized, 4, 2) == [1]

    def test_k_beyond_capacity_rejected(self, mat_db):
        with pytest.raises(QueryError):
            eager_m_rknn(mat_db.view, mat_db.materialized, 4, 9)

    def test_agrees_with_eager_everywhere(self, mat_db):
        for query in range(mat_db.graph.num_nodes):
            for k in (1, 2):
                assert eager_m_rknn(
                    mat_db.view, mat_db.materialized, query, k
                ) == eager_rknn(mat_db.view, query, k)

    def test_exclusion_with_spare_capacity(self, path_graph):
        # K = k + 1 leaves room for the excluded point in the lists
        db = GraphDatabase(path_graph, NodePointSet({10: 2, 11: 4}))
        db.materialize(2)
        assert eager_m_rknn(db.view, db.materialized, 2, 1, exclude={10}) == [11]


class TestEagerMShortcut:
    def test_avoids_verification_expansions(self, p2p_graph, p2p_points):
        plain = GraphDatabase(p2p_graph, p2p_points)
        eager_rknn(plain.view, 2, 1)
        plain_visited = plain.tracker.nodes_visited

        mat = GraphDatabase(p2p_graph, p2p_points)
        mat.materialize(2)
        mat.reset_stats()
        eager_m_rknn(mat.view, mat.materialized, 2, 1)
        assert mat.tracker.nodes_visited < plain_visited

    def test_reads_knn_pages(self, mat_db):
        mat_db.reset_stats()
        mat_db.clear_buffer()
        eager_m_rknn(mat_db.view, mat_db.materialized, 4, 1)
        assert mat_db.tracker.page_reads > 0


class TestEagerMRandomized:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_oracle(self, seed):
        rng = random.Random(seed + 3000)
        graph = build_random_graph(rng, rng.randint(5, 28), rng.randint(0, 22))
        count = rng.randint(1, graph.num_nodes // 2)
        nodes = rng.sample(range(graph.num_nodes), count)
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        k = rng.randint(1, 3)
        db.materialize(k + 1)
        query = rng.randrange(graph.num_nodes)
        exclude = frozenset()
        coincident = points.point_at(query)
        if coincident is not None and rng.random() < 0.5:
            exclude = frozenset({coincident})
        got = eager_m_rknn(db.view, db.materialized, query, k, exclude)
        assert got == brute_force_rknn(graph, points, query, k, exclude)
