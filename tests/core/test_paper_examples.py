"""Scenario tests reconstructing the paper's worked examples.

The paper's figures give partial edge weights, so these networks are
rebuilt to satisfy every distance relation the text states; the tests
then assert the exact behaviour the paper describes.
"""


from repro import EdgePointSet, GraphDatabase, NodePointSet
from repro.core.baseline import brute_force_brknn, brute_force_rknn
from repro.graph.graph import Graph

ALL_METHODS = ("eager", "lazy", "eager-m", "lazy-ep")


class TestFig1aP2P:
    """Fig. 1a: a new peer q joins; RNN(q) = {p3} although NN(q) = p1."""

    def setup_method(self):
        #   p2 --1-- p1 --2-- q --3-- p3
        self.graph = Graph(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        self.points = NodePointSet({1: 1, 2: 0, 3: 3})  # p1@1, p2@0, p3@3
        self.db = GraphDatabase(self.graph, self.points)
        self.db.materialize(4)

    def test_nn_of_query_is_p1(self):
        assert self.db.knn(2, 1).ids() == (1,)

    def test_rnn_is_p3_only(self):
        # p1's NN is p2 (distance 1 < 2), so p1 is not a reverse NN;
        # p3's closest point is q itself (3 < 5, 6)
        for method in ALL_METHODS:
            assert self.db.rknn(2, 1, method=method).points == (3,)

    def test_oracle_agrees(self):
        assert brute_force_rknn(self.graph, self.points, 2, 1) == [3]

    def test_r4nn_returns_all_peers(self):
        # the paper's Gnutella motivation: a new peer issues a R4NN query
        for method in ALL_METHODS:
            assert self.db.rknn(2, 4, method=method).points == (1, 2, 3)


class TestFig1bRestaurants:
    """Fig. 1b: bichromatic RNN over residential blocks and restaurants.

    Rebuilt on a weighted tree so that:
      bRNN(q)  = {p1, p2, p3},  bRNN(q1) = {p4, p5},  bRNN(q2) = {}
      bR2NN(q) = {p1, p2, p3, p4}.
    """

    def setup_method(self):
        # layout (restricted reformulation of the road drawing):
        #   p1 -1- q -1- p2 ; q -2- p3 -2- hub -1- q1 -1- p4 ; q1 -2- p5 -3- q2
        # all three restaurants (q, q1, q2) form the reference set Q; a
        # query from one of them hides itself, exactly as in Fig. 1b.
        edges = [
            (0, 1, 1.0),   # p1 - q
            (1, 2, 1.0),   # q - p2
            (1, 3, 2.0),   # q - p3
            (3, 4, 2.0),   # p3 - hub
            (4, 5, 1.0),   # hub - q1
            (5, 6, 1.0),   # q1 - p4
            (5, 7, 2.0),   # q1 - p5
            (7, 8, 3.0),   # p5 - q2
        ]
        self.graph = Graph(9, edges)
        self.blocks = NodePointSet({1: 0, 2: 2, 3: 3, 4: 6, 5: 7})
        self.restaurants = NodePointSet({99: 1, 100: 5, 101: 8})  # q, q1, q2
        self.db = GraphDatabase(self.graph, self.blocks)
        self.db.attach_reference(self.restaurants)
        self.db.materialize_reference(3)

    def test_brnn_of_new_restaurant(self):
        for method in ("eager", "lazy", "eager-m"):
            got = self.db.bichromatic_rknn(1, 1, method=method, exclude={99})
            assert got.points == (1, 2, 3)

    def test_brnn_of_q1(self):
        want = brute_force_brknn(
            self.graph, self.blocks, self.restaurants.without_point(100), 5, 1
        )
        got = self.db.bichromatic_rknn(5, 1, exclude={100}).points
        assert list(got) == want == [4, 5]

    def test_brnn_of_q2_is_empty(self):
        got = self.db.bichromatic_rknn(8, 1, exclude={101}).points
        assert got == ()

    def test_br2nn_of_new_restaurant(self):
        # p5 has both rivals strictly closer than q; every other block
        # keeps q among its two nearest restaurants (paper: {p1..p4})
        for method in ("eager", "lazy", "eager-m"):
            got = self.db.bichromatic_rknn(1, 2, method=method, exclude={99})
            assert got.points == (1, 2, 3, 4)


class TestSection3RunningExample:
    """Section 3.2's trace: eager prunes at the first point-bearing nodes.

    Rebuilt with the distances the text quotes: d(q, n3) = 4 with a point
    p1 at distance 3 from n3, and d(q, n1) = 5 with p2 at distance 3.
    Both p1 and p2 are reverse NNs; the expansion never goes past them.
    """

    def setup_method(self):
        # q@0; 0 -4- 1(n3) -3- 2(p1); 0 -5- 3(n1) -3- 4(p2); tails beyond
        edges = [
            (0, 1, 4.0), (1, 2, 3.0), (2, 5, 1.0), (5, 6, 1.0),
            (0, 3, 5.0), (3, 4, 3.0), (4, 7, 1.0), (7, 8, 1.0),
        ]
        self.graph = Graph(9, edges)
        self.points = NodePointSet({1: 2, 2: 4})  # p1@2, p2@4
        self.db = GraphDatabase(self.graph, self.points)

    def test_both_points_are_results(self):
        for method in ALL_METHODS[:2] + ALL_METHODS[3:]:
            assert self.db.rknn(0, 1, method=method).points == (1, 2)

    def test_eager_never_expands_past_pruned_nodes(self):
        self.db.reset_stats()
        self.db.rknn(0, 1, method="eager")
        # nodes 5, 6, 7, 8 lie behind the pruned frontier: at most the
        # verification expansions may touch the first of them
        assert self.db.tracker.nodes_visited < 2 * self.graph.num_nodes


class TestLemma1:
    """Lemma 1 itself: d(q, n) > d(p, n) kills everything behind n."""

    def test_points_behind_guard_are_never_results(self):
        # q -5- n -2- p10 -8- p11 -1- p12: the guard point p10 keeps the
        # query as its NN; everything behind it is closer to a point
        edges = [(0, 1, 5.0), (1, 2, 2.0), (2, 3, 8.0), (3, 4, 1.0)]
        graph = Graph(5, edges)
        points = NodePointSet({10: 2, 11: 3, 12: 4})
        db = GraphDatabase(graph, points)
        assert brute_force_rknn(graph, points, 0, 1) == [10]
        for method in ("eager", "lazy", "lazy-ep"):
            got = db.rknn(0, 1, method=method).points
            assert got == (10,), method

    def test_equality_does_not_prune(self):
        # d(q, n) == d(p, n): Lemma 1 requires strict inequality, and the
        # point behind n is a genuine reverse neighbor
        edges = [(0, 1, 2.0), (1, 2, 2.0), (1, 3, 5.0)]
        graph = Graph(4, edges)
        points = NodePointSet({10: 2, 11: 3})
        db = GraphDatabase(graph, points)
        want = brute_force_rknn(graph, points, 0, 1)
        assert 11 in want
        for method in ("eager", "lazy", "lazy-ep"):
            assert list(db.rknn(0, 1, method=method).points) == want


class TestFig14UnrestrictedExample:
    """Section 5.2's observation: an edge point's distance is the minimum
    over both endpoint routes, discovered at different times."""

    def test_two_bounds_resolve_to_minimum(self):
        # q -- n3 -- n5 square; p3 on edge (n3, n5), closer via n5
        #   q@0; 0-2-1(n3); 0-3-2(n5); edge (1,2) weight 8 with p3 at 7
        graph = Graph(3, [(0, 1, 2.0), (0, 2, 3.0), (1, 2, 8.0)])
        points = EdgePointSet({3: (1, 2, 7.0)})
        db = GraphDatabase(graph, points)
        # via n3: 2 + 7 = 9; via n5: 3 + 1 = 4
        assert db.knn(0, 1).neighbors == ((3, 4.0),)
