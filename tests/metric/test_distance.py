"""Tests for the counted network-distance oracle."""

import math
import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.metric.distance import NetworkMetric
from repro.paths.dijkstra import shortest_path
from tests.conftest import build_random_graph


def make_view(graph, placement=None):
    return GraphDatabase(graph, NodePointSet(placement or {})).view


class TestNetworkMetric:
    def test_distance_matches_dijkstra(self, p2p_graph):
        metric = NetworkMetric(make_view(p2p_graph))
        for u in range(p2p_graph.num_nodes):
            for v in range(p2p_graph.num_nodes):
                expected = shortest_path(p2p_graph, u, v).distance
                assert metric.distance(u, v) == pytest.approx(expected)

    def test_out_of_range_rejected(self, ring_graph):
        metric = NetworkMetric(make_view(ring_graph))
        with pytest.raises(QueryError):
            metric.distance(0, 6)

    def test_unreachable_is_infinite(self):
        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        metric = NetworkMetric(make_view(graph))
        assert math.isinf(metric.distance(0, 2))

    def test_cache_avoids_repeat_evaluations(self, ring_graph):
        metric = NetworkMetric(make_view(ring_graph))
        metric.distance(0, 3)
        metric.distance(0, 3)
        metric.distance(3, 0)  # symmetric key
        assert metric.requests == 3
        assert metric.evaluations == 1
        assert metric.cache_size == 1

    def test_reset_counters_keeps_cache(self, ring_graph):
        metric = NetworkMetric(make_view(ring_graph))
        metric.distance(0, 2)
        metric.reset_counters()
        assert metric.evaluations == 0
        metric.distance(0, 2)
        assert metric.evaluations == 0  # served by the retained cache

    def test_point_distance_uses_point_node(self, ring_graph):
        view = make_view(ring_graph, {10: 2})
        metric = NetworkMetric(view)
        assert metric.point_distance(10, 4) == pytest.approx(2.0)

    def test_triangle_inequality_holds(self):
        rng = random.Random(7)
        graph = build_random_graph(rng, 20, 20, int_weights=False)
        metric = NetworkMetric(make_view(graph))
        for _ in range(20):
            a, b, c = rng.sample(range(20), 3)
            assert metric.distance(a, c) <= (
                metric.distance(a, b) + metric.distance(b, c) + 1e-9
            )
