"""Oracle tests for metric-index RNN retrieval."""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.core.baseline import brute_force_rknn
from repro.core.eager import eager_rknn
from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.metric.rnn import MetricRnnIndex, metric_rknn, metric_rnn
from repro.metric.vptree import SearchStats
from tests.conftest import build_random_graph


class TestMetricRnnBasics:
    def test_running_example(self, p2p_db):
        assert metric_rnn(p2p_db.view, 2) == [1, 2, 3]
        assert metric_rnn(p2p_db.view, 4) == []

    def test_empty_point_set(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        assert metric_rnn(db.view, 0) == []

    def test_all_excluded(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 3}))
        assert metric_rnn(db.view, 0, exclude={10}) == []

    def test_index_rejects_empty_set(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        with pytest.raises(QueryError):
            MetricRnnIndex(db.view)

    def test_point_on_query_node(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 0, 11: 3}))
        assert 10 in metric_rnn(db.view, 0)

    def test_single_point_qualifies_everywhere(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 3}))
        assert metric_rnn(db.view, 0) == [10]

    def test_unreachable_point_is_not_a_result(self):
        graph = Graph(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
        db = GraphDatabase(graph, NodePointSet({10: 0, 11: 2}))
        # query in the right component: the left point is unreachable
        assert metric_rnn(db.view, 4) == [11]

    def test_index_reuse_across_queries(self, p2p_db):
        index = MetricRnnIndex(p2p_db.view)
        assert index.rnn(2) == [1, 2, 3]
        assert index.rnn(4) == []
        assert index.size == 3


class TestMetricRnnCost:
    def test_every_tree_visit_costs_a_distance_call(self, p2p_db):
        index = MetricRnnIndex(p2p_db.view)
        stats = SearchStats()
        index.rnn(4, stats)
        assert stats.distance_calls == stats.nodes_visited
        assert stats.distance_calls >= 1

    def test_construction_runs_dijkstras(self, p2p_db):
        index = MetricRnnIndex(p2p_db.view)
        # tree build + radius computation must have evaluated distances
        assert index.metric.evaluations > 0


class TestMetricRnnRandomized:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_oracle(self, seed):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(5, 25), rng.randint(0, 20))
        count = rng.randint(1, graph.num_nodes // 2)
        nodes = rng.sample(range(graph.num_nodes), count)
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        query = rng.randrange(graph.num_nodes)
        assert metric_rnn(db.view, query) == brute_force_rknn(
            graph, points, query, 1
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_exclusion_matches_eager(self, seed):
        rng = random.Random(500 + seed)
        graph = build_random_graph(rng, rng.randint(6, 20), rng.randint(0, 15))
        nodes = rng.sample(range(graph.num_nodes), rng.randint(2, 6))
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        hidden = rng.choice(sorted(points.ids()))
        query = points.node_of(hidden)
        expected = eager_rknn(db.view, query, 1, exclude={hidden})
        assert metric_rnn(db.view, query, exclude={hidden}) == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_float_weights(self, seed):
        rng = random.Random(900 + seed)
        graph = build_random_graph(rng, rng.randint(5, 20), rng.randint(0, 15),
                                   int_weights=False)
        nodes = rng.sample(range(graph.num_nodes), rng.randint(1, 5))
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        query = rng.randrange(graph.num_nodes)
        assert metric_rnn(db.view, query) == brute_force_rknn(
            graph, points, query, 1
        )


class TestMetricRknnHigherOrders:
    def test_k_must_be_positive(self, p2p_db):
        with pytest.raises(QueryError):
            MetricRnnIndex(p2p_db.view, k=0)

    def test_k_exceeding_point_count_returns_all_reachable(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 0, 11: 3}))
        # with k=5 > |P|-1, every point's radius is infinite
        assert metric_rknn(db.view, 1, k=5) == [10, 11]

    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize("k", [2, 3])
    def test_matches_oracle(self, seed, k):
        rng = random.Random(3000 + seed)
        graph = build_random_graph(rng, rng.randint(6, 22), rng.randint(0, 18))
        count = rng.randint(2, max(2, graph.num_nodes // 2))
        nodes = rng.sample(range(graph.num_nodes), count)
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        query = rng.randrange(graph.num_nodes)
        assert metric_rknn(db.view, query, k=k) == brute_force_rknn(
            graph, points, query, k
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_eager_with_exclusion(self, seed):
        rng = random.Random(4000 + seed)
        graph = build_random_graph(rng, rng.randint(8, 20), rng.randint(0, 15))
        nodes = rng.sample(range(graph.num_nodes), rng.randint(3, 7))
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        hidden = rng.choice(sorted(points.ids()))
        query = points.node_of(hidden)
        expected = eager_rknn(db.view, query, 2, exclude={hidden})
        assert metric_rknn(db.view, query, 2, exclude={hidden}) == expected
