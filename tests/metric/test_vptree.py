"""Tests for the VP-tree over abstract metrics."""

import math
import random

import pytest

from repro.errors import QueryError
from repro.metric.vptree import SearchStats, VPTree


def line_metric(u: int, v: int) -> float:
    """Items live on the integer line: the simplest metric for tests."""
    return float(abs(u - v))


class TestConstruction:
    def test_empty_items_rejected(self):
        with pytest.raises(QueryError):
            VPTree([], line_metric)

    def test_duplicate_items_rejected(self):
        with pytest.raises(QueryError):
            VPTree([1, 1, 2], line_metric)

    def test_single_item_tree(self):
        tree = VPTree([5], line_metric)
        assert len(tree) == 1
        assert tree.depth() == 1
        assert tree.items() == [5]

    def test_items_roundtrip(self):
        items = [3, 1, 4, 1 + 10, 5, 9, 2, 6]
        tree = VPTree(items, line_metric)
        assert tree.items() == sorted(items)
        assert len(tree) == len(items)

    def test_depth_is_logarithmic_on_line(self):
        tree = VPTree(list(range(128)), line_metric)
        # median splits halve the set; allow slack for the vantage choice
        assert tree.depth() <= 20


class TestKnn:
    def test_k_must_be_positive(self):
        tree = VPTree([1, 2], line_metric)
        with pytest.raises(QueryError):
            tree.knn(0, 0)

    def test_exact_nearest(self):
        tree = VPTree([10, 20, 30, 40], line_metric)
        assert tree.knn(22, 1) == [(20, 2.0)]

    def test_k_larger_than_tree_returns_all(self):
        tree = VPTree([10, 20], line_metric)
        result = tree.knn(0, 5)
        assert result == [(10, 10.0), (20, 20.0)]

    def test_result_is_ascending(self):
        tree = VPTree(list(range(0, 100, 7)), line_metric)
        result = tree.knn(31, 4)
        dists = [d for _, d in result]
        assert dists == sorted(dists)

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        items = rng.sample(range(1000), rng.randint(2, 60))
        tree = VPTree(items, line_metric)
        query = rng.randrange(1000)
        k = rng.randint(1, 5)
        expected = sorted(
            ((item, line_metric(item, query)) for item in items),
            key=lambda pair: (pair[1], pair[0]),
        )[:k]
        assert tree.knn(query, k) == expected

    def test_pruning_happens_on_clustered_data(self):
        # two far-apart clusters: searching near one must prune the other
        items = list(range(100, 110)) + list(range(100_000, 100_010))
        tree = VPTree(items, line_metric)
        stats = SearchStats()
        tree.knn(105, 2, stats)
        assert stats.nodes_pruned > 0
        assert stats.nodes_visited < len(items)


class TestRangeQuery:
    def test_negative_radius_rejected(self):
        tree = VPTree([1], line_metric)
        with pytest.raises(QueryError):
            tree.range_query(0, -1.0)

    def test_radius_zero_finds_exact_match(self):
        tree = VPTree([5, 10], line_metric)
        assert tree.range_query(5, 0.0) == [(5, 0.0)]

    def test_boundary_is_inclusive(self):
        tree = VPTree([0, 10], line_metric)
        assert tree.range_query(5, 5.0) == [(0, 5.0), (10, 5.0)]

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force(self, seed):
        rng = random.Random(100 + seed)
        items = rng.sample(range(500), rng.randint(2, 50))
        tree = VPTree(items, line_metric)
        query = rng.randrange(500)
        radius = rng.uniform(0, 120)
        expected = sorted(
            (
                (item, line_metric(item, query))
                for item in items
                if line_metric(item, query) <= radius
            ),
            key=lambda pair: (pair[1], pair[0]),
        )
        assert tree.range_query(query, radius) == expected


class TestEnclosure:
    def test_missing_radii_rejected(self):
        tree = VPTree([1, 2], line_metric)
        with pytest.raises(QueryError):
            tree.set_vicinity_radii({1: 1.0})

    def test_enclosure_respects_individual_radii(self):
        tree = VPTree([0, 10, 30], line_metric)
        tree.set_vicinity_radii({0: 4.0, 10: 25.0, 30: 1.0})
        # query 8: |0-8|=8 > 4; |10-8|=2 <= 25; |30-8|=22 > 1
        assert tree.enclosing(8) == [(10, 2.0)]

    def test_boundary_tie_is_included(self):
        tree = VPTree([0, 10], line_metric)
        tree.set_vicinity_radii({0: 5.0, 10: 4.0})
        assert tree.enclosing(5) == [(0, 5.0)]

    def test_infinite_radius_encloses_everything(self):
        tree = VPTree([0, 100], line_metric)
        tree.set_vicinity_radii({0: math.inf, 100: 0.5})
        assert tree.enclosing(50) == [(0, 50.0)]

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force(self, seed):
        rng = random.Random(200 + seed)
        items = rng.sample(range(500), rng.randint(2, 40))
        radii = {item: rng.uniform(0, 80) for item in items}
        tree = VPTree(items, line_metric)
        tree.set_vicinity_radii(radii)
        query = rng.randrange(500)
        expected = sorted(
            (
                (item, line_metric(item, query))
                for item in items
                if line_metric(item, query) <= radii[item]
            ),
            key=lambda pair: (pair[1], pair[0]),
        )
        assert tree.enclosing(query) == expected

    def test_enclosure_prunes_far_small_radius_subtrees(self):
        items = list(range(0, 1000, 100))
        radii = {item: 1.0 for item in items}
        tree = VPTree(items, line_metric)
        tree.set_vicinity_radii(radii)
        stats = SearchStats()
        tree.enclosing(0, stats)
        assert stats.nodes_pruned > 0
