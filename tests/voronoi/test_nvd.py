"""Tests for network Voronoi diagram construction."""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.paths.dijkstra import single_source_distances
from repro.voronoi.nvd import NetworkVoronoi
from tests.conftest import build_random_graph


def build_db(graph, placement):
    return GraphDatabase(graph, NodePointSet(placement))


class TestBuildValidation:
    def test_requires_generators(self, ring_graph):
        db = build_db(ring_graph, {})
        with pytest.raises(QueryError):
            NetworkVoronoi.build(db.view)

    def test_all_excluded_is_rejected(self, ring_graph):
        db = build_db(ring_graph, {10: 0})
        with pytest.raises(QueryError):
            NetworkVoronoi.build(db.view, exclude=frozenset({10}))

    def test_extra_seed_id_collision_rejected(self, ring_graph):
        db = build_db(ring_graph, {10: 0})
        with pytest.raises(QueryError):
            NetworkVoronoi.build(db.view, extra_seeds={3: (10, 0.0)})

    def test_unrestricted_rejected(self):
        from repro.points.points import EdgePointSet

        graph = Graph(3, [(0, 1, 4.0), (1, 2, 4.0)])
        db = GraphDatabase(graph, EdgePointSet({5: (0, 1, 1.0)}))
        with pytest.raises(QueryError):
            NetworkVoronoi.build(db.view)


class TestCellAssignment:
    def test_single_generator_owns_everything(self, ring_graph):
        db = build_db(ring_graph, {7: 2})
        nvd = NetworkVoronoi.build(db.view)
        assert nvd.cell_nodes(7) == list(range(6))
        assert nvd.cell_sizes() == {7: 6}

    def test_distance_matches_dijkstra(self, p2p_graph):
        db = build_db(p2p_graph, {1: 5, 2: 6, 3: 7})
        nvd = NetworkVoronoi.build(db.view)
        per_gen = {
            pid: single_source_distances(p2p_graph, node)
            for pid, node in ((1, 5), (2, 6), (3, 7))
        }
        for node in range(p2p_graph.num_nodes):
            expected = min(per_gen[pid][node] for pid in (1, 2, 3))
            assert nvd.distance_of(node) == pytest.approx(expected)

    def test_primary_owner_attains_minimum(self, p2p_graph):
        db = build_db(p2p_graph, {1: 5, 2: 6, 3: 7})
        nvd = NetworkVoronoi.build(db.view)
        per_gen = {
            pid: single_source_distances(p2p_graph, node)
            for pid, node in ((1, 5), (2, 6), (3, 7))
        }
        for node in range(p2p_graph.num_nodes):
            owner = nvd.cell_of(node)
            assert per_gen[owner][node] == pytest.approx(nvd.distance_of(node))

    def test_thick_owners_are_exactly_the_tied_generators(self):
        # path 0-1-2-3-4, generators at both ends: node 2 is tied
        graph = Graph(5, [(i, i + 1, 1.0) for i in range(4)])
        db = build_db(graph, {10: 0, 11: 4})
        nvd = NetworkVoronoi.build(db.view)
        assert set(nvd.owners_of(2)) == {10, 11}
        assert nvd.owners_of(1) == (10,)
        assert nvd.owners_of(3) == (11,)

    def test_primary_cells_partition_covered_nodes(self):
        rng = random.Random(4)
        graph = build_random_graph(rng, 40, 40)
        placement = {100 + i: n for i, n in enumerate(rng.sample(range(40), 6))}
        nvd = NetworkVoronoi.build(build_db(graph, placement).view)
        sizes = nvd.cell_sizes()
        assert sum(sizes.values()) == graph.num_nodes
        all_nodes = sorted(
            node for pid in placement for node in nvd.cell_nodes(pid)
        )
        assert all_nodes == list(range(40))

    def test_disconnected_nodes_are_uncovered(self):
        graph = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        db = build_db(graph, {9: 0})
        nvd = NetworkVoronoi.build(db.view)
        assert nvd.covers(1)
        assert not nvd.covers(2)
        with pytest.raises(QueryError):
            nvd.cell_of(2)
        with pytest.raises(QueryError):
            nvd.distance_of(3)

    def test_exclusion_removes_generator(self, ring_graph):
        db = build_db(ring_graph, {10: 0, 11: 3})
        nvd = NetworkVoronoi.build(db.view, exclude=frozenset({10}))
        assert nvd.generators == (11,)
        assert nvd.cell_nodes(11) == list(range(6))

    def test_extra_seed_becomes_generator(self, ring_graph):
        db = build_db(ring_graph, {10: 0})
        nvd = NetworkVoronoi.build(db.view, extra_seeds={3: (-1, 0.0)})
        assert -1 in nvd.generators
        assert nvd.cell_of(3) == -1
        assert 3 in nvd.cell_nodes(-1)

    def test_generator_node_distance_zero(self, p2p_graph):
        db = build_db(p2p_graph, {1: 5, 2: 6})
        nvd = NetworkVoronoi.build(db.view)
        assert nvd.distance_of(5) == 0.0
        assert nvd.distance_of(6) == 0.0
        assert nvd.cell_of(5) == 1
        assert nvd.cell_of(6) == 2


class TestAdjacency:
    def test_two_cells_on_a_path_are_adjacent(self):
        graph = Graph(6, [(i, i + 1, 1.0) for i in range(5)])
        db = build_db(graph, {10: 0, 11: 5})
        nvd = NetworkVoronoi.build(db.view)
        assert nvd.neighbors_of_cell(db.view, 10) == {11}
        assert nvd.neighbors_of_cell(db.view, 11) == {10}

    def test_middle_cell_separates_end_cells(self):
        # 9 nodes on a path, generators at 0, 4, 8: end cells never touch
        graph = Graph(9, [(i, i + 1, 1.0) for i in range(8)])
        db = build_db(graph, {10: 0, 11: 4, 12: 8})
        nvd = NetworkVoronoi.build(db.view)
        adjacency = nvd.adjacency(db.view)
        assert adjacency[11] == {10, 12}
        assert 12 not in adjacency[10]
        assert 10 not in adjacency[12]

    def test_adjacency_is_symmetric(self):
        rng = random.Random(11)
        graph = build_random_graph(rng, 30, 25)
        placement = {100 + i: n for i, n in enumerate(rng.sample(range(30), 5))}
        db = build_db(graph, placement)
        nvd = NetworkVoronoi.build(db.view)
        adjacency = nvd.adjacency(db.view)
        for gid, neighbors in adjacency.items():
            for other in neighbors:
                assert gid in adjacency[other]

    def test_neighbors_of_cell_matches_full_adjacency(self):
        rng = random.Random(12)
        graph = build_random_graph(rng, 25, 20)
        placement = {100 + i: n for i, n in enumerate(rng.sample(range(25), 4))}
        db = build_db(graph, placement)
        nvd = NetworkVoronoi.build(db.view)
        adjacency = nvd.adjacency(db.view)
        for gid in placement:
            assert nvd.neighbors_of_cell(db.view, gid) == adjacency[gid]

    def test_tied_node_makes_cells_adjacent(self):
        # generators two hops apart around a tie node
        graph = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        db = build_db(graph, {10: 0, 11: 2})
        nvd = NetworkVoronoi.build(db.view)
        assert set(nvd.owners_of(1)) == {10, 11}
        assert nvd.neighbors_of_cell(db.view, 10) == {11}
