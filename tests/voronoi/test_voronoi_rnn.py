"""Oracle tests for Voronoi-based RNN retrieval."""

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.core.baseline import brute_force_rknn
from repro.core.eager import eager_rknn
from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.points.points import EdgePointSet
from repro.voronoi.rnn import voronoi_rnn
from tests.conftest import build_random_graph


class TestVoronoiRnnBasics:
    def test_running_example(self, p2p_db):
        assert voronoi_rnn(p2p_db.view, 2) == [1, 2, 3]
        assert voronoi_rnn(p2p_db.view, 4) == []

    def test_empty_point_set(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({}))
        assert voronoi_rnn(db.view, 0) == []

    def test_everything_excluded(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 3}))
        assert voronoi_rnn(db.view, 0, exclude={10}) == []

    def test_point_on_query_node(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 0, 11: 3}))
        assert 10 in voronoi_rnn(db.view, 0)

    def test_single_point_always_qualifies(self, ring_graph):
        db = GraphDatabase(ring_graph, NodePointSet({10: 3}))
        assert voronoi_rnn(db.view, 0) == [10]

    def test_unrestricted_rejected(self):
        graph = Graph(3, [(0, 1, 4.0), (1, 2, 4.0)])
        db = GraphDatabase(graph, EdgePointSet({5: (0, 1, 1.0)}))
        with pytest.raises(QueryError):
            voronoi_rnn(db.view, 0)


class TestVoronoiRnnTies:
    def test_tie_blocked_corridor_is_not_missed(self):
        # path 0-1-2-3-4 (unit weights), q at 4, p at 0, and a third
        # point hanging off node 2 at distance 2: all three pairwise
        # distances tie at 4, so both data points are RNNs under the
        # paper's tie rule.  A tie-unaware diagram hands node 2 to the
        # hanging point and misses p.
        edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 5, 2.0)]
        graph = Graph(6, edges)
        db = GraphDatabase(graph, NodePointSet({7: 0, 8: 5}))
        assert eager_rknn(db.view, 4, 1) == [7, 8]
        assert voronoi_rnn(db.view, 4) == [7, 8]

    def test_all_points_equidistant_on_star(self):
        # star: center 0, leaves 1..5 at weight 2; query at center
        edges = [(0, leaf, 2.0) for leaf in range(1, 6)]
        graph = Graph(6, edges)
        placement = {10 + i: leaf for i, leaf in enumerate(range(1, 6))}
        db = GraphDatabase(graph, NodePointSet(placement))
        assert voronoi_rnn(db.view, 0) == sorted(placement)


class TestVoronoiRnnRandomized:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_oracle_integer_weights(self, seed):
        rng = random.Random(seed)
        graph = build_random_graph(rng, rng.randint(5, 30), rng.randint(0, 25))
        count = rng.randint(1, graph.num_nodes // 2)
        nodes = rng.sample(range(graph.num_nodes), count)
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        query = rng.randrange(graph.num_nodes)
        assert voronoi_rnn(db.view, query) == brute_force_rknn(
            graph, points, query, 1
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_oracle_float_weights(self, seed):
        rng = random.Random(1000 + seed)
        graph = build_random_graph(rng, rng.randint(5, 25), rng.randint(0, 20),
                                   int_weights=False)
        nodes = rng.sample(range(graph.num_nodes), rng.randint(1, 5))
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        query = rng.randrange(graph.num_nodes)
        assert voronoi_rnn(db.view, query) == brute_force_rknn(
            graph, points, query, 1
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_exclusion_matches_eager(self, seed):
        rng = random.Random(2000 + seed)
        graph = build_random_graph(rng, rng.randint(6, 25), rng.randint(0, 20))
        nodes = rng.sample(range(graph.num_nodes), rng.randint(2, 6))
        points = NodePointSet({100 + i: node for i, node in enumerate(nodes)})
        db = GraphDatabase(graph, points)
        hidden = rng.choice(sorted(points.ids()))
        query = points.node_of(hidden)
        expected = eager_rknn(db.view, query, 1, exclude={hidden})
        assert voronoi_rnn(db.view, query, exclude={hidden}) == expected
