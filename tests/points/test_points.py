"""Unit tests for data-point sets."""

import pytest

from repro.errors import PointError
from repro.points.points import EdgePointSet, NodePointSet


class TestNodePointSet:
    def test_basic_lookups(self):
        points = NodePointSet({10: 0, 11: 3})
        assert len(points) == 2
        assert 10 in points and 12 not in points
        assert points.node_of(10) == 0
        assert points.point_at(3) == 11
        assert points.point_at(1) is None

    def test_one_point_per_node(self):
        with pytest.raises(PointError):
            NodePointSet({10: 0, 11: 0})

    def test_duplicate_id_rejected(self):
        with pytest.raises(PointError):
            NodePointSet([(10, 0), (10, 1)])

    def test_negative_id_rejected(self):
        with pytest.raises(PointError):
            NodePointSet({-1: 0})

    def test_unknown_point_rejected(self):
        points = NodePointSet({10: 0})
        with pytest.raises(PointError):
            points.node_of(99)

    def test_validate_against_graph(self, path_graph):
        NodePointSet({10: 4}).validate(path_graph)
        with pytest.raises(PointError):
            NodePointSet({10: 99}).validate(path_graph)

    def test_with_point_and_without_point(self):
        points = NodePointSet({10: 0})
        grown = points.with_point(11, 2)
        assert 11 in grown and 11 not in points
        shrunk = grown.without_point(10)
        assert 10 not in shrunk and 11 in shrunk

    def test_with_point_duplicate_rejected(self):
        with pytest.raises(PointError):
            NodePointSet({10: 0}).with_point(10, 1)


class TestEdgePointSet:
    def test_basic_lookups(self):
        points = EdgePointSet({10: (0, 1, 0.5), 11: (0, 1, 1.5), 12: (2, 3, 0.0)})
        assert len(points) == 3
        assert points.location(10) == (0, 1, 0.5)
        assert points.points_on(0, 1) == [(10, 0.5), (11, 1.5)]
        assert points.points_on(1, 0) == [(10, 0.5), (11, 1.5)]
        assert points.points_on(3, 4) == []

    def test_points_sorted_by_offset(self):
        points = EdgePointSet({10: (0, 1, 1.5), 11: (0, 1, 0.5)})
        assert points.points_on(0, 1) == [(11, 0.5), (10, 1.5)]

    def test_non_canonical_edge_rejected(self):
        with pytest.raises(PointError):
            EdgePointSet({10: (1, 0, 0.5)})

    def test_self_loop_rejected(self):
        with pytest.raises(PointError):
            EdgePointSet({10: (1, 1, 0.5)})

    def test_negative_offset_rejected(self):
        with pytest.raises(PointError):
            EdgePointSet({10: (0, 1, -0.5)})

    def test_validate_against_graph(self, path_graph):
        EdgePointSet({10: (0, 1, 1.0)}).validate(path_graph)
        with pytest.raises(PointError):  # missing edge
            EdgePointSet({10: (0, 4, 1.0)}).validate(path_graph)
        with pytest.raises(PointError):  # offset beyond edge weight
            EdgePointSet({10: (0, 1, 5.0)}).validate(path_graph)

    def test_edges_with_points(self):
        points = EdgePointSet({10: (0, 1, 0.5), 11: (2, 3, 0.1)})
        assert sorted(points.edges_with_points()) == [(0, 1), (2, 3)]

    def test_with_and_without_point(self):
        points = EdgePointSet({10: (0, 1, 0.5)})
        grown = points.with_point(11, (0, 1, 1.0))
        assert 11 in grown
        shrunk = grown.without_point(10)
        assert 10 not in shrunk

    def test_multiple_points_same_edge_allowed(self):
        points = EdgePointSet({i: (0, 1, float(i)) for i in range(5)})
        assert len(points.points_on(0, 1)) == 5
