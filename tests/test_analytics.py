"""Tests for the cost/selectivity estimation module."""

import pytest

from repro import GraphDatabase, NodePointSet, QueryError
from repro.analytics import (
    estimate_query_cost,
    estimate_selectivity,
    expansion_profile,
    expected_selectivity,
    recommend_method,
)
from repro.datasets.brite import generate_brite
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import place_edge_points, place_node_points


@pytest.fixture(scope="module")
def brite_db():
    graph = generate_brite(1_500, seed=1)
    points = place_node_points(graph, 0.03, seed=2)
    return GraphDatabase(graph, points)


@pytest.fixture(scope="module")
def road_db():
    graph = generate_spatial(1_500, seed=3)
    points = place_edge_points(graph, 0.03, seed=4)
    return GraphDatabase(graph, points, node_order="hilbert")


class TestExpectedSelectivity:
    def test_equals_k(self):
        assert expected_selectivity(1) == 1.0
        assert expected_selectivity(7) == 7.0

    def test_rejects_bad_k(self):
        with pytest.raises(QueryError):
            expected_selectivity(0)


class TestEstimateSelectivity:
    def test_mean_near_k(self, brite_db):
        # the closed-form expectation is k; a 30-query sample should land
        # in the right ballpark
        estimate = estimate_selectivity(brite_db, k=2, samples=30, seed=5)
        assert 0.5 * 2 <= estimate.mean <= 2.0 * 2
        assert estimate.expected == 2.0
        assert estimate.maximum >= estimate.mean

    def test_k1(self, road_db):
        estimate = estimate_selectivity(road_db, k=1, samples=20, seed=6)
        assert 0.3 <= estimate.mean <= 3.0

    def test_empty_points_rejected(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({}))
        with pytest.raises(QueryError):
            estimate_selectivity(db)


class TestExpansionProfile:
    def test_brite_is_exponential(self, brite_db):
        profile = expansion_profile(brite_db, samples=6, seed=7)
        assert profile.exponential
        assert profile.growth_ratio > 2.2

    def test_road_network_is_not(self, road_db):
        profile = expansion_profile(road_db, samples=6, seed=8)
        assert not profile.exponential

    def test_ball_sizes_monotone(self, road_db):
        profile = expansion_profile(road_db, samples=4, seed=9)
        sizes = profile.hop_ball_sizes
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))
        assert sizes[0] == 1.0


class TestEstimateQueryCost:
    def test_reports_costs(self, road_db):
        estimate = estimate_query_cost(road_db, k=1, method="eager", samples=5)
        assert estimate.io_mean > 0
        assert estimate.total_mean_s >= estimate.cpu_mean_s

    def test_methods_comparable(self, brite_db):
        eager = estimate_query_cost(brite_db, k=1, method="eager", samples=5)
        lazy = estimate_query_cost(brite_db, k=1, method="lazy", samples=5)
        # exponential expansion: eager visits no more pages overall
        assert eager.io_mean <= 2.0 * lazy.io_mean


class TestRecommendMethod:
    def test_prefers_materialized(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({10: 0, 11: 4}))
        db.materialize(3)
        rec = recommend_method(db, k=2)
        assert rec.method == "eager-m"

    def test_insufficient_capacity_falls_back(self, path_graph):
        db = GraphDatabase(path_graph, NodePointSet({10: 0, 11: 4}))
        db.materialize(2)
        rec = recommend_method(db, k=2)  # needs K >= 3 for k=2 + exclusion
        assert rec.method == "eager"

    def test_exponential_network_gets_eager(self, brite_db):
        rec = recommend_method(brite_db, k=1, samples=5)
        assert rec.method == "eager"
        assert "exponential" in rec.rationale

    def test_road_network_gets_eager_with_io_rationale(self, road_db):
        rec = recommend_method(road_db, k=1, samples=5)
        assert rec.method == "eager"
        assert "I/O" in rec.rationale
