"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import GraphDatabase, NodePointSet
from repro.graph.graph import Graph, edge_key


def build_random_graph(
    rng: random.Random,
    num_nodes: int,
    extra_edges: int,
    int_weights: bool = True,
) -> Graph:
    """A connected random graph: spanning tree + extra random edges."""
    edges: dict[tuple[int, int], float] = {}
    order = list(range(num_nodes))
    rng.shuffle(order)
    for i in range(1, num_nodes):
        u, v = order[i], order[rng.randrange(i)]
        weight = float(rng.randint(1, 9)) if int_weights else rng.uniform(0.5, 9.5)
        edges[edge_key(u, v)] = weight
    for _ in range(extra_edges):
        u, v = rng.sample(range(num_nodes), 2)
        if edge_key(u, v) not in edges:
            weight = float(rng.randint(1, 9)) if int_weights else rng.uniform(0.5, 9.5)
            edges[edge_key(u, v)] = weight
    return Graph(num_nodes, [(u, v, w) for (u, v), w in edges.items()])


@pytest.fixture
def path_graph() -> Graph:
    """0 -2- 1 -3- 2 -1- 3 -4- 4 (a weighted path)."""
    return Graph(5, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0), (3, 4, 4.0)])


@pytest.fixture
def ring_graph() -> Graph:
    """Six nodes on a cycle with unit weights."""
    return Graph(6, [(i, (i + 1) % 6, 1.0) for i in range(6)])


@pytest.fixture
def p2p_graph() -> Graph:
    """The running-example shape of the paper's Fig. 3 discussion.

    Weights are chosen so the distances quoted in Section 3 hold:
    d(q at n4, n3) = 4, d(n3, p1 at n6) = 3, d(n1, p2 at n5) = 3.
    """
    return Graph(
        8,
        [
            (4, 3, 4.0),   # q's node to n3
            (4, 1, 5.0),   # q's node to n1
            (3, 6, 3.0),   # n3 to p1's node
            (1, 5, 3.0),   # n1 to p2's node
            (6, 2, 2.0),   # n6 to n2
            (2, 5, 2.0),   # n2 to n5
            (5, 3, 6.0),   # n5 to n3
            (2, 7, 5.0),   # n2 to p3's node
            (1, 0, 6.0),   # n1 to n0 (empty branch)
        ],
    )


@pytest.fixture
def p2p_points() -> NodePointSet:
    """Data points of the running example: p1 at n6, p2 at n5, p3 at n7."""
    return NodePointSet({1: 6, 2: 5, 3: 7})


@pytest.fixture
def p2p_db(p2p_graph, p2p_points) -> GraphDatabase:
    return GraphDatabase(p2p_graph, p2p_points)
