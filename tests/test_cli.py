"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def saved_graph(tmp_path):
    path = tmp_path / "net.graph"
    code = main([
        "generate", "--kind", "grid", "--nodes", "100",
        "--density", "0.1", "--placement", "node",
        "--seed", "3", "-o", str(path),
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_creates_file(self, saved_graph, capsys):
        assert saved_graph.exists()

    def test_all_kinds(self, tmp_path):
        for kind in ("brite", "spatial", "grid"):
            path = tmp_path / f"{kind}.graph"
            assert main([
                "generate", "--kind", kind, "--nodes", "120",
                "--density", "0.05", "-o", str(path),
            ]) == 0
            assert path.exists()

    def test_edge_placement(self, tmp_path, capsys):
        path = tmp_path / "edges.graph"
        assert main([
            "generate", "--kind", "spatial", "--nodes", "150",
            "--density", "0.05", "--placement", "edge", "-o", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "|P|=" in out

    def test_no_points(self, tmp_path, capsys):
        path = tmp_path / "bare.graph"
        assert main([
            "generate", "--kind", "grid", "--nodes", "64",
            "--density", "0", "-o", str(path),
        ]) == 0
        assert "|P|=0" in capsys.readouterr().out


class TestInfo:
    def test_summarizes(self, saved_graph, capsys):
        assert main(["info", str(saved_graph)]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "points: 10" in out
        assert "expansion:" in out


class TestQuery:
    def test_node_query(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5"]) == 0
        out = capsys.readouterr().out
        assert "R1NN(5)" in out and "page I/Os" in out

    def test_materialized_query(self, saved_graph, capsys):
        assert main([
            "query", str(saved_graph), "--query", "5",
            "--k", "2", "--method", "eager-m", "--materialize", "3",
        ]) == 0
        assert "R2NN(5)" in capsys.readouterr().out

    def test_methods_agree(self, saved_graph, capsys):
        answers = set()
        for method in ("eager", "lazy", "lazy-ep"):
            main(["query", str(saved_graph), "--query", "7",
                  "--method", method])
            out = capsys.readouterr().out
            answers.add(out.splitlines()[0])
        assert len(answers) == 1

    def test_edge_location_query(self, tmp_path, capsys):
        path = tmp_path / "edges.graph"
        main(["generate", "--kind", "spatial", "--nodes", "200",
              "--density", "0.05", "--placement", "edge",
              "--seed", "1", "-o", str(path)])
        capsys.readouterr()
        # find an actual edge to place the query on
        from repro.graph.io import load_graph

        graph, _ = load_graph(path)
        u, v, w = next(iter(graph.edges()))
        assert main([
            "query", str(path), "--query", f"{u},{v},{w / 2}",
        ]) == 0
        assert "page I/Os" in capsys.readouterr().out


class TestQueryBackends:
    """`repro query` accepts the same backend flags as `repro batch`."""

    def test_compact_backend(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--k", "2", "--compact"]) == 0
        out = capsys.readouterr().out
        assert "R2NN(5)" in out and "compact" in out
        assert "0 page I/Os" in out  # compact adjacency reads are free

    def test_sharded_backend(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--k", "2", "--shards", "4"]) == 0
        assert "4 shard(s)" in capsys.readouterr().out

    def test_oracle_flag(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--k", "2", "--oracle", "--oracle-landmarks", "4"]) == 0
        out = capsys.readouterr().out
        assert "oracle: 4 landmarks" in out and "R2NN(5)" in out

    def test_backends_agree_on_answers(self, saved_graph, capsys):
        answers = set()
        for flags in ([], ["--compact"], ["--shards", "3"], ["--oracle"]):
            assert main(["query", str(saved_graph), "--query", "7",
                         "--k", "2", *flags]) == 0
            answers.add(capsys.readouterr().out.splitlines()[-2])
        assert len(answers) == 1

    def test_compact_and_shards_conflict(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--compact", "--shards", "2"]) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_negative_shards_rejected(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--shards", "-1"]) == 1
        assert "--shards" in capsys.readouterr().err


class TestBackendGroup:
    """The redesigned ``--backend`` option group and its deprecated
    ``--shards`` / ``--compact`` aliases."""

    def test_backend_compact(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--k", "2", "--backend", "compact"]) == 0
        captured = capsys.readouterr()
        assert "compact" in captured.out
        assert "deprecated" not in captured.err

    def test_backend_sharded_with_count(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--backend", "sharded", "--shard-count", "3"]) == 0
        captured = capsys.readouterr()
        assert "3 shard(s)" in captured.out
        assert "deprecated" not in captured.err

    def test_compact_alias_warns_once(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--compact"]) == 0
        err = capsys.readouterr().err
        assert err.count("deprecated") == 1
        assert "--backend compact" in err

    def test_shards_alias_warns_once(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--shards", "2"]) == 0
        captured = capsys.readouterr()
        assert "2 shard(s)" in captured.out
        assert captured.err.count("deprecated") == 1
        assert "--backend sharded --shard-count" in captured.err

    def test_shards_zero_means_unsharded(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--shards", "0"]) == 0
        assert "unsharded" in capsys.readouterr().out

    def test_alias_conflicts_with_backend(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--compact", "--backend", "disk"]) == 1
        assert "--compact conflicts with --backend disk" in \
            capsys.readouterr().err
        assert main(["query", str(saved_graph), "--query", "5",
                     "--shards", "2", "--backend", "compact"]) == 1
        assert "--shards conflicts with --backend compact" in \
            capsys.readouterr().err

    def test_bad_shard_count_rejected(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--backend", "sharded", "--shard-count", "0"]) == 1
        assert "--shard-count must be >= 1" in capsys.readouterr().err

    def test_threshold_requires_compact_backend(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--compact-threshold", "3"]) == 1
        assert "--compact-threshold requires the compact backend" in \
            capsys.readouterr().err


class TestExecuteStatements:
    """``repro query -e``: qlang statements from the command line."""

    def test_single_statement(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "-e",
                     "SELECT * FROM rknn(query=5, k=2)"]) == 0
        out = capsys.readouterr().out
        assert "rknn(5) k=2 ->" in out
        assert "1 statement(s)" in out

    def test_statement_matches_query_flag(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--k", "2"]) == 0
        direct = capsys.readouterr().out.splitlines()[0]
        answer = direct.split(" = ")[1]
        assert main(["query", str(saved_graph), "-e",
                     "SELECT * FROM rknn(query=5, k=2)"]) == 0
        assert answer in capsys.readouterr().out

    def test_script_prints_one_line_per_statement(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "-e",
                     "SELECT * FROM knn(query=5, k=2); "
                     "SELECT * FROM topk_influence(k=1) LIMIT 3"]) == 0
        out = capsys.readouterr().out
        assert "knn(5) k=2 ->" in out
        assert "topk_influence() k=1 ->" in out
        assert "2 statement(s)" in out

    def test_statements_identical_across_backends(self, saved_graph, capsys):
        script = ("SELECT * FROM topk_influence(k=1) LIMIT 3; "
                  "SELECT * FROM aggregate_nn(group=[5, 9], k=2); "
                  "SELECT * FROM rknn(query=5, k=2) WHERE distance < 6.0")
        outputs = set()
        for flags in (["--backend", "disk"],
                      ["--backend", "sharded", "--shard-count", "3"],
                      ["--backend", "compact"]):
            assert main(["query", str(saved_graph), *flags,
                         "-e", script]) == 0
            lines = capsys.readouterr().out.splitlines()
            outputs.add("\n".join(lines[:-1]))  # cost line names the backend
        assert len(outputs) == 1

    def test_requires_exactly_one_input_form(self, saved_graph, capsys):
        assert main(["query", str(saved_graph)]) == 1
        assert "exactly one of --query or -e" in capsys.readouterr().err
        assert main(["query", str(saved_graph), "--query", "5",
                     "-e", "SELECT * FROM knn(query=5)"]) == 1
        assert "exactly one of --query or -e" in capsys.readouterr().err

    def test_bad_statement_reports_position(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "-e", "SELECT nope"]) == 1
        assert "qlang syntax error at 1:8" in capsys.readouterr().err

    def test_unknown_function_reports_allowed_set(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "-e",
                     "SELECT * FROM nope(query=1)"]) == 1
        err = capsys.readouterr().err
        assert "unknown query function 'nope'" in err
        assert "topk_influence" in err

    def test_explain_prints_answer_then_payload(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "-e",
                     "EXPLAIN SELECT * FROM rknn(query=5, k=2)"]) == 0
        out = capsys.readouterr().out
        assert "rknn(5) k=2 ->" in out
        payload = json.loads(out[out.index("{"):out.rindex("}") + 1])
        assert payload["explain"] is True
        assert payload["plan"]["backend"] == "disk"
        names = {span["name"] for span in payload["trace"]["spans"]}
        assert "execute.rknn" in names

    def test_explain_mixes_with_plain_statements(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "-e",
                     "SELECT * FROM knn(query=5, k=2); "
                     "EXPLAIN SELECT * FROM rknn(query=5, k=2)"]) == 0
        out = capsys.readouterr().out
        assert "knn(5) k=2 ->" in out
        assert "2 statement(s)" in out
        assert '"explain": true' in out


class TestTrace:
    """``repro trace``: pretty-print a saved span tree."""

    def explain_payload(self, saved_graph, capsys) -> dict:
        assert main(["query", str(saved_graph), "-e",
                     "EXPLAIN SELECT * FROM rknn(query=5, k=2)"]) == 0
        out = capsys.readouterr().out
        return json.loads(out[out.index("{"):out.rindex("}") + 1])

    def test_renders_an_indented_span_tree(self, saved_graph, tmp_path,
                                           capsys):
        payload = self.explain_payload(saved_graph, capsys)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(payload))
        assert main(["trace", str(path)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("engine.run_batch")
        assert any(line.startswith("  ") and "execute.rknn" in line
                   for line in lines)

    def test_accepts_a_bare_trace_payload(self, saved_graph, tmp_path,
                                          capsys):
        payload = self.explain_payload(saved_graph, capsys)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(payload["trace"]))
        assert main(["trace", str(path)]) == 0
        assert "engine.run_batch" in capsys.readouterr().out

    def test_empty_trace_prints_placeholder(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"spans": []}))
        assert main(["trace", str(path)]) == 0
        assert "(empty trace)" in capsys.readouterr().out

    def test_unreadable_file_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text("{broken")
        assert main(["trace", str(path)]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["trace", str(tmp_path / "missing.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestServeObservabilityFlags:
    def test_negative_slow_query_threshold_rejected(self, saved_graph,
                                                    capsys):
        assert main(["serve", str(saved_graph), "--slow-query-log",
                     "slow.jsonl", "--slow-query-ms", "-5"]) == 1
        assert "--slow-query-ms" in capsys.readouterr().err

    def test_slow_query_log_refused_in_fleet_mode(self, saved_graph,
                                                  capsys):
        assert main(["serve", str(saved_graph), "--workers", "2",
                     "--slow-query-log", "slow.jsonl"]) == 1
        assert "single-process" in capsys.readouterr().err


class TestBatch:
    @pytest.fixture
    def specs_file(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        path.write_text(
            "# a mixed batch\n"
            '{"kind": "rknn", "query": 7, "k": 2, "method": "eager"}\n'
            '{"kind": "knn", "query": 3, "k": 3}\n'
            '{"kind": "range", "query": 5, "k": 2, "radius": 8.0}\n'
            '{"kind": "rknn", "query": 7, "k": 2, "method": "eager"}\n'
        )
        return path

    def test_executes_batch(self, saved_graph, specs_file, capsys):
        assert main(["batch", str(saved_graph), "--specs", str(specs_file),
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "rknn(7)" in out and "knn(3)" in out and "range(5)" in out
        assert "1 cache hits / 3 misses" in out  # the duplicate rknn line

    def test_repeat_exercises_cache(self, saved_graph, specs_file, capsys):
        assert main(["batch", str(saved_graph), "--specs", str(specs_file),
                     "--repeat", "2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "round 1/2" in out and "round 2/2" in out
        assert "4 cache hits / 0 misses" in out  # second round fully cached

    def test_quiet_prints_only_summary(self, saved_graph, specs_file, capsys):
        assert main(["batch", str(saved_graph), "--specs", str(specs_file),
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "rknn(7)" not in out
        assert "queries in" in out

    def test_matches_single_queries(self, saved_graph, specs_file, capsys):
        main(["query", str(saved_graph), "--query", "7", "--k", "2"])
        want = capsys.readouterr().out.splitlines()[0]  # "R2NN(7) = [...]"
        answer = want.split(" = ")[1]
        main(["batch", str(saved_graph), "--specs", str(specs_file)])
        batch_out = capsys.readouterr().out
        assert f"rknn(7) k=2 -> {answer}" in batch_out

    def test_missing_file_is_an_error(self, saved_graph, capsys):
        assert main(["batch", str(saved_graph), "--specs", "/nope.jsonl"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_empty_file_is_an_error(self, saved_graph, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("# nothing\n")
        assert main(["batch", str(saved_graph), "--specs", str(empty)]) == 1
        assert "no query specs" in capsys.readouterr().err

    def test_sharded_backend_matches_unsharded(self, saved_graph, specs_file,
                                               capsys):
        assert main(["batch", str(saved_graph), "--specs", str(specs_file)]) == 0
        unsharded = [line for line in capsys.readouterr().out.splitlines()
                     if "->" in line]
        assert main(["batch", str(saved_graph), "--specs", str(specs_file),
                     "--shards", "4", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        sharded = [line for line in out.splitlines() if "->" in line]
        # identical answers (the per-line I/O counts may differ)
        def strip(lines):
            return [line.split(" [")[0] for line in lines]
        assert strip(sharded) == strip(unsharded)
        assert "4 shard(s)" in out
        assert "shard 0:" in out and "shard 3:" in out

    def test_negative_shards_is_an_error(self, saved_graph, specs_file, capsys):
        assert main(["batch", str(saved_graph), "--specs", str(specs_file),
                     "--shards", "-1"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_sharded_rejects_edge_points(self, tmp_path, specs_file, capsys):
        path = tmp_path / "edge.graph"
        assert main(["generate", "--kind", "grid", "--nodes", "100",
                     "--density", "0.1", "--placement", "edge",
                     "-o", str(path)]) == 0
        capsys.readouterr()
        assert main(["batch", str(path), "--specs", str(specs_file),
                     "--shards", "2"]) == 1
        assert "restricted" in capsys.readouterr().err


class TestShardBuild:
    def test_reports_layout(self, saved_graph, capsys):
        assert main(["shard", "build", str(saved_graph), "--shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "into 4 shard(s)" in out
        assert "cut edges" in out
        for shard_id in range(4):
            assert f"shard {shard_id}:" in out

    def test_writes_assignment(self, saved_graph, tmp_path, capsys):
        target = tmp_path / "assignment.txt"
        assert main(["shard", "build", str(saved_graph), "--shards", "3",
                     "--assignment", str(target)]) == 0
        lines = target.read_text().splitlines()
        assert len(lines) == 100  # one line per node
        shards = {int(line.split()[1]) for line in lines}
        assert shards == {0, 1, 2}

    def test_single_shard_has_no_cut(self, saved_graph, capsys):
        assert main(["shard", "build", str(saved_graph), "--shards", "1"]) == 0
        assert "0 cut edges" in capsys.readouterr().out

    def test_too_many_shards_is_an_error(self, saved_graph, capsys):
        assert main(["shard", "build", str(saved_graph),
                     "--shards", "5000"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_spec_reports_line(self, saved_graph, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "knn", "query": 1}\n{"kind": "warp"}\n')
        assert main(["batch", str(saved_graph), "--specs", str(bad)]) == 1
        assert "line 2" in capsys.readouterr().err


class TestOracleBuild:
    def test_reports_layout_and_cost(self, saved_graph, capsys):
        assert main(["oracle", "build", str(saved_graph),
                     "--landmarks", "5"]) == 0
        out = capsys.readouterr().out
        assert "selected 5 landmarks (farthest):" in out
        assert "500 (landmark, node) distances" in out
        assert "pages on the disk store" in out
        assert "build cost:" in out

    @pytest.mark.parametrize("backend", ["sharded", "compact"])
    def test_alternate_backends(self, saved_graph, backend, capsys):
        assert main(["oracle", "build", str(saved_graph),
                     "--landmarks", "3", "--backend", backend,
                     "--strategy", "random"]) == 0
        out = capsys.readouterr().out
        assert "selected 3 landmarks (random):" in out
        assert f"on the {backend} store" in out

    def test_rejects_edge_point_data_sets(self, tmp_path, capsys):
        path = tmp_path / "edge.graph"
        assert main(["generate", "--kind", "grid", "--nodes", "100",
                     "--density", "0.1", "--placement", "edge",
                     "-o", str(path)]) == 0
        capsys.readouterr()
        assert main(["oracle", "build", str(path)]) == 1
        assert "restricted" in capsys.readouterr().err

    def test_batch_with_oracle_matches_plain(self, saved_graph, tmp_path,
                                             capsys):
        specs = tmp_path / "queries.jsonl"
        specs.write_text(
            '{"kind": "rknn", "query": 7, "k": 2}\n'
            '{"kind": "knn", "query": 3, "k": 3}\n'
        )
        assert main(["batch", str(saved_graph), "--specs", str(specs)]) == 0
        plain = [line.split(" [")[0] for line
                 in capsys.readouterr().out.splitlines() if "->" in line]
        assert main(["batch", str(saved_graph), "--specs", str(specs),
                     "--oracle", "--oracle-landmarks", "4"]) == 0
        out = capsys.readouterr().out
        oracled = [line.split(" [")[0] for line in out.splitlines()
                   if "->" in line]
        assert oracled == plain
        assert "oracle: 4 landmarks" in out

    def test_batch_oracle_composes_with_compact(self, saved_graph, tmp_path,
                                                capsys):
        specs = tmp_path / "queries.jsonl"
        specs.write_text('{"kind": "rknn", "query": 7, "k": 1}\n')
        assert main(["batch", str(saved_graph), "--specs", str(specs),
                     "--compact", "--oracle", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "oracle: 8 landmarks" in out and "compact" in out


class TestRecommend:
    def test_recommends(self, saved_graph, capsys):
        assert main(["recommend", str(saved_graph), "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "recommended method:" in out
        assert "hop-ball growth" in out

    def test_error_paths(self, tmp_path, capsys):
        missing = tmp_path / "nope.graph"
        with pytest.raises(FileNotFoundError):
            main(["info", str(missing)])


class TestReport:
    def test_prints_characterization(self, saved_graph, capsys):
        assert main(["report", str(saved_graph)]) == 0
        out = capsys.readouterr().out
        assert "|V| = " in out and "density" in out and "expansion:" in out


class TestPath:
    @pytest.fixture
    def spatial_file(self, tmp_path):
        path = tmp_path / "sp.graph"
        main(["generate", "--kind", "spatial", "--nodes", "300",
              "--density", "0.05", "--seed", "2", "-o", str(path)])
        return path

    def test_all_searches_agree(self, spatial_file, capsys):
        capsys.readouterr()
        distances = set()
        for search in ("dijkstra", "astar", "alt", "bidirectional"):
            assert main(["path", str(spatial_file), "--source", "0",
                         "--target", "50", "--search", search]) == 0
            out = capsys.readouterr().out
            distances.add(out.splitlines()[0].split()[1])
        assert len(distances) == 1

    def test_path_line_lists_nodes(self, spatial_file, capsys):
        capsys.readouterr()
        main(["path", str(spatial_file), "--source", "0", "--target", "10"])
        out = capsys.readouterr().out
        assert "path: 0 ->" in out

    def test_out_of_range_node_is_an_error(self, spatial_file, capsys):
        assert main(["path", str(spatial_file), "--source", "0",
                     "--target", "99999"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_astar_without_coords_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "b.graph"
        main(["generate", "--kind", "brite", "--nodes", "120",
              "--density", "0.05", "-o", str(path)])
        capsys.readouterr()
        assert main(["path", str(path), "--source", "0", "--target", "5",
                     "--search", "astar"]) == 1
        assert "coordinates" in capsys.readouterr().err


class TestPlan:
    def test_prints_calibration(self, saved_graph, capsys):
        assert main(["plan", str(saved_graph), "--k", "1",
                     "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "plan for k=1" in out
        assert "->" in out

    def test_materialize_enables_eager_m(self, saved_graph, capsys):
        assert main(["plan", str(saved_graph), "--k", "1", "--samples", "2",
                     "--materialize", "2"]) == 0
        assert "eager-m" in capsys.readouterr().out

    def test_plan_without_points_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "bare.graph"
        main(["generate", "--kind", "grid", "--nodes", "64",
              "--density", "0", "-o", str(path)])
        capsys.readouterr()
        assert main(["plan", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestCompactCompact:
    """The ``compact compact`` verb: apply a mutation log, fold it."""

    def _targets(self, saved_graph):
        """A free node and a missing edge of the saved grid network."""
        from repro.graph.io import load_graph

        graph, points = load_graph(saved_graph)
        taken = {node for _, node in points.items()}
        free = next(n for n in range(graph.num_nodes) if n not in taken)
        missing = next(
            (a, b)
            for a in range(graph.num_nodes)
            for b in range(a + 1, graph.num_nodes)
            if not graph.has_edge(a, b)
        )
        return free, missing

    def test_folds_a_mutation_log(self, saved_graph, tmp_path, capsys):
        free, (a, b) = self._targets(saved_graph)
        log = tmp_path / "mutations.jsonl"
        log.write_text(
            f'{{"op": "insert", "pid": 900, "node": {free}}}\n'
            "\n"
            f'{{"op": "insert-edge", "u": {a}, "v": {b}, "weight": 2.5}}\n'
            f'{{"op": "delete-edge", "u": {a}, "v": {b}}}\n'
            '{"op": "delete", "pid": 900}\n'
        )
        assert main(["compact", "compact", str(saved_graph),
                     "--mutations", str(log)]) == 0
        out = capsys.readouterr().out
        assert "applied 4 mutation(s)" in out
        assert "stamp (0, 4), 4 pending delta op(s)" in out
        assert "folded 4 delta op(s) into base generation 1" in out
        assert "stamp (1, 0)" in out
        assert "never drains" in out

    def test_empty_log_is_idempotent(self, saved_graph, capsys):
        assert main(["compact", "compact", str(saved_graph)]) == 0
        out = capsys.readouterr().out
        assert "applied 0 mutation(s)" in out
        assert "folded 0 delta op(s)" in out

    def test_threshold_autocompacts_while_applying(self, saved_graph,
                                                   tmp_path, capsys):
        free, _ = self._targets(saved_graph)
        log = tmp_path / "mutations.jsonl"
        log.write_text(
            f'{{"op": "insert", "pid": 900, "node": {free}}}\n'
            '{"op": "delete", "pid": 900}\n'
        )
        assert main(["compact", "compact", str(saved_graph),
                     "--mutations", str(log), "--threshold", "1"]) == 0
        out = capsys.readouterr().out
        assert "stamp (2, 0), 0 pending delta op(s)" in out

    def test_bad_mutation_reports_file_and_line(self, saved_graph, tmp_path,
                                                capsys):
        log = tmp_path / "mutations.jsonl"
        log.write_text('{"op": "insert", "pid": 900, "node": 0}\n'
                       '{"op": "frobnicate"}\n')
        assert main(["compact", "compact", str(saved_graph),
                     "--mutations", str(log)]) == 1
        err = capsys.readouterr().err
        assert "mutations.jsonl:2: bad mutation" in err

    def test_query_threshold_requires_compact_backend(self, saved_graph,
                                                      capsys):
        assert main(["query", str(saved_graph), "--query", "5",
                     "--compact-threshold", "2"]) == 1
        assert "--compact-threshold requires the compact backend" in \
            capsys.readouterr().err

    def test_query_accepts_threshold_with_compact(self, saved_graph, capsys):
        assert main(["query", str(saved_graph), "--query", "5", "--k", "2",
                     "--compact", "--compact-threshold", "4"]) == 0
        assert "R2NN(5)" in capsys.readouterr().out
