"""Unit surface of the vectorized batch RkNN kernel.

The randomized differential layers live in ``tests/conformance`` and
``tests/compact/test_batch_kernel_properties.py``; this module pins
the deterministic surface: validation parity with the scalar facade,
the numpy-free scalar fallback, oracle-filtered batches, the engine's
dispatch rules, and the zero-copy view plumbing (CSR ``flat()``
views, oracle label matrix) the kernel rides on.
"""

import random

import pytest

from repro import (
    CompactDatabase,
    CompactDirectedDatabase,
    NodePointSet,
    QuerySpec,
)
from repro.compact.batch import numpy_available
from repro.datasets.grid import generate_grid
from repro.datasets.workload import place_node_points
from repro.engine.planner import kernel_batch_kinds
from repro.errors import QueryError
from repro.graph.digraph import DiGraph


@pytest.fixture(scope="module")
def undirected():
    graph = generate_grid(100, average_degree=4.0, seed=3)
    points = place_node_points(graph, 0.1, seed=4)
    return graph, points


@pytest.fixture(scope="module")
def directed():
    rng = random.Random(11)
    arcs = [(i, (i + 1) % 30, float(rng.randint(1, 9))) for i in range(30)]
    arcs += [(rng.randrange(30), rng.randrange(30), float(rng.randint(1, 9)))
             for _ in range(60)]
    arcs = list({(u, v): (u, v, w) for u, v, w in arcs if u != v}.values())
    graph = DiGraph.from_arcs(arcs, num_nodes=30)
    points = NodePointSet({pid: node for pid, node in
                           enumerate(rng.sample(range(30), 6))})
    return graph, points


def _specs(queries, k=2, method="eager"):
    return [QuerySpec("rknn", query=q, k=k, method=method) for q in queries]


def _points_of(results):
    return [result.points for result in results]


def test_batch_matches_scalar_with_oracle(undirected):
    graph, points = undirected
    db = CompactDatabase(graph, points)
    db.build_oracle(4, seed=0)
    specs = _specs((3, 17, 42, 66, 91)) + [
        QuerySpec("rknn", query=25, k=1, method="lazy",
                  exclude=frozenset({0})),
    ]
    scalar = [db.rknn(s.query, s.k, method=s.method, exclude=s.exclude).points
              for s in specs]
    assert _points_of(db.batch_rknn(specs)) == scalar


def test_batch_serves_continuous_specs(undirected):
    graph, points = undirected
    db = CompactDatabase(graph, points)
    route = [0]
    for _ in range(3):
        route.append(graph.neighbors(route[-1])[0][0])
    specs = _specs((3, 17)) + [
        QuerySpec("continuous", route=tuple(route), k=1, method="eager"),
    ]
    expected = [
        db.rknn(3, 2).points,
        db.rknn(17, 2).points,
        db.continuous_rknn(route, 1).points,
    ]
    assert _points_of(db.batch_rknn(specs)) == expected


def test_empty_batch_returns_empty_tuple(undirected):
    graph, points = undirected
    assert CompactDatabase(graph, points).batch_rknn([]) == ()


def test_empty_point_set_yields_empty_answers(undirected):
    graph, _ = undirected
    db = CompactDatabase(graph, NodePointSet({}))
    results = db.batch_rknn(_specs((3, 17)))
    assert _points_of(results) == [(), ()]


def test_unsupported_kind_rejected(undirected):
    graph, points = undirected
    db = CompactDatabase(graph, points)
    with pytest.raises(QueryError, match="serves kinds"):
        db.batch_rknn([QuerySpec("knn", query=3, k=1)])


def test_unknown_method_rejected(undirected):
    graph, points = undirected
    db = CompactDatabase(graph, points)
    with pytest.raises(QueryError, match="unknown method"):
        db.batch_rknn([QuerySpec("rknn", query=3, k=1, method="bogus")])


def test_out_of_range_query_rejected(undirected):
    graph, points = undirected
    db = CompactDatabase(graph, points)
    with pytest.raises(QueryError, match="out of range"):
        db.batch_rknn(_specs((3, 4000)))


def test_eager_m_requires_materialization(undirected):
    graph, points = undirected
    db = CompactDatabase(graph, points)
    with pytest.raises(QueryError, match="materialize"):
        db.batch_rknn(_specs((3, 17), method="eager-m"))


def test_eager_m_capacity_enforced(undirected):
    graph, points = undirected
    db = CompactDatabase(graph, points)
    db.materialize(2)
    with pytest.raises(QueryError, match="materialized capacity"):
        db.batch_rknn(_specs((3, 17), k=3, method="eager-m"))


def test_scalar_fallback_without_numpy(undirected, monkeypatch):
    graph, points = undirected
    db = CompactDatabase(graph, points)
    specs = _specs((3, 17, 42))
    vectorized = _points_of(db.batch_rknn(specs))
    monkeypatch.setattr("repro.compact.db.numpy_available", lambda: False)
    fallback = db.batch_rknn(specs)
    assert _points_of(fallback) == vectorized
    assert all(result.io == 0 for result in fallback)


def test_directed_batch_matches_scalar(directed):
    graph, points = directed
    db = CompactDirectedDatabase(graph, points)
    db.materialize(2)
    specs = []
    for query in (0, 7, 19, 23):
        for method in ("eager", "eager-m", "naive"):
            specs.append(QuerySpec("rknn", query=query, k=2, method=method))
    scalar = [db.rknn(s.query, s.k, method=s.method).points for s in specs]
    assert _points_of(db.batch_rknn(specs)) == scalar


def test_directed_validation_and_fallback(directed, monkeypatch):
    graph, points = directed
    db = CompactDirectedDatabase(graph, points)
    with pytest.raises(QueryError, match="serves kinds"):
        db.batch_rknn([QuerySpec("knn", query=0, k=1)])
    db.materialize(1)
    with pytest.raises(QueryError, match="materialized capacity"):
        db.batch_rknn(_specs((0, 7), k=2, method="eager-m"))
    assert db.batch_rknn([]) == ()

    specs = _specs((0, 7, 19))
    vectorized = _points_of(db.batch_rknn(specs))
    monkeypatch.setattr("repro.compact.db.numpy_available", lambda: False)
    assert _points_of(db.batch_rknn(specs)) == vectorized


def test_engine_dispatch_rules(undirected):
    graph, points = undirected
    db = CompactDatabase(graph, points)
    specs = _specs((3, 17, 42, 66))

    baseline = [db.rknn(s.query, s.k, method=s.method).points for s in specs]
    for batch_kernel in (True, False):
        engine = db.engine(batch_kernel=batch_kernel, cache_entries=0)
        outcome = engine.run_batch(specs)
        assert _points_of(outcome.results) == baseline

    # a single batchable spec takes the scalar path (no kernel overhead)
    solo = db.engine(cache_entries=0).run_batch(specs[:1])
    assert _points_of(solo.results) == baseline[:1]


def test_kernel_batch_kinds_advertisement(undirected):
    graph, points = undirected
    from repro import GraphDatabase

    compact = CompactDatabase(graph, points)
    assert kernel_batch_kinds(compact) == ("rknn", "continuous")
    assert kernel_batch_kinds(GraphDatabase(graph, points)) == ()

    directed_graph = DiGraph.from_arcs([(0, 1, 1.0), (1, 0, 2.0)],
                                       num_nodes=2)
    directed_db = CompactDirectedDatabase(directed_graph, NodePointSet({}))
    assert kernel_batch_kinds(directed_db) == ("rknn",)


def test_csr_flat_views_are_memoized(undirected, directed):
    graph, points = undirected
    csr = CompactDatabase(graph, points).store.csr
    assert csr.flat() is csr.flat()
    offsets, targets, weights = csr.flat()
    assert len(offsets) == graph.num_nodes + 1
    assert len(targets) == len(weights) == int(offsets[-1])

    dgraph, dpoints = directed
    dcsr = CompactDirectedDatabase(dgraph, dpoints).store.csr
    assert dcsr.out_flat() is dcsr.out_flat()
    assert dcsr.in_flat() is dcsr.in_flat()
    out_offsets, _, _ = dcsr.out_flat()
    in_offsets, _, _ = dcsr.in_flat()
    assert int(out_offsets[-1]) == int(in_offsets[-1]) == dgraph.num_arcs


def test_oracle_labels_matrix_view(undirected):
    graph, points = undirected
    db = CompactDatabase(graph, points)
    db.build_oracle(4, seed=0)
    matrix = db.oracle.labels_matrix()
    assert matrix is db.oracle.labels_matrix()
    assert matrix.shape == (graph.num_nodes, db.oracle.num_landmarks)
    assert not matrix.flags.writeable
    assert tuple(matrix[5]) == db.oracle.label(5)


def test_numpy_reported_available():
    assert numpy_available()
