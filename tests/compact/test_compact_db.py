"""The compact facades: parity, sessions, updates, validation."""

import random

import pytest

from repro import (
    CompactDatabase,
    CompactDirectedDatabase,
    DirectedGraphDatabase,
    GraphDatabase,
    NodePointSet,
)
from repro.errors import QueryError, StorageError
from repro.graph.digraph import DiGraph
from repro.points.points import EdgePointSet
from tests.conftest import build_random_graph


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(42)
    graph = build_random_graph(rng, 70, 55)
    points = NodePointSet(
        {pid: node for pid, node in enumerate(rng.sample(range(70), 14))}
    )
    reference = NodePointSet(
        {100 + i: node for i, node in enumerate(rng.sample(range(70), 9))}
    )
    queries = rng.sample(range(70), 10)
    return graph, points, reference, queries


@pytest.fixture(scope="module")
def compact(setup):
    graph, points, reference, _ = setup
    db = CompactDatabase(graph, points)
    db.attach_reference(reference)
    db.materialize(4)
    db.materialize_reference(4)
    return db


@pytest.fixture(scope="module")
def disk(setup):
    graph, points, reference, _ = setup
    db = GraphDatabase(graph, points)
    db.attach_reference(reference)
    db.materialize(4)
    db.materialize_reference(4)
    return db


class TestCompactParity:
    @pytest.mark.parametrize("method", ["eager", "lazy", "lazy-ep", "eager-m"])
    def test_rknn_matches_disk(self, setup, compact, disk, method):
        _, _, _, queries = setup
        for query in queries:
            for k in (1, 2, 3):
                assert (compact.rknn(query, k, method=method).points
                        == disk.rknn(query, k, method=method).points)

    @pytest.mark.parametrize("method", ["eager", "lazy", "eager-m"])
    def test_bichromatic_matches_disk(self, setup, compact, disk, method):
        _, _, _, queries = setup
        for query in queries:
            assert (compact.bichromatic_rknn(query, 2, method=method).points
                    == disk.bichromatic_rknn(query, 2, method=method).points)

    def test_knn_and_range_match_disk(self, setup, compact, disk):
        _, _, _, queries = setup
        for query in queries:
            assert compact.knn(query, 3).neighbors == disk.knn(query, 3).neighbors
            assert (compact.range_nn(query, 3, 6.0).neighbors
                    == disk.range_nn(query, 3, 6.0).neighbors)

    def test_continuous_matches_disk(self, setup, compact, disk):
        graph, _, _, queries = setup
        route = [queries[0]]
        while len(route) < 4:
            route.append(graph.neighbors(route[-1])[0][0])
        assert (compact.continuous_rknn(route, 2).points
                == disk.continuous_rknn(route, 2).points)

    def test_queries_perform_no_io(self, setup, compact):
        _, _, _, queries = setup
        result = compact.rknn(queries[0], 2)
        assert result.io == 0
        assert result.counters.page_reads == 0
        assert result.counters.buffer_hits == 0
        assert result.counters.nodes_visited > 0

    def test_from_database_promotes_disk_store(self, setup, disk):
        _, _, _, queries = setup
        promoted = CompactDatabase.from_database(disk)
        for query in queries[:4]:
            assert promoted.rknn(query, 2).points == disk.rknn(query, 2).points


class TestCompactSessions:
    def test_read_clone_shares_arrays(self, compact):
        clone = compact.read_clone()
        assert clone.store is compact.store
        assert clone.store.csr is compact.store.csr
        assert clone.tracker is not compact.tracker

    def test_clone_counters_are_private(self, setup, compact):
        _, _, _, queries = setup
        clone = compact.read_clone()
        before = compact.tracker.snapshot()
        result = clone.rknn(queries[0], 1)
        assert result.counters.nodes_visited > 0
        assert compact.tracker.nodes_visited == before.nodes_visited

    def test_clear_buffer_is_a_noop(self, setup, compact):
        _, _, _, queries = setup
        first = compact.rknn(queries[1], 1).points
        compact.clear_buffer()
        assert compact.rknn(queries[1], 1).points == first

    def test_backend_tag(self, compact):
        assert compact.backend == "compact"
        assert compact.engine().backend == "compact"


class TestCompactUpdates:
    def test_updates_track_disk_database(self, setup):
        graph, points, _, queries = setup
        compact = CompactDatabase(graph, points)
        disk = GraphDatabase(graph, points)
        compact.materialize(3)
        disk.materialize(3)
        used = {node for _, node in points.items()}
        free = next(v for v in range(graph.num_nodes) if v not in used)
        for db in (compact, disk):
            db.insert_point(500, free)
            db.delete_point(2)
        for query in queries[:5]:
            assert (compact.rknn(query, 2, method="eager-m").points
                    == disk.rknn(query, 2, method="eager-m").points)

    def test_updates_bump_generation(self, setup):
        graph, points, _, _ = setup
        db = CompactDatabase(graph, points)
        used = {node for _, node in points.items()}
        free = next(v for v in range(graph.num_nodes) if v not in used)
        generation = db.generation
        db.insert_point(700, free)
        assert db.generation == generation + 1
        db.delete_point(700)
        assert db.generation == generation + 2


class TestCompactValidation:
    def test_rejects_edge_points(self, setup):
        graph, _, _, _ = setup
        edge = next(graph.edges())
        points = EdgePointSet({0: (edge[0], edge[1], edge[2] / 2)})
        with pytest.raises(QueryError, match="restricted"):
            CompactDatabase(graph, points)

    def test_rejects_bad_queries(self, compact, setup):
        graph, _, _, _ = setup
        with pytest.raises(QueryError, match="unknown method"):
            compact.rknn(0, 1, method="nope")
        with pytest.raises(QueryError, match="k must be"):
            compact.rknn(0, 0)
        with pytest.raises(QueryError, match="out of range"):
            compact.rknn(graph.num_nodes, 1)
        with pytest.raises(QueryError, match="node-id"):
            compact.rknn((0, 1, 0.5), 1)

    def test_eager_m_needs_materialization(self, setup):
        graph, points, _, _ = setup
        db = CompactDatabase(graph, points)
        with pytest.raises(QueryError, match="materialize"):
            db.rknn(0, 1, method="eager-m")

    def test_bichromatic_needs_reference(self, setup):
        graph, points, _, _ = setup
        db = CompactDatabase(graph, points)
        with pytest.raises(QueryError, match="attach_reference"):
            db.bichromatic_rknn(0, 1)

    def test_bad_node_order_rejected(self, setup):
        graph, points, _, _ = setup
        with pytest.raises(QueryError, match="node_order"):
            CompactDatabase(graph, points, node_order="zigzag")


@pytest.fixture(scope="module")
def directed_setup():
    rng = random.Random(9)
    arcs, seen = [], set()
    for _ in range(260):
        u, v = rng.sample(range(45), 2)
        if (u, v) not in seen:
            seen.add((u, v))
            arcs.append((u, v, float(rng.randint(1, 9))))
    graph = DiGraph.from_arcs(arcs, num_nodes=45)
    points = NodePointSet(
        {pid: node for pid, node in enumerate(rng.sample(range(45), 9))}
    )
    queries = rng.sample(range(45), 8)
    return graph, points, queries


class TestCompactDirected:
    @pytest.mark.parametrize("method", ["eager", "eager-m", "naive"])
    def test_rknn_matches_disk(self, directed_setup, method):
        graph, points, queries = directed_setup
        disk = DirectedGraphDatabase(graph, points)
        compact = CompactDirectedDatabase(graph, points)
        disk.materialize(4)
        compact.materialize(4)
        for query in queries:
            assert (compact.rknn(query, 2, method=method).points
                    == disk.rknn(query, 2, method=method).points)

    def test_knn_range_and_updates_match_disk(self, directed_setup):
        graph, points, queries = directed_setup
        disk = DirectedGraphDatabase(graph, points)
        compact = CompactDirectedDatabase(graph, points)
        used = {node for _, node in points.items()}
        free = next(v for v in range(graph.num_nodes) if v not in used)
        for db in (disk, compact):
            db.insert_point(500, free)
            db.delete_point(1)
        for query in queries:
            assert compact.knn(query, 3).neighbors == disk.knn(query, 3).neighbors
            assert (compact.range_nn(query, 2, 7.0).neighbors
                    == disk.range_nn(query, 2, 7.0).neighbors)

    def test_sessions_and_io(self, directed_setup):
        graph, points, queries = directed_setup
        db = CompactDirectedDatabase(graph, points)
        assert db.backend == "compact"
        result = db.rknn(queries[0], 1)
        assert result.io == 0
        clone = db.read_clone()
        assert clone.store is db.store
        assert clone.rknn(queries[0], 1).points == result.points
        assert CompactDirectedDatabase.from_database(
            DirectedGraphDatabase(graph, points)
        ).rknn(queries[0], 1).points == result.points

    def test_validation(self, directed_setup):
        graph, points, _ = directed_setup
        db = CompactDirectedDatabase(graph, points)
        with pytest.raises(QueryError, match="unknown method"):
            db.rknn(0, 1, method="lazy")
        with pytest.raises(QueryError, match="materialize"):
            db.rknn(0, 1, method="eager-m")
        with pytest.raises(QueryError, match="out of range"):
            db.rknn(graph.num_nodes, 1)
        # knn is unvalidated on every backend: the store rejects the node
        with pytest.raises(StorageError, match="out of range"):
            db.knn(graph.num_nodes, 1)
