"""Hypothesis property tests for the delta overlay.

The invariant the overlay stands on: at **every** epoch of a random
mutation script, the overlay's answers are bitwise identical to a
database rebuilt from scratch out of the merged state -- base edges in
base order, minus deletions, plus insertions in append order.  The
suite drives random scripts of point and edge mutations, checks every
historical epoch through :meth:`at_epoch`, the head state, and the
post-compaction state, for RkNN and continuous queries at K in
{1, 4}, with and without an attached landmark oracle.

Every assertion message carries the generating ``seed`` so a failing
example is reproducible outside hypothesis.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CompactDatabase, NodePointSet
from repro.graph.graph import Graph, edge_key
from tests.conftest import build_random_graph

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Delta op kinds a script may draw from (edge inserts break landmark
#: lower bounds, so oracle-on scripts exclude them).
ALL_KINDS = ("insert-point", "delete-point", "insert-edge", "delete-edge")
ORACLE_SAFE_KINDS = ("insert-point", "delete-point", "delete-edge")


@st.composite
def overlay_scripts(draw, kinds=ALL_KINDS):
    """A random network, point set and mutation script.

    The script is returned as abstract steps; :func:`apply_script`
    materializes them adaptively (each step picks arguments valid in
    the state the previous steps produced).
    """
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n = draw(st.integers(min_value=16, max_value=36))
    num_points = draw(st.integers(min_value=5, max_value=8))
    steps = draw(st.lists(st.sampled_from(kinds), min_size=1, max_size=6))
    return seed, n, num_points, steps


def build_case(seed, n, num_points):
    """The base network, point set and a script RNG for one example."""
    rng = random.Random(seed)
    graph = build_random_graph(rng, n, n // 2, int_weights=True)
    points = NodePointSet({
        pid: node
        for pid, node in enumerate(rng.sample(range(n), num_points))
    })
    return graph, points, rng


def apply_script(db, graph, points, steps, rng):
    """Run ``steps`` against ``db`` while replaying them on a model.

    Returns one ``(edges, points)`` model snapshot per epoch (epoch 0
    is the pre-script state).  The model keeps merged edges in an
    insertion-ordered dict -- delete removes the key, insert appends a
    fresh key at the end -- which is exactly the adjacency order the
    overlay (and a post-compaction rebuild) must reproduce.
    """
    merged = {edge_key(u, v): (u, v, w) for u, v, w in graph.edges()}
    live_points = dict(points.items())
    next_pid = max(live_points) + 100
    snapshots = [(list(merged.values()), dict(live_points))]
    for kind in steps:
        if kind == "insert-point":
            taken = set(live_points.values())
            free = [node for node in range(graph.num_nodes)
                    if node not in taken]
            if not free:
                continue
            node = rng.choice(free)
            db.insert_point(next_pid, node)
            live_points[next_pid] = node
            next_pid += 1
        elif kind == "delete-point":
            if len(live_points) <= 2:
                continue
            pid = rng.choice(sorted(live_points))
            db.delete_point(pid)
            del live_points[pid]
        elif kind == "insert-edge":
            missing = [
                (a, b)
                for a in range(graph.num_nodes)
                for b in range(a + 1, graph.num_nodes)
                if edge_key(a, b) not in merged
            ]
            if not missing:
                continue
            u, v = rng.choice(missing)
            weight = float(rng.randint(1, 9))
            db.insert_edge(u, v, weight)
            merged[edge_key(u, v)] = (u, v, weight)
        else:  # delete-edge
            if len(merged) <= graph.num_nodes // 2:
                continue
            key = rng.choice(sorted(merged))
            u, v, _ = merged[key]
            db.delete_edge(u, v)
            del merged[key]
        snapshots.append((list(merged.values()), dict(live_points)))
    return snapshots


def reference_db(num_nodes, snapshot):
    """A from-scratch database holding one model snapshot."""
    edges, live_points = snapshot
    return CompactDatabase(Graph(num_nodes, edges),
                           NodePointSet(live_points))


def a_route(reference, rng):
    """A short random walk valid in ``reference``'s network."""
    graph = reference.graph
    starts = [n for n in range(graph.num_nodes) if graph.neighbors(n)]
    route = [rng.choice(starts)]
    for _ in range(2):
        neighbors = [nbr for nbr, _ in graph.neighbors(route[-1])
                     if nbr != route[-1]]
        if not neighbors:
            break
        route.append(rng.choice(neighbors))
    return route


def check_state(session, reference, seed, label, rng):
    """Bitwise-compare one overlay state against its rebuild."""
    ks = [1] + ([4] if len(dict(reference.points.items())) >= 4 else [])
    queries = rng.sample(range(reference.graph.num_nodes),
                         min(5, reference.graph.num_nodes))
    for k in ks:
        for query in queries:
            got = session.rknn(query, k).points
            want = reference.rknn(query, k).points
            assert got == want, (
                f"seed={seed} {label}: rknn({query}, k={k}) "
                f"gave {got}, rebuild gave {want}"
            )
        route = a_route(reference, rng)
        got = session.continuous_rknn(route, k).points
        want = reference.continuous_rknn(route, k).points
        assert got == want, (
            f"seed={seed} {label}: continuous_rknn({route}, k={k}) "
            f"gave {got}, rebuild gave {want}"
        )


@settings(**SETTINGS)
@given(overlay_scripts())
def test_overlay_matches_rebuild_at_every_epoch(case):
    """at_epoch(e) == from-scratch rebuild of the epoch-e state."""
    seed, n, num_points, steps = case
    graph, points, rng = build_case(seed, n, num_points)
    db = CompactDatabase(graph, points)
    snapshots = apply_script(db, graph, points, steps, rng)
    assert db.stamp == (0, len(snapshots) - 1), f"seed={seed}"
    for epoch, snapshot in enumerate(snapshots):
        reference = reference_db(n, snapshot)
        session = db.at_epoch(epoch)
        check_state(session, reference, seed, f"epoch {epoch}",
                    random.Random(seed + epoch))


@settings(**SETTINGS)
@given(overlay_scripts())
def test_compaction_preserves_head_answers(case):
    """compact() folds the log without changing a single answer."""
    seed, n, num_points, steps = case
    graph, points, rng = build_case(seed, n, num_points)
    db = CompactDatabase(graph, points)
    snapshots = apply_script(db, graph, points, steps, rng)
    reference = reference_db(n, snapshots[-1])
    check_state(db, reference, seed, "head", random.Random(seed))
    db.compact()
    assert db.stamp == (1, 0) or len(snapshots) == 1, f"seed={seed}"
    check_state(db, reference, seed, "post-compaction", random.Random(seed))


@settings(**SETTINGS)
@given(overlay_scripts(kinds=ORACLE_SAFE_KINDS))
def test_overlay_with_oracle_matches_oracle_free_rebuild(case):
    """Oracle pruning stays answer-preserving across the whole log.

    Edge deletions only grow shortest-path distances, so landmark
    lower bounds built on the base stay admissible; the oracle-on
    overlay must match an oracle-free rebuild at the head and after
    compaction.
    """
    seed, n, num_points, steps = case
    graph, points, rng = build_case(seed, n, num_points)
    db = CompactDatabase(graph, points)
    db.build_oracle(3)
    snapshots = apply_script(db, graph, points, steps, rng)
    assert db.oracle is not None, f"seed={seed}: oracle detached"
    reference = reference_db(n, snapshots[-1])
    check_state(db, reference, seed, "oracle head", random.Random(seed))
    db.compact()
    check_state(db, reference, seed, "oracle post-compaction",
                random.Random(seed))
