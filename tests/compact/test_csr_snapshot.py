"""On-disk CSR format and snapshot directories: bitwise round trips.

The serve fleet's correctness rests on every worker mapping the same
bytes: ``load(save(g))`` must reproduce the offsets/targets/weights
arrays **bitwise** -- with and without ``mmap=True``, for both the
undirected and the directed kernel -- and a snapshot-loaded database
must answer exactly what the database it was saved from answers.
Malformed files (truncation, foreign magic, header/offset
disagreement) must be rejected loudly, never mapped quietly.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings

from repro.compact import CompactDatabase, CSRGraph, load_snapshot
from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.points.points import NodePointSet

from tests.compact.test_csr_properties import (
    SETTINGS,
    sparse_digraphs,
    sparse_graphs,
)


def _arrays(csr):
    """The kernel's flat arrays as plain lists (storage-agnostic)."""
    return (list(csr.offsets), list(csr.targets), list(csr.weights))


@settings(**SETTINGS)
@given(graph=sparse_graphs())
@pytest.mark.parametrize("mmap", [False, True], ids=["copy", "mmap"])
def test_graph_roundtrip_is_bitwise_identical(graph, mmap, tmp_path_factory):
    from repro.compact.csr import CSRGraph

    path = tmp_path_factory.mktemp("csr") / "g.csr"
    csr = CSRGraph.from_graph(graph)
    csr.save(path)
    loaded = CSRGraph.load(path, mmap=mmap)
    assert loaded.num_nodes == csr.num_nodes
    assert loaded.num_edges == csr.num_edges
    assert _arrays(loaded) == _arrays(csr)
    # bitwise: the numpy views over both storages match exactly
    for ours, theirs in zip(csr.flat(), loaded.flat()):
        assert np.array_equal(ours, theirs)
    # behavioral: adjacency comes back in the same order
    for node in range(csr.num_nodes):
        assert loaded.neighbors(node) == csr.neighbors(node)


@settings(**SETTINGS)
@given(digraph=sparse_digraphs())
@pytest.mark.parametrize("mmap", [False, True], ids=["copy", "mmap"])
def test_digraph_roundtrip_is_bitwise_identical(digraph, mmap,
                                                tmp_path_factory):
    from repro.compact.csr import CSRDiGraph

    path = tmp_path_factory.mktemp("csr") / "g.dcsr"
    csr = CSRDiGraph.from_digraph(digraph)
    csr.save(path)
    loaded = CSRDiGraph.load(path, mmap=mmap)
    assert loaded.num_nodes == csr.num_nodes
    assert loaded.num_arcs == csr.num_arcs
    assert list(loaded._out_offsets) == list(csr._out_offsets)
    assert list(loaded._out_targets) == list(csr._out_targets)
    assert list(loaded._out_weights) == list(csr._out_weights)
    assert list(loaded._in_offsets) == list(csr._in_offsets)
    assert list(loaded._in_targets) == list(csr._in_targets)
    assert list(loaded._in_weights) == list(csr._in_weights)
    for node in range(csr.num_nodes):
        assert loaded.out_neighbors(node) == csr.out_neighbors(node)
        assert loaded.in_neighbors(node) == csr.in_neighbors(node)


def _demo_graph():
    edges = [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5), (3, 0, 1.0),
             (1, 3, 2.5), (2, 4, 1.0), (4, 5, 3.0), (5, 0, 2.0)]
    graph = Graph(6, edges, coords=[(float(v), float(-v)) for v in range(6)])
    points = NodePointSet({0: 1, 1: 4, 2: 5})
    return graph, points


class TestMalformedFiles:
    def _saved(self, tmp_path):
        graph, _ = _demo_graph()
        path = tmp_path / "g.csr"
        CSRGraph.from_graph(graph).save(path)
        return path

    @pytest.mark.parametrize("mmap", [False, True], ids=["copy", "mmap"])
    def test_truncated_file_rejected(self, tmp_path, mmap):
        path = self._saved(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-9])
        with pytest.raises(GraphError, match="truncated"):
            CSRGraph.load(path, mmap=mmap)

    def test_foreign_magic_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(b"NOPE" + blob[4:])
        with pytest.raises(GraphError, match="not a CSR file"):
            CSRGraph.load(path)

    def test_wrong_kind_rejected(self, tmp_path):
        from repro.compact.csr import CSRDiGraph

        path = self._saved(tmp_path)
        with pytest.raises(GraphError, match="other graph kind"):
            CSRDiGraph.load(path)

    def test_header_offset_disagreement_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        blob = bytearray(path.read_bytes())
        # corrupt the final offsets entry (it must equal 2|E|)
        header = 8 + 16  # magic/version/kind + the two counts
        num_nodes = struct.unpack_from("<q", blob, 8)[0]
        struct.pack_into("<q", blob, header + 8 * num_nodes, 999)
        path.write_bytes(bytes(blob))
        with pytest.raises(GraphError, match="disagree"):
            CSRGraph.load(path)


class TestSnapshotDirectory:
    def test_loaded_database_answers_identically(self, tmp_path):
        graph, points = _demo_graph()
        db = CompactDatabase(graph, points)
        root = db.save_snapshot(tmp_path / "snap")
        for mmap in (False, True):
            clone = CompactDatabase.load_snapshot(root, mmap=mmap)
            assert clone.graph.num_nodes == graph.num_nodes
            assert clone.graph.num_edges == graph.num_edges
            assert dict(clone.points.items()) == dict(points.items())
            for query in range(graph.num_nodes):
                assert (clone.rknn(query, 2).points
                        == db.rknn(query, 2).points)
                assert (clone.knn(query, 2).neighbors
                        == db.knn(query, 2).neighbors)

    def test_loaded_database_accepts_mutations(self, tmp_path):
        graph, points = _demo_graph()
        db = CompactDatabase(graph, points)
        clone = CompactDatabase.load_snapshot(db.save_snapshot(tmp_path))
        assert clone.stamp == (0, 0)
        clone.insert_point(9, 3)
        assert clone.stamp == (0, 1)
        db.insert_point(9, 3)
        for query in range(graph.num_nodes):
            assert clone.rknn(query, 1).points == db.rknn(query, 1).points
        clone.compact()
        assert clone.stamp == (1, 0)
        assert clone.rknn(3, 1).points == db.rknn(3, 1).points

    def test_pending_edge_deltas_block_save(self, tmp_path):
        from repro.errors import QueryError

        graph, points = _demo_graph()
        db = CompactDatabase(graph, points)
        db.insert_edge(0, 2, 4.0)
        with pytest.raises(QueryError, match="compact"):
            db.save_snapshot(tmp_path / "snap")
        db.compact()
        db.save_snapshot(tmp_path / "snap")

    def test_missing_meta_rejected(self, tmp_path):
        with pytest.raises(GraphError, match="no snapshot"):
            load_snapshot(tmp_path)
