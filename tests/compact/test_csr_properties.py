"""Hypothesis property tests for the CSR flat-array builders.

The compact backend's correctness rests on one invariant: flattening
never reorders, drops or rewrites an adjacency entry.  These tests
pin it from every side -- the ``Graph -> CSR -> Graph`` (and
``DiGraph -> CSR -> DiGraph``) round trip preserves adjacency order
and weights exactly, isolated vertices survive, disk-loaded kernels
match graph-built ones, and malformed input (self-loops, parallel
edges, non-positive weights) is rejected rather than silently
accepted.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compact import CSRDiGraph, CSRGraph
from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph, edge_key
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskGraph
from repro.storage.disk_directed import DiskDiGraph
from repro.storage.stats import CostTracker

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def sparse_graphs(draw, max_nodes=20):
    """A random graph, connectivity not required: isolated vertices,
    shuffled edge insertion order, mixed int/float weights."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    weight = st.one_of(
        st.integers(min_value=1, max_value=9).map(float),
        st.floats(min_value=0.25, max_value=9.75, allow_nan=False),
    )
    edges = {}
    count = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and edge_key(u, v) not in edges:
            edges[edge_key(u, v)] = draw(weight)
    order = list(edges.items())
    seed = draw(st.integers(min_value=0, max_value=2**16))
    random.Random(seed).shuffle(order)
    return Graph(n, [(u, v, w) for (u, v), w in order])


@st.composite
def sparse_digraphs(draw, max_nodes=16):
    """A random digraph with shuffled arc insertion order."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    arcs = {}
    count = draw(st.integers(min_value=0, max_value=3 * n))
    for _ in range(count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and (u, v) not in arcs:
            arcs[(u, v)] = float(draw(st.integers(min_value=1, max_value=9)))
    order = list(arcs.items())
    seed = draw(st.integers(min_value=0, max_value=2**16))
    random.Random(seed).shuffle(order)
    return DiGraph(n, [(u, v, w) for (u, v), w in order])


class TestUndirectedRoundTrip:
    @given(graph=sparse_graphs())
    @settings(**SETTINGS)
    def test_round_trip_preserves_adjacency_order_and_weights(self, graph):
        rebuilt = CSRGraph.from_graph(graph).to_graph()
        assert rebuilt.num_nodes == graph.num_nodes
        assert rebuilt.num_edges == graph.num_edges
        for node in range(graph.num_nodes):
            assert tuple(rebuilt.neighbors(node)) == tuple(graph.neighbors(node))

    @given(graph=sparse_graphs())
    @settings(**SETTINGS)
    def test_csr_reads_match_graph_reads(self, graph):
        csr = CSRGraph.from_graph(graph)
        assert csr.num_nodes == graph.num_nodes
        assert csr.num_edges == graph.num_edges
        for node in range(graph.num_nodes):
            assert csr.neighbors(node) == tuple(graph.neighbors(node))
            assert csr.degree(node) == graph.degree(node)

    @given(graph=sparse_graphs())
    @settings(**SETTINGS)
    def test_disk_loaded_kernel_matches_graph_built_kernel(self, graph):
        disk = DiskGraph(graph, BufferManager(16, CostTracker()))
        from_disk = CSRGraph.from_disk_graph(disk)
        from_graph = CSRGraph.from_graph(graph)
        for node in range(graph.num_nodes):
            assert from_disk.neighbors(node) == from_graph.neighbors(node)

    def test_isolated_vertices_survive(self):
        graph = Graph(6, [(0, 1, 2.0), (4, 5, 1.5)])  # 2 and 3 isolated
        csr = CSRGraph.from_graph(graph)
        assert csr.neighbors(2) == () and csr.neighbors(3) == ()
        rebuilt = csr.to_graph()
        assert rebuilt.num_nodes == 6
        assert tuple(rebuilt.neighbors(2)) == ()
        assert tuple(rebuilt.neighbors(0)) == ((1, 2.0),)


class TestDirectedRoundTrip:
    @given(graph=sparse_digraphs())
    @settings(**SETTINGS)
    def test_round_trip_preserves_both_directions(self, graph):
        rebuilt = CSRDiGraph.from_digraph(graph).to_digraph()
        assert rebuilt.num_nodes == graph.num_nodes
        assert rebuilt.num_arcs == graph.num_arcs
        for node in range(graph.num_nodes):
            assert tuple(rebuilt.out_neighbors(node)) == tuple(graph.out_neighbors(node))
            assert tuple(rebuilt.in_neighbors(node)) == tuple(graph.in_neighbors(node))

    @given(graph=sparse_digraphs())
    @settings(**SETTINGS)
    def test_disk_loaded_kernel_matches_digraph_built_kernel(self, graph):
        disk = DiskDiGraph(graph, BufferManager(16, CostTracker()))
        from_disk = CSRDiGraph.from_disk_digraph(disk)
        for node in range(graph.num_nodes):
            assert from_disk.out_neighbors(node) == tuple(graph.out_neighbors(node))
            assert from_disk.in_neighbors(node) == tuple(graph.in_neighbors(node))


class TestBuilderValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            CSRGraph([[(0, 1.0)]])

    def test_parallel_edge_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            CSRGraph([[(1, 2.0), (1, 3.0)], [(0, 2.0), (0, 3.0)]])

    def test_non_positive_weight_rejected(self):
        with pytest.raises(GraphError, match="non-positive"):
            CSRGraph([[(1, 0.0)], [(0, 0.0)]])

    def test_unknown_target_rejected(self):
        with pytest.raises(GraphError, match="unknown node"):
            CSRGraph([[(7, 1.0)]])

    def test_empty_node_set_rejected(self):
        with pytest.raises(GraphError, match="at least one node"):
            CSRGraph([])

    def test_asymmetric_lists_rejected(self):
        # (0 -> 1) without the mirrored entry cannot come from any
        # undirected graph
        with pytest.raises(GraphError, match="not symmetric"):
            CSRGraph([[(1, 2.0)], []])

    def test_mismatched_mirror_weight_rejected(self):
        with pytest.raises(GraphError, match="not symmetric"):
            CSRGraph([[(1, 2.0)], [(0, 3.0)]])

    def test_mismatched_direction_counts_rejected(self):
        with pytest.raises(GraphError, match="arc count"):
            CSRDiGraph([[(1, 2.0)], []], [[], []])
