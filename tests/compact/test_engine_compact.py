"""The batch engine over the compact backend: shared-array workers,
caching, planning and backend detection."""

import random

import pytest

from repro import (
    CompactDatabase,
    GraphDatabase,
    NodePointSet,
    QuerySpec,
    ShardedDatabase,
)
from repro.engine.planner import backend_of
from tests.conftest import build_random_graph


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(17)
    graph = build_random_graph(rng, 60, 45)
    points = NodePointSet(
        {pid: node for pid, node in enumerate(rng.sample(range(60), 12))}
    )
    specs = []
    for query in rng.sample(range(60), 10):
        specs.append(QuerySpec("rknn", query=query, k=2, method="eager"))
        specs.append(QuerySpec("knn", query=query, k=2))
        specs.append(QuerySpec("range", query=query, k=2, radius=5.0))
    return graph, points, specs


def test_backend_detection(setup):
    graph, points, _ = setup
    assert backend_of(GraphDatabase(graph, points)) == "disk"
    assert backend_of(ShardedDatabase(graph, points, num_shards=2)) == "sharded"
    assert backend_of(CompactDatabase(graph, points)) == "compact"
    assert backend_of(object()) == "disk"


def test_workers_match_sequential_and_disk_backend(setup):
    graph, points, specs = setup
    disk_results = GraphDatabase(graph, points).engine().run_batch(specs)
    compact = CompactDatabase(graph, points)

    def answers(outcome):
        return [
            result.points if hasattr(result, "points") else result.neighbors
            for result in outcome.results
        ]

    sequential = compact.engine(cache_entries=0).run_batch(specs)
    pooled = compact.engine(cache_entries=0).run_batch(specs, workers=4)
    assert answers(sequential) == answers(pooled) == answers(disk_results)
    assert pooled.io == 0  # compact workers never fault


def test_worker_counters_fold_into_parent(setup):
    graph, points, specs = setup
    compact = CompactDatabase(graph, points)
    engine = compact.engine(cache_entries=0)
    engine.run_batch(specs, workers=3)
    # the batch ran on shared-array sessions, yet the parent's global
    # accounting saw every expansion
    assert compact.tracker.nodes_visited > 0
    assert compact.tracker.page_reads == 0


def test_cache_and_generation(setup):
    graph, points, specs = setup
    compact = CompactDatabase(graph, points)
    engine = compact.engine()
    first = engine.run_batch(specs)
    again = engine.run_batch(specs)
    assert first.misses > 0
    assert again.misses == 0 and again.hits == len(specs)
    used = {node for _, node in points.items()}
    free = next(v for v in range(graph.num_nodes) if v not in used)
    compact.insert_point(900, free)
    assert engine.run_batch(specs).misses > 0  # generation invalidated


def test_planner_orders_by_locality_rank(setup):
    graph, points, specs = setup
    compact = CompactDatabase(graph, points)
    plan_on = compact.engine().run_batch(specs)
    plan_off = compact.engine(plan=False).run_batch(specs)
    assert plan_off.order == tuple(range(len(specs)))
    assert sorted(plan_on.order) == list(range(len(specs)))
