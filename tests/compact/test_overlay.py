"""Unit tests for the delta overlay: log, merged view, facade wiring.

The property suite (``test_overlay_properties.py``) proves the big
invariant -- overlay answers are bitwise identical to a from-scratch
rebuild at every epoch.  This file pins the mechanism: log bookkeeping,
merged-adjacency replay, snapshot pinning of clones, compaction
semantics, fast-path gating and the validation/error surface.
"""

import math
import random

import pytest

from repro import CompactDatabase, NodePointSet, QuerySpec
from repro.compact.overlay import DeltaOp, DeltaOverlay, OverlayGraphStore
from repro.compact.store import CompactGraphStore
from repro.errors import QueryError, StorageError
from repro.graph.graph import Graph
from repro.oracle import LowerOnlyBounds
from tests.conftest import build_random_graph


@pytest.fixture
def setup():
    rng = random.Random(7)
    graph = build_random_graph(rng, 30, 15, int_weights=True)
    points = NodePointSet({
        pid: node for pid, node in enumerate(rng.sample(range(30), 6))
    })
    return graph, points


def free_node(graph, points, skip=0):
    """A node that holds no point (restricted networks: one per node)."""
    taken = {node for _, node in points.items()}
    return [n for n in range(graph.num_nodes) if n not in taken][skip]


# -- DeltaOp / DeltaOverlay ----------------------------------------------


def test_delta_op_rejects_unknown_kind():
    with pytest.raises(QueryError, match="unknown delta op kind"):
        DeltaOp("truncate")


def test_overlay_log_bookkeeping(setup):
    _, points = setup
    overlay = DeltaOverlay(points)
    assert overlay.epoch == 0
    assert overlay.edge_op_count == 0
    assert not overlay.has_edge_inserts
    assert overlay.append(DeltaOp("insert-point", pid=50, node=1)) == 1
    assert overlay.append(DeltaOp("delete-edge", u=0, v=1)) == 2
    assert overlay.append(DeltaOp("insert-edge", u=2, v=9, weight=1.5)) == 3
    assert overlay.epoch == 3
    assert overlay.edge_op_count == 2
    assert overlay.has_edge_inserts
    assert [op.kind for op in overlay.edge_ops_at(2)] == ["delete-edge"]
    assert len(overlay.ops_at(0)) == 0


def test_overlay_points_replay(setup):
    _, points = setup
    overlay = DeltaOverlay(points)
    some_pid = next(iter(dict(points.items())))
    overlay.append(DeltaOp("insert-point", pid=77, node=3))
    overlay.append(DeltaOp("delete-point", pid=some_pid))
    assert dict(overlay.points_at(0).items()) == dict(points.items())
    at_one = dict(overlay.points_at(1).items())
    assert at_one[77] == 3 and some_pid in at_one
    at_two = dict(overlay.points_at(2).items())
    assert some_pid not in at_two and at_two[77] == 3


def test_overlay_epoch_out_of_range(setup):
    _, points = setup
    overlay = DeltaOverlay(points)
    with pytest.raises(QueryError, match="epoch 1 out of range"):
        overlay.points_at(1)
    with pytest.raises(QueryError, match="out of range"):
        overlay.ops_at(-1)


# -- OverlayGraphStore ----------------------------------------------------


def test_overlay_store_matches_rebuild_adjacency(setup):
    graph, _ = setup
    base = CompactGraphStore(graph)
    edges = list(graph.edges())
    u0, v0, _ = edges[0]
    ops = [
        DeltaOp("delete-edge", u=u0, v=v0),
        DeltaOp("insert-edge", u=3, v=27, weight=2.5),
    ]
    store = OverlayGraphStore(base, ops)
    rebuilt = Graph(
        graph.num_nodes, edges[1:] + [(3, 27, 2.5)]
    )
    for node in range(graph.num_nodes):
        assert store.neighbors(node) == tuple(rebuilt.neighbors(node)), node
    assert store.num_nodes == graph.num_nodes
    assert store.num_edges == rebuilt.num_edges
    assert store.num_pages == 0
    assert store.page_of(5) == base.page_of(5)


def test_overlay_store_untouched_nodes_share_base_tuples(setup):
    graph, _ = setup
    base = CompactGraphStore(graph)
    store = OverlayGraphStore(base, [DeltaOp("insert-edge", u=0, v=29,
                                             weight=1.0)])
    untouched = next(n for n in range(graph.num_nodes) if n not in (0, 29))
    assert store.neighbors(untouched) is base.neighbors(untouched)


def test_overlay_store_reinsert_after_delete_appends_at_end(setup):
    graph, _ = setup
    base = CompactGraphStore(graph)
    u, v, _ = next(iter(graph.edges()))
    ops = [
        DeltaOp("delete-edge", u=u, v=v),
        DeltaOp("insert-edge", u=u, v=v, weight=9.0),
    ]
    store = OverlayGraphStore(base, ops)
    assert store.neighbors(u)[-1] == (v, 9.0)
    assert sum(1 for nbr, _ in store.neighbors(u) if nbr == v) == 1


def test_overlay_store_rejects_point_ops(setup):
    graph, _ = setup
    base = CompactGraphStore(graph)
    with pytest.raises(StorageError, match="edge operations"):
        OverlayGraphStore(base, [DeltaOp("insert-point", pid=1, node=2)])


# -- facade wiring --------------------------------------------------------


def test_stamp_moves_on_append_and_compaction(setup):
    graph, points = setup
    db = CompactDatabase(graph, points)
    assert db.stamp == (0, 0)
    db.insert_point(50, 1)
    assert db.stamp == (0, 1) and db.generation == 1
    db.insert_edge(0, 29, 2.0)
    assert db.stamp == (0, 2) and db.generation == 2
    result = db.compact()
    assert result.affected_nodes == 2
    # compaction changes no observable state: stamp moves, generation
    # does not
    assert db.stamp == (1, 0) and db.generation == 2


def test_compact_is_idempotent_when_log_empty(setup):
    graph, points = setup
    db = CompactDatabase(graph, points)
    assert db.compact().affected_nodes == 0
    assert db.stamp == (0, 0)


def test_read_clone_pins_snapshot_across_append_and_compaction(setup):
    graph, points = setup
    db = CompactDatabase(graph, points)
    before = db.rknn(5, 2).points
    clone = db.read_clone()
    db.insert_point(50, free_node(graph, points))
    db.insert_edge(0, 29, 1.0)
    db.compact()
    assert clone.stamp == (0, 0)
    assert clone.rknn(5, 2).points == before
    assert db.rknn(5, 2).points != before or db.stamp == (1, 0)


def test_at_epoch_replays_each_state(setup):
    graph, points = setup
    db = CompactDatabase(graph, points)
    answers = [db.rknn(5, 2).points]
    db.insert_point(50, free_node(graph, points))
    answers.append(db.rknn(5, 2).points)
    db.delete_point(50)
    answers.append(db.rknn(5, 2).points)
    for epoch, expected in enumerate(answers):
        session = db.at_epoch(epoch)
        assert session.stamp == (0, epoch)
        assert session.rknn(5, 2).points == expected, epoch


def test_at_epoch_sessions_are_read_only(setup):
    graph, points = setup
    db = CompactDatabase(graph, points)
    db.insert_point(50, 1)
    session = db.at_epoch(0)
    for call in (
        lambda: session.insert_point(51, 2),
        lambda: session.delete_point(50),
        lambda: session.insert_edge(0, 29, 1.0),
        lambda: session.delete_edge(0, 29),
        session.compact,
    ):
        with pytest.raises(QueryError, match="read-only"):
            call()


def test_at_epoch_rejects_folded_epochs(setup):
    graph, points = setup
    db = CompactDatabase(graph, points, compact_threshold=1)
    db.insert_point(50, 1)  # auto-compacts: epoch 1 is gone
    assert db.stamp == (1, 0)
    with pytest.raises(QueryError, match="out of range"):
        db.at_epoch(1)


def test_auto_compaction_threshold(setup):
    graph, points = setup
    db = CompactDatabase(graph, points, compact_threshold=2)
    db.insert_point(50, 1)
    assert db.stamp == (0, 1) and not db.needs_compaction
    db.delete_point(50)
    assert db.stamp == (1, 0)
    with pytest.raises(QueryError, match="compact_threshold must be >= 1"):
        CompactDatabase(graph, points, compact_threshold=0)


def test_edge_mutation_validation(setup):
    graph, points = setup
    db = CompactDatabase(graph, points)
    u, v, _ = next(iter(graph.edges()))
    with pytest.raises(QueryError, match="already exists"):
        db.insert_edge(u, v, 1.0)
    with pytest.raises(QueryError, match="self-loop"):
        db.insert_edge(3, 3, 1.0)
    with pytest.raises(QueryError, match="non-positive"):
        db.insert_edge(0, 29, 0.0)
    with pytest.raises(QueryError, match="unknown node"):
        db.insert_edge(0, 999, 1.0)
    missing = next(
        (a, b)
        for a in range(graph.num_nodes)
        for b in range(a + 1, graph.num_nodes)
        if not graph.has_edge(a, b)
    )
    with pytest.raises(QueryError, match="no edge"):
        db.delete_edge(*missing)
    # a failed validation appends nothing
    assert db.stamp == (0, 0)


def test_edge_insert_detaches_oracle_and_gates_rebuild(setup):
    graph, points = setup
    db = CompactDatabase(graph, points)
    db.build_oracle(3)
    assert db.oracle is not None
    db.insert_edge(0, 29, 1.0)
    assert db.oracle is None and db.view.bounds is None
    with pytest.raises(QueryError, match="compact\\(\\) first"):
        db.build_oracle(3)
    pristine = CompactDatabase(graph, points)
    pristine.build_oracle(2)
    with pytest.raises(QueryError, match="compact\\(\\) first"):
        db.open_oracle(pristine.oracle)
    db.compact()
    assert db.build_oracle(3).landmarks


def test_edge_delete_degrades_oracle_to_lower_bounds(setup):
    graph, points = setup
    db = CompactDatabase(graph, points)
    db.build_oracle(3)
    u, v, _ = next(iter(graph.edges()))
    db.delete_edge(u, v)
    # kept, but upper bounds (stale witness paths) are disabled
    assert isinstance(db.oracle, LowerOnlyBounds)
    assert db.oracle.upper_bound(0, 1) == math.inf
    assert db.oracle.num_landmarks == 3
    db.delete_edge(*next(
        (a, b, w) for a, b, w in graph.edges() if (a, b) != (u, v)
    )[:2])
    assert not isinstance(db.oracle._inner, LowerOnlyBounds)  # no re-wrap
    rebuilt = CompactDatabase(
        Graph(graph.num_nodes,
              [e for e in graph.edges() if (e[0], e[1]) != (u, v)]),
        points,
    )
    for query in range(0, graph.num_nodes, 5):
        assert db.rknn(query, 2).points == rebuilt.rknn(query, 2).points


def test_edge_ops_drop_materialized_lists(setup):
    graph, points = setup
    db = CompactDatabase(graph, points)
    db.materialize(3)
    assert db.rknn(5, 2, method="eager-m").points is not None
    db.insert_edge(0, 29, 1.0)
    assert db.materialized is None
    with pytest.raises(QueryError, match="materialize"):
        db.rknn(5, 2, method="eager-m")


def test_pending_edge_deltas_force_scalar_batch(setup):
    graph, points = setup
    db = CompactDatabase(graph, points)
    specs = [QuerySpec("rknn", query=q, k=1) for q in (3, 9, 12, 17, 21)]
    db.insert_edge(0, 29, 1.0)
    assert not hasattr(db.store, "csr")
    batched = [r.points for r in db.batch_rknn(specs)]
    scalar = [db.rknn(s.query, s.k).points for s in specs]
    assert batched == scalar
    db.compact()
    assert hasattr(db.store, "csr")
    assert [r.points for r in db.batch_rknn(specs)] == scalar


def test_compaction_with_edge_ops_matches_overlay_bitwise(setup):
    graph, points = setup
    db = CompactDatabase(graph, points)
    edges = list(graph.edges())
    db.delete_edge(*edges[0][:2])
    db.insert_edge(3, 27, 2.5)
    db.insert_point(50, free_node(graph, points))
    overlay_answers = [db.rknn(q, 2).points for q in range(graph.num_nodes)]
    db.compact()
    compacted_answers = [db.rknn(q, 2).points for q in range(graph.num_nodes)]
    assert compacted_answers == overlay_answers
    # the rebuilt base reproduces the merged adjacency order exactly
    for node in range(graph.num_nodes):
        assert db.store.csr.neighbors(node) == tuple(db.graph.neighbors(node))


def test_attach_reference_moves_the_base_stamp(setup):
    graph, points = setup
    db = CompactDatabase(graph, points)
    before = db.stamp
    db.attach_reference(NodePointSet({0: 4, 1: 11}))
    assert db.stamp[0] == before[0] + 1
