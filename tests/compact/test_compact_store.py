"""The compact stores against the disk stores, byte for byte."""

import random

import pytest

from repro.compact import CompactDiGraphStore, CompactGraphStore, MemoryKnnStore
from repro.errors import StorageError
from repro.graph.digraph import DiGraph
from repro.graph.partition import bfs_order
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskGraph
from repro.storage.disk_directed import DiskDiGraph, weak_bfs_order
from repro.storage.stats import CostTracker
from tests.conftest import build_random_graph


@pytest.fixture(scope="module")
def graph():
    return build_random_graph(random.Random(5), 80, 60)


@pytest.fixture(scope="module")
def digraph():
    rng = random.Random(6)
    arcs, seen = [], set()
    for _ in range(300):
        u, v = rng.sample(range(50), 2)
        if (u, v) not in seen:
            seen.add((u, v))
            arcs.append((u, v, float(rng.randint(1, 9))))
    return DiGraph.from_arcs(arcs, num_nodes=50)


class TestCompactGraphStore:
    def test_neighbors_match_disk_store(self, graph):
        disk = DiskGraph(graph, BufferManager(64, CostTracker()))
        store = CompactGraphStore(graph)
        for node in range(graph.num_nodes):
            assert store.neighbors(node) == disk.neighbors(node)

    def test_from_disk_matches_disk(self, graph):
        disk = DiskGraph(graph, BufferManager(64, CostTracker()))
        store = CompactGraphStore.from_disk(disk)
        for node in range(graph.num_nodes):
            assert store.neighbors(node) == disk.neighbors(node)

    def test_from_disk_rank_matches_disk_packing(self, graph):
        # the disk packs BFS order into pages, so a disk-loaded store
        # must rank nodes exactly as a graph-built store does
        disk = DiskGraph(graph, BufferManager(64, CostTracker()))
        loaded = CompactGraphStore.from_disk(disk)
        built = CompactGraphStore(graph)
        for node in range(graph.num_nodes):
            assert loaded.page_of(node) == built.page_of(node)

    def test_no_pages_and_rank_follows_order(self, graph):
        order = bfs_order(graph)
        store = CompactGraphStore(graph, order=order)
        assert store.num_pages == 0
        ranks = [store.page_of(node) for node in order]
        assert ranks == list(range(graph.num_nodes))

    def test_out_of_range_rejected(self, graph):
        store = CompactGraphStore(graph)
        with pytest.raises(StorageError, match="out of range"):
            store.neighbors(graph.num_nodes)
        with pytest.raises(StorageError, match="out of range"):
            store.page_of(-1)

    def test_bad_order_rejected(self, graph):
        with pytest.raises(StorageError, match="packing order"):
            CompactGraphStore(graph, order=[0] * graph.num_nodes)

    def test_needs_graph_or_csr(self):
        with pytest.raises(StorageError, match="needs a graph or a csr"):
            CompactGraphStore()


class TestCompactDiGraphStore:
    def test_both_directions_match_disk_store(self, digraph):
        disk = DiskDiGraph(digraph, BufferManager(64, CostTracker()))
        store = CompactDiGraphStore(digraph)
        for node in range(digraph.num_nodes):
            assert store.out_neighbors(node) == disk.out_neighbors(node)
            assert store.in_neighbors(node) == disk.in_neighbors(node)

    def test_from_disk_matches_disk(self, digraph):
        disk = DiskDiGraph(digraph, BufferManager(64, CostTracker()))
        store = CompactDiGraphStore.from_disk(disk)
        for node in range(digraph.num_nodes):
            assert store.out_neighbors(node) == disk.out_neighbors(node)
            assert store.in_neighbors(node) == disk.in_neighbors(node)

    def test_rank_follows_weak_bfs_order(self, digraph):
        store = CompactDiGraphStore(digraph)
        order = weak_bfs_order(digraph)
        assert [store.page_of(node) for node in order] == list(
            range(digraph.num_nodes)
        )
        assert store.num_pages == 0

    def test_out_of_range_rejected(self, digraph):
        store = CompactDiGraphStore(digraph)
        for reader in (store.out_neighbors, store.in_neighbors, store.page_of):
            with pytest.raises(StorageError, match="out of range"):
                reader(digraph.num_nodes)


class TestMemoryKnnStore:
    def test_round_trip(self):
        store = MemoryKnnStore(4, 2, {0: [(7, 1.0)], 2: [(8, 2.0), (9, 3.5)]})
        assert store.get(0) == ((7, 1.0),)
        assert store.get(1) == ()
        assert store.get(2) == ((8, 2.0), (9, 3.5))
        store.put(1, [(5, 0.5)])
        assert store.get(1) == ((5, 0.5),)

    def test_capacity_enforced(self):
        store = MemoryKnnStore(2, 1)
        with pytest.raises(StorageError, match="capacity"):
            store.put(0, [(1, 1.0), (2, 2.0)])
        with pytest.raises(StorageError, match="K must be"):
            MemoryKnnStore(2, 0)

    def test_bounds_checked(self):
        store = MemoryKnnStore(2, 1)
        with pytest.raises(StorageError, match="out of range"):
            store.get(2)
        with pytest.raises(StorageError, match="out of range"):
            store.put(-1, [])
