"""Hypothesis property tests for the vectorized batch RkNN kernel.

Two families of invariants pin :mod:`repro.compact.batch` against the
rest of the system:

**Answer equivalence.**  On integer-weighted graphs (exact float
arithmetic, so an independent reference cannot diverge by an ulp), the
batch kernel must reproduce a from-scratch per-query reference --
one textbook Dijkstra per candidate point, membership by the k-th
order statistic -- and, on arbitrary float weights, must match the
scalar compact path bitwise for every spec in the batch.

**Cost accounting.**  The kernel charges the scalar cost model
(``edges_expanded`` = degree of every settled ``(row, node)`` pair),
so per-request counters must sum *exactly* to the facade tracker's
total increase -- work is split, never dropped or invented.  And in
the kernel's amortization regime (batches of >= 5 queries, where the
shared candidate table pays for itself), the batched
``edges_expanded`` total must not exceed the sum of the same specs
run scalar one by one.
"""

import heapq
import math
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CompactDatabase, NodePointSet, QuerySpec
from repro.compact.batch import numpy_available
from tests.conftest import build_random_graph

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Counter fields the kernel charges; each must conserve exactly.
COUNTED = ("nodes_visited", "edges_expanded", "heap_pushes", "heap_pops",
           "verifications", "oracle_prunes")


@st.composite
def batch_cases(draw, min_batch=5, max_batch=8, int_weights=None):
    """A random network, point set and RkNN batch (mixed k, methods,
    data/random query nodes, occasional excludes)."""
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    n = draw(st.integers(min_value=20, max_value=45))
    if int_weights is None:
        int_weights = draw(st.booleans())
    graph = build_random_graph(rng, n, n // 2, int_weights=int_weights)
    num_points = draw(st.integers(min_value=6, max_value=9))
    points = NodePointSet({
        pid: node
        for pid, node in enumerate(rng.sample(range(n), num_points))
    })
    point_nodes = [node for _, node in sorted(points.items())]
    size = draw(st.integers(min_value=min_batch, max_value=max_batch))
    specs = []
    for _ in range(size):
        query = (rng.choice(point_nodes) if draw(st.booleans())
                 else rng.randrange(n))
        exclude = frozenset()
        if draw(st.booleans()):
            exclude = frozenset({
                draw(st.integers(min_value=0, max_value=num_points - 1))
            })
        specs.append(QuerySpec(
            "rknn",
            query=query,
            k=draw(st.integers(min_value=1, max_value=2)),
            method=draw(st.sampled_from(("eager", "lazy"))),
            exclude=exclude,
        ))
    return graph, points, specs, seed


def _dijkstra(graph, source):
    """Reference single-source distances (textbook binary heap)."""
    dist = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        for v, w in graph.neighbors(u):
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def _brute_rknn(graph, points, spec):
    """From-scratch RkNN: p is a member iff d(p, q) is within p's
    k-th nearest surviving competitor."""
    members = []
    items = sorted(points.items())
    for pid, node in items:
        if pid in spec.exclude:
            continue
        dist = _dijkstra(graph, node)
        to_query = dist.get(spec.query, math.inf)
        if math.isinf(to_query):
            continue
        competitors = sorted(
            dist.get(other, math.inf)
            for opid, other in items
            if opid != pid and opid not in spec.exclude
        )
        threshold = (competitors[spec.k - 1]
                     if len(competitors) >= spec.k else math.inf)
        if to_query <= threshold:
            members.append(pid)
    return tuple(members)


@given(case=batch_cases(int_weights=True))
@settings(**SETTINGS)
def test_batch_matches_reference_dijkstra(case):
    graph, points, specs, seed = case
    db = CompactDatabase(graph, points)
    results = db.batch_rknn(specs)
    for spec, result in zip(specs, results):
        expected = _brute_rknn(graph, points, spec)
        assert result.points == expected, (
            f"seed={seed}: batch answer {result.points} != reference "
            f"{expected} for {spec}"
        )


@given(case=batch_cases())
@settings(**SETTINGS)
def test_batch_matches_scalar_compact_bitwise(case):
    graph, points, specs, seed = case
    scalar_db = CompactDatabase(graph, points)
    scalar = [
        scalar_db.rknn(spec.query, spec.k, method=spec.method,
                       exclude=spec.exclude).points
        for spec in specs
    ]
    batch_db = CompactDatabase(graph, points)
    batched = [result.points for result in batch_db.batch_rknn(specs)]
    assert batched == scalar, (
        f"seed={seed}: batch answers diverge from the scalar compact path"
    )


@given(case=batch_cases())
@settings(**SETTINGS)
def test_per_request_counters_conserve_tracker_totals(case):
    """Work is split across requests exactly: neither dropped nor
    invented (the cost model's never-undercounted half)."""
    graph, points, specs, seed = case
    db = CompactDatabase(graph, points)
    before = db.tracker.snapshot()
    results = db.batch_rknn(specs)
    diff = db.tracker.diff(before)
    for field in COUNTED:
        total = getattr(diff, field)
        split = sum(getattr(r.counters, field) for r in results)
        assert split == total, (
            f"seed={seed}: per-request {field} sums to {split}, "
            f"tracker charged {total}"
        )
    assert all(result.io == 0 for result in results), (
        f"seed={seed}: the batch kernel charged page I/O"
    )


@given(case=batch_cases())
@settings(**SETTINGS)
def test_batched_edges_within_scalar_sum(case):
    """In the amortization regime (>= 5 specs per batch) the shared
    candidate table never expands more edges than the scalar loop."""
    graph, points, specs, seed = case
    scalar_db = CompactDatabase(graph, points)
    before = scalar_db.tracker.snapshot()
    for spec in specs:
        scalar_db.rknn(spec.query, spec.k, method=spec.method,
                       exclude=spec.exclude)
    scalar_edges = scalar_db.tracker.diff(before).edges_expanded

    batch_db = CompactDatabase(graph, points)
    before = batch_db.tracker.snapshot()
    batch_db.batch_rknn(specs)
    batch_edges = batch_db.tracker.diff(before).edges_expanded

    assert batch_edges <= scalar_edges, (
        f"seed={seed}: batched edges_expanded {batch_edges} exceeds "
        f"the scalar sum {scalar_edges}"
    )


def test_numpy_is_available_in_ci():
    """The property suite above exercises the vectorized path; this
    guard fails loudly if the environment silently lost numpy."""
    assert numpy_available()
