"""Tests for the shard cut heuristics (repro.shard.partition)."""

import random

import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.shard import cut_digraph, cut_graph
from tests.conftest import build_random_graph


@pytest.fixture
def graph():
    return build_random_graph(random.Random(11), 80, 60)


class TestCutGraph:
    def test_every_node_assigned_exactly_once(self, graph):
        plan = cut_graph(graph, 4)
        assert sorted(n for nodes in plan.shard_nodes for n in nodes) == list(
            range(graph.num_nodes)
        )
        for shard_id, nodes in enumerate(plan.shard_nodes):
            for node in nodes:
                assert plan.assignment[node] == shard_id

    def test_edge_disjoint(self, graph):
        """Each edge is either intra-shard (exactly one shard) or cut."""
        plan = cut_graph(graph, 4)
        cut = {(u, v) for u, v, _ in plan.cut_edges}
        for u, v, _ in graph.edges():
            crossing = plan.assignment[u] != plan.assignment[v]
            assert ((u, v) in cut) == crossing

    def test_near_equal_shard_sizes(self, graph):
        plan = cut_graph(graph, 3)
        sizes = [len(nodes) for nodes in plan.shard_nodes]
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_has_no_cut(self, graph):
        plan = cut_graph(graph, 1)
        assert plan.num_cut_edges == 0
        assert set(plan.assignment) == {0}

    def test_contiguous_slices_of_packing_order(self, graph):
        """BFS slicing keeps cut ratios well below a random assignment."""
        rng = random.Random(5)
        plan = cut_graph(graph, 4)
        random_assignment = [rng.randrange(4) for _ in range(graph.num_nodes)]
        random_cut = sum(
            1 for u, v, _ in graph.edges()
            if random_assignment[u] != random_assignment[v]
        )
        assert plan.num_cut_edges <= random_cut

    def test_boundary_nodes_touch_cut_edges(self, graph):
        plan = cut_graph(graph, 4)
        boundary = plan.boundary_nodes()
        for u, v, _ in plan.cut_edges:
            assert u in boundary and v in boundary

    def test_hilbert_order_requires_coords(self, graph):
        with pytest.raises(GraphError):
            cut_graph(graph, 2, order="hilbert")

    def test_bad_parameters(self, graph):
        with pytest.raises(GraphError):
            cut_graph(graph, 0)
        with pytest.raises(GraphError):
            cut_graph(graph, graph.num_nodes + 1)
        with pytest.raises(GraphError):
            cut_graph(graph, 2, order="zorder")


class TestCutDigraph:
    def test_assignment_and_cut_arcs(self):
        rng = random.Random(7)
        base = build_random_graph(rng, 40, 30)
        arcs = []
        for u, v, w in base.edges():
            arcs.append((u, v, w))
            if rng.random() < 0.5:
                arcs.append((v, u, w + 1.0))
        graph = DiGraph.from_arcs(arcs, num_nodes=40)
        plan = cut_digraph(graph, 4)
        assert sorted(n for nodes in plan.shard_nodes for n in nodes) == list(
            range(40)
        )
        cut = {(u, v) for u, v, _ in plan.cut_edges}
        for u, v, _ in graph.arcs():
            crossing = plan.assignment[u] != plan.assignment[v]
            assert ((u, v) in cut) == crossing
