"""Tests for the sharded stores (repro.shard.store)."""

import random

import pytest

from repro.errors import StorageError
from repro.graph.digraph import DiGraph
from repro.shard import ShardedDiGraphStore, ShardedGraphStore
from tests.conftest import build_random_graph


@pytest.fixture
def graph():
    return build_random_graph(random.Random(21), 70, 55)


@pytest.fixture
def store(graph):
    return ShardedGraphStore(graph, num_shards=4, buffer_pages=64)


class TestShardedGraphStore:
    def test_stitched_adjacency_matches_graph(self, graph, store):
        """Intra-shard disk lists + boundary table == full adjacency."""
        for node in range(graph.num_nodes):
            expected = sorted((nbr, w) for nbr, w in graph.neighbors(node))
            assert sorted(store.neighbors(node)) == expected

    def test_reads_charge_the_owning_shard(self, graph, store):
        node = 0
        shard_id = store.shard_of(node)
        before = [t.snapshot() for t in store.trackers()]
        store.neighbors(node)
        for i, tracker in enumerate(store.trackers()):
            diff = tracker.diff(before[i])
            if i == shard_id:
                assert diff.logical_reads == 1
            else:
                assert diff.logical_reads == 0

    def test_shard_counters_sum_equals_total_io(self, graph, store):
        rng = random.Random(3)
        for _ in range(200):
            store.neighbors(rng.randrange(graph.num_nodes))
        total_reads = sum(t.page_reads for t in store.shard_counters())
        total_hits = sum(t.buffer_hits for t in store.shard_counters())
        assert total_reads + total_hits == 200

    def test_page_ranks_are_shard_major(self, graph, store):
        """page_of orders every page of shard i before any of shard i+1."""
        ranks_by_shard = [[] for _ in range(store.num_shards)]
        for node in range(graph.num_nodes):
            ranks_by_shard[store.shard_of(node)].append(store.page_of(node))
        for earlier, later in zip(ranks_by_shard, ranks_by_shard[1:]):
            assert max(earlier) < min(later)

    def test_buffer_budget_is_per_shard(self, graph):
        """Each shard models an independent host with its own buffer."""
        store = ShardedGraphStore(graph, num_shards=4, buffer_pages=64)
        assert all(s.buffer.capacity_pages == 64 for s in store.shards)
        with pytest.raises(StorageError):
            ShardedGraphStore(graph, num_shards=2, buffer_pages=-1)

    def test_exact_adjacency_order_is_preserved(self, graph, store):
        """The stitched lists are byte-for-byte the unsharded adjacency."""
        for node in range(graph.num_nodes):
            assert store.neighbors(node) == tuple(graph.neighbors(node))

    def test_global_order_is_a_permutation(self, graph, store):
        assert sorted(store.global_order()) == list(range(graph.num_nodes))

    def test_out_of_range_node_raises(self, store):
        with pytest.raises(StorageError):
            store.neighbors(10_000)
        with pytest.raises(StorageError):
            store.shard_of(-1)

    def test_read_clone_isolates_buffers_and_counters(self, graph, store):
        clone = store.read_clone()
        clone.neighbors(0)
        clone.neighbors(0)
        shard_id = store.shard_of(0)
        assert clone.shards[shard_id].tracker.logical_reads == 2
        assert store.shards[shard_id].tracker.logical_reads == 0
        # parent and clone serve identical data
        assert clone.neighbors(5) == store.neighbors(5)

    def test_reset_and_clear(self, graph, store):
        store.neighbors(0)
        store.clear_buffers()
        store.reset_trackers()
        assert all(t.logical_reads == 0 for t in store.trackers())
        store.neighbors(0)
        shard = store.shards[store.shard_of(0)]
        assert shard.tracker.page_reads >= 1  # cold again after clear


class TestShardedDiGraphStore:
    @pytest.fixture
    def digraph(self):
        rng = random.Random(13)
        base = build_random_graph(rng, 50, 40)
        arcs = []
        for u, v, w in base.edges():
            arcs.append((u, v, w))
            if rng.random() < 0.5:
                arcs.append((v, u, w + 0.5))
        return DiGraph.from_arcs(arcs, num_nodes=50)

    def test_stitched_arcs_match_graph_exactly(self, digraph):
        """Byte-for-byte arc order: the tie-order parity invariant."""
        store = ShardedDiGraphStore(digraph, num_shards=4, buffer_pages=64)
        for node in range(digraph.num_nodes):
            assert store.out_neighbors(node) == tuple(
                digraph.out_neighbors(node)
            )
            assert store.in_neighbors(node) == tuple(
                digraph.in_neighbors(node)
            )

    def test_directed_reads_charge_owner(self, digraph):
        store = ShardedDiGraphStore(digraph, num_shards=4, buffer_pages=64)
        shard_id = store.shard_of(7)
        store.out_neighbors(7)
        store.in_neighbors(7)
        assert store.shards[shard_id].tracker.logical_reads == 2
        others = [s.tracker.logical_reads
                  for s in store.shards if s.shard_id != shard_id]
        assert all(reads == 0 for reads in others)
