"""Parity suites: the sharded facades against brute force and the
single-store databases, for K in {1, 4} shards.

The acceptance bar of the sharded backend: every query kind (kNN,
RkNN, bichromatic, range) returns results *identical* to the unsharded
database on both undirected and directed graphs -- the shard cut may
change where I/O lands, never an answer.
"""

import random

import pytest

from repro import (
    DirectedGraphDatabase,
    GraphDatabase,
    NodePointSet,
    ShardedDatabase,
    ShardedDirectedDatabase,
)
from repro.core.baseline import brute_force_brknn, brute_force_knn, brute_force_rknn
from repro.core.directed import brute_force_directed_rknn
from repro.errors import QueryError
from repro.graph.digraph import DiGraph
from repro.points.points import EdgePointSet
from tests.conftest import build_random_graph

SHARD_COUNTS = (1, 4)


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(42)
    graph = build_random_graph(rng, 90, 70)
    points = NodePointSet(
        {pid: node for pid, node in enumerate(rng.sample(range(90), 18))}
    )
    reference = NodePointSet(
        {100 + i: node for i, node in enumerate(rng.sample(range(90), 12))}
    )
    queries = rng.sample(range(90), 12)
    return graph, points, reference, queries


@pytest.fixture(scope="module", params=SHARD_COUNTS)
def sharded(request, setup):
    graph, points, reference, _ = setup
    db = ShardedDatabase(graph, points, num_shards=request.param)
    db.attach_reference(reference)
    db.materialize(4)
    db.materialize_reference(4)
    return db


@pytest.fixture(scope="module")
def unsharded(setup):
    graph, points, reference, _ = setup
    db = GraphDatabase(graph, points)
    db.attach_reference(reference)
    db.materialize(4)
    db.materialize_reference(4)
    return db


class TestUndirectedParity:
    def test_knn_matches_brute_force_and_single_store(
        self, setup, sharded, unsharded
    ):
        graph, points, _, queries = setup

        def canonical(neighbors):
            # ties at equal distance are order-ambiguous between the
            # expansion and the brute-force oracle
            return sorted(neighbors, key=lambda e: (e[1], e[0]))

        for query in queries:
            expected = brute_force_knn(graph, points, query, 3)
            assert canonical(sharded.knn(query, k=3).neighbors) == canonical(expected)
            # against the single store the answer is bitwise identical
            assert (sharded.knn(query, k=3).neighbors
                    == unsharded.knn(query, k=3).neighbors)

    @pytest.mark.parametrize("method", ["eager", "lazy", "eager-m", "lazy-ep"])
    @pytest.mark.parametrize("k", [1, 2])
    def test_rknn_matches_brute_force_and_single_store(
        self, setup, sharded, unsharded, method, k
    ):
        graph, points, _, queries = setup
        for query in queries:
            expected = brute_force_rknn(graph, points, query, k)
            assert list(sharded.rknn(query, k, method=method).points) == expected
            assert (sharded.rknn(query, k, method=method).points
                    == unsharded.rknn(query, k, method=method).points)

    @pytest.mark.parametrize("method", ["eager", "lazy", "eager-m"])
    def test_bichromatic_matches_brute_force_and_single_store(
        self, setup, sharded, unsharded, method
    ):
        graph, points, reference, queries = setup
        for query in queries:
            expected = brute_force_brknn(graph, points, reference, query, 2)
            result = sharded.bichromatic_rknn(query, 2, method=method)
            assert list(result.points) == expected
            assert (result.points
                    == unsharded.bichromatic_rknn(query, 2, method=method).points)

    def test_range_nn_matches_single_store(self, setup, sharded, unsharded):
        _, _, _, queries = setup
        for query in queries:
            for radius in (4.0, 9.0, 20.0):
                assert (sharded.range_nn(query, 3, radius).neighbors
                        == unsharded.range_nn(query, 3, radius).neighbors)

    def test_continuous_rknn_matches_single_store(self, setup, sharded, unsharded):
        graph, _, _, _ = setup
        route = [0]
        while len(route) < 5:
            nxt = graph.neighbors(route[-1])[0][0]
            if len(route) > 1 and nxt == route[-2]:
                nxt = graph.neighbors(route[-1])[-1][0]
            route.append(nxt)
        for method in ("eager", "lazy", "lazy-ep"):
            assert (sharded.continuous_rknn(route, 1, method=method).points
                    == unsharded.continuous_rknn(route, 1, method=method).points)

    def test_exclude_matches_single_store(self, setup, sharded, unsharded):
        _, points, _, queries = setup
        hidden = frozenset(list(points.ids())[:2])
        for query in queries[:4]:
            assert (sharded.rknn(query, 2, exclude=hidden).points
                    == unsharded.rknn(query, 2, exclude=hidden).points)


class TestDirectedParity:
    @pytest.fixture(scope="class")
    def directed_setup(self):
        rng = random.Random(17)
        base = build_random_graph(rng, 60, 45)
        arcs = []
        for u, v, w in base.edges():
            arcs.append((u, v, w))
            if rng.random() < 0.6:
                arcs.append((v, u, float(rng.randint(1, 9))))
        graph = DiGraph.from_arcs(arcs, num_nodes=60)
        points = NodePointSet(
            {pid: node for pid, node in enumerate(rng.sample(range(60), 12))}
        )
        queries = rng.sample(range(60), 10)
        return graph, points, queries

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("method", ["eager", "eager-m", "naive"])
    def test_directed_rknn_parity(self, directed_setup, num_shards, method):
        graph, points, queries = directed_setup
        single = DirectedGraphDatabase(graph, points)
        single.materialize(3)
        sharded = ShardedDirectedDatabase(graph, points, num_shards=num_shards)
        sharded.materialize(3)
        for query in queries:
            for k in (1, 2):
                expected = brute_force_directed_rknn(graph, points, query, k)
                assert list(sharded.rknn(query, k, method=method).points) == expected
                assert (sharded.rknn(query, k, method=method).points
                        == single.rknn(query, k, method=method).points)

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_directed_updates_track_single_store(self, directed_setup,
                                                 num_shards):
        graph, points, queries = directed_setup
        single = DirectedGraphDatabase(graph, points)
        single.materialize(3)
        sharded = ShardedDirectedDatabase(graph, points, num_shards=num_shards)
        sharded.materialize(3)
        free_node = next(
            node for node in range(graph.num_nodes)
            if points.point_at(node) is None
        )
        r_s = sharded.insert_point(700, free_node)
        r_u = single.insert_point(700, free_node)
        assert r_s.affected_nodes == r_u.affected_nodes
        assert sharded.generation == 1
        for query in queries[:4]:
            assert (sharded.rknn(query, 1, method="eager-m").points
                    == single.rknn(query, 1, method="eager-m").points)
        sharded.delete_point(700)
        single.delete_point(700)
        assert sharded.generation == 2
        for query in queries[:4]:
            assert (sharded.rknn(query, 1).points
                    == single.rknn(query, 1).points)

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_directed_rejects_non_node_queries(self, directed_setup,
                                               num_shards):
        graph, points, _ = directed_setup
        sharded = ShardedDirectedDatabase(graph, points, num_shards=num_shards)
        with pytest.raises(QueryError):
            sharded.rknn((0, 1, 0.5), 1)

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_directed_knn_and_range_parity(self, directed_setup, num_shards):
        graph, points, queries = directed_setup
        single = DirectedGraphDatabase(graph, points)
        sharded = ShardedDirectedDatabase(graph, points, num_shards=num_shards)
        for query in queries:
            assert (sharded.knn(query, k=3).neighbors
                    == single.knn(query, k=3).neighbors)
            assert (sharded.range_nn(query, 2, 8.0).neighbors
                    == single.range_nn(query, 2, 8.0).neighbors)


class TestUpdatesAndSessions:
    def test_updates_track_single_store(self, setup):
        graph, points, _, _ = setup
        sharded = ShardedDatabase(graph, points, num_shards=4)
        single = GraphDatabase(graph, points)
        sharded.materialize(3)
        single.materialize(3)
        r_s = sharded.insert_point(500, 33)
        r_u = single.insert_point(500, 33)
        assert r_s.affected_nodes == r_u.affected_nodes
        assert sharded.rknn(33, 1, method="eager-m").points == \
            single.rknn(33, 1, method="eager-m").points
        assert sharded.generation == 1
        sharded.delete_point(500)
        single.delete_point(500)
        assert sharded.rknn(33, 1).points == single.rknn(33, 1).points
        assert sharded.generation == 2

    def test_read_clone_is_isolated_and_identical(self, setup):
        graph, points, _, queries = setup
        db = ShardedDatabase(graph, points, num_shards=4)
        clone = db.read_clone()
        for query in queries[:4]:
            assert clone.rknn(query, 2).points == db.rknn(query, 2).points
        # clone counters are private
        db.reset_stats()
        clone.reset_stats()
        clone.knn(queries[0], k=2)
        assert db.tracker.logical_reads == 0
        assert sum(t.logical_reads for t in db.shard_counters()) == 0

    def test_tracker_aggregates_out_of_protocol_work(self, setup):
        """Materialization and route validation fold into db.tracker too."""
        graph, points, _, _ = setup
        db = ShardedDatabase(graph, points, num_shards=4)
        db.materialize(3)
        shard_reads = sum(t.page_reads for t in db.shard_counters())
        assert shard_reads > 0
        assert db.tracker.page_reads >= shard_reads
        before_tracker = db.tracker.snapshot()
        before_shards = db.shard_counters()
        db.continuous_rknn([0, *[n for n, _ in graph.neighbors(0)][:1]], 1)
        shard_diff = sum(
            t.page_reads + t.buffer_hits - b.page_reads - b.buffer_hits
            for t, b in zip(db.shard_counters(), before_shards)
        )
        tracker_diff = db.tracker.diff(before_tracker)
        assert tracker_diff.page_reads + tracker_diff.buffer_hits >= shard_diff

    def test_per_shard_counters_aggregate_into_tracker(self, setup):
        graph, points, _, queries = setup
        db = ShardedDatabase(graph, points, num_shards=4)
        result = db.rknn(queries[0], 2)
        shard_io = sum(t.page_reads for t in db.shard_counters())
        assert shard_io >= 1
        # the facade's global tracker holds the aggregate
        assert db.tracker.page_reads == shard_io
        # and the per-query record equals the merged diff
        assert result.counters.page_reads == shard_io


class TestValidation:
    def test_rejects_edge_point_sets(self, setup):
        graph, _, _, _ = setup
        u, v, w = next(iter(graph.edges()))
        edge_points = EdgePointSet({1: (u, v, w / 2)})
        with pytest.raises(QueryError):
            ShardedDatabase(graph, edge_points, num_shards=2)

    def test_query_validation(self, setup):
        graph, points, _, _ = setup
        db = ShardedDatabase(graph, points, num_shards=2)
        with pytest.raises(QueryError):
            db.rknn(10_000, 1)
        with pytest.raises(QueryError):
            db.rknn(0, 0)
        with pytest.raises(QueryError):
            db.rknn(0, 1, method="psychic")
        with pytest.raises(QueryError):
            db.rknn(0, 1, method="eager-m")  # not materialized
        with pytest.raises(QueryError):
            db.bichromatic_rknn(0, 1)  # no reference attached

    def test_k1_equals_single_store_layout(self, setup):
        """One shard stores the whole graph: no cut edges at all."""
        graph, points, _, _ = setup
        db = ShardedDatabase(graph, points, num_shards=1)
        assert db.num_shards == 1
        assert db.store.num_cut_edges == 0
