"""The batch engine over a sharded backend: routing, pooling, caching."""

import random

import pytest

from repro import GraphDatabase, NodePointSet, QuerySpec, ShardedDatabase
from repro.engine.engine import _shard_chunks
from repro.engine.planner import home_shard, plan_batch
from tests.conftest import build_random_graph


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(99)
    graph = build_random_graph(rng, 120, 90)
    points = NodePointSet(
        {pid: node for pid, node in enumerate(rng.sample(range(120), 24))}
    )
    specs = []
    for query in rng.sample(range(120), 24):
        specs.append(QuerySpec("rknn", query=query, k=rng.choice([1, 2]),
                               method=rng.choice(["eager", "lazy"])))
        specs.append(QuerySpec("knn", query=query, k=2))
        specs.append(QuerySpec("range", query=query, k=2, radius=7.0))
    return graph, points, specs


@pytest.fixture
def sharded(setup):
    graph, points, _ = setup
    return ShardedDatabase(graph, points, num_shards=4)


def _answers(results):
    return [
        tuple(getattr(r, "points", ()) or getattr(r, "neighbors", ()))
        for r in results
    ]


class TestShardedBatches:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_batch_matches_unsharded_sequential(self, setup, sharded, workers):
        graph, points, specs = setup
        single = GraphDatabase(graph, points)
        sequential = [single.rknn(s.query, s.k, method=s.method)
                      if s.kind == "rknn"
                      else single.knn(s.query, s.k) if s.kind == "knn"
                      else single.range_nn(s.query, s.k, s.radius)
                      for s in specs]
        outcome = sharded.engine(cache_entries=0).run_batch(specs, workers=workers)
        assert _answers(outcome.results) == _answers(sequential)

    def test_warm_cache_serves_everything(self, setup, sharded):
        _, _, specs = setup
        engine = sharded.engine(cache_entries=1024)
        engine.run_batch(specs, workers=4)
        again = engine.run_batch(specs, workers=4)
        assert again.misses == 0 and again.io == 0

    def test_updates_invalidate_cache(self, setup, sharded):
        _, _, specs = setup
        engine = sharded.engine(cache_entries=1024)
        engine.run_batch(specs)
        sharded.insert_point(999, 0)
        assert engine.run_batch(specs).misses > 0
        sharded.delete_point(999)

    def test_worker_pool_preserves_shard_counters(self, setup):
        graph, points, specs = setup
        db = ShardedDatabase(graph, points, num_shards=4)
        outcome = db.engine(cache_entries=0).run_batch(specs, workers=4)
        shard_reads = sum(t.page_reads for t in db.shard_counters())
        shard_hits = sum(t.buffer_hits for t in db.shard_counters())
        # the parallel batch's shard-level I/O decomposition survives
        # the read_clone sessions (merged back by the engine)
        assert shard_reads >= 1
        assert shard_reads + shard_hits >= outcome.counters.logical_reads > 0

    def test_shard_parallel_off_still_correct(self, setup, sharded):
        _, _, specs = setup
        on = sharded.engine(cache_entries=0)
        off = sharded.engine(cache_entries=0, shard_parallel=False)
        a = on.run_batch(specs, workers=3)
        b = off.run_batch(specs, workers=3)
        assert _answers(a.results) == _answers(b.results)


class TestShardRouting:
    def test_home_shard_routes_by_owner(self, sharded):
        for node in (0, 7, 63, 119):
            assert home_shard(sharded, node) == sharded.shard_of(node)
        # out-of-range locations rank 0 (validation happens later)
        assert home_shard(sharded, 10_000) == 0

    def test_home_shard_is_zero_for_unsharded(self, setup):
        graph, points, _ = setup
        db = GraphDatabase(graph, points)
        assert home_shard(db, 5) == 0

    def test_chunks_never_split_a_shard(self, setup, sharded):
        _, _, specs = setup
        pending = list(enumerate(specs))
        for workers in (2, 3, 4, 8):
            chunks = _shard_chunks(sharded, pending, workers)
            assert sum(len(c) for c in chunks) == len(pending)
            shard_sets = [
                {sharded.shard_of(spec.query) for _, spec in chunk}
                for chunk in chunks
            ]
            for i, left in enumerate(shard_sets):
                for right in shard_sets[i + 1:]:
                    assert left.isdisjoint(right)

    def test_plan_orders_shard_major(self, setup, sharded):
        _, _, specs = setup
        knn_specs = [s for s in specs if s.kind == "knn"]
        plan = plan_batch(sharded, knn_specs)
        shards_in_order = [
            sharded.shard_of(plan.specs[i].query) for i in plan.order
        ]
        # within the single (kind, method, k) group the shard ids are
        # non-decreasing: the planner groups by home shard
        assert shards_in_order == sorted(shards_in_order)
