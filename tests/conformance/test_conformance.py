"""Randomized differential conformance across all storage backends.

With three backends answering the same query surface -- the single
disk store, the sharded store (K in {1, 4}) and the compact CSR store
-- interchangeability is a systems invariant, not a per-feature test.
This suite generates seeded random networks and workloads (kNN, RkNN
under every method, bichromatic, continuous, range, with interleaved
point updates), replays the *same* workload on every backend -- and,
for the undirected trio, on oracle-enabled variants of each backend
(the landmark bounds may only prune, never change an answer) and on
delta-overlay variants of the compact store, both pre-compaction
(reads through the merged overlay view) and post-compaction
(``compact_threshold=1`` folds every append immediately) -- and
asserts the answers are identical entry for entry.

Every case is parametrized by its seed and every assertion message
carries it, so a failure line like ``seed=37`` is a complete
reproduction recipe::

    pytest tests/conformance -k 'seed37'

The suite is marked ``slow``: CI runs it on the full-matrix job while
the fast job keeps the per-push wall-clock down.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    CompactDatabase,
    CompactDirectedDatabase,
    DirectedGraphDatabase,
    GraphDatabase,
    NodePointSet,
    ShardedDatabase,
    ShardedDirectedDatabase,
)
from repro.graph.digraph import DiGraph
from tests.conftest import build_random_graph

pytestmark = pytest.mark.slow

#: Undirected + directed seeds: ~50 randomized cases in total.
UNDIRECTED_SEEDS = range(30)
DIRECTED_SEEDS = range(20)

MATERIALIZE_K = 4

UNDIRECTED_METHODS = ("eager", "lazy", "lazy-ep", "eager-m")
BICHROMATIC_METHODS = ("eager", "lazy", "eager-m")
DIRECTED_METHODS = ("eager", "eager-m", "naive")


def _free_node(points: NodePointSet, num_nodes: int, rng: random.Random) -> int:
    used = {node for _, node in points.items()}
    return rng.choice([v for v in range(num_nodes) if v not in used])


def _random_walk(graph, start: int, hops: int, rng: random.Random) -> list[int]:
    route = [start]
    for _ in range(hops):
        neighbors = [nbr for nbr, _ in graph.neighbors(route[-1])]
        if not neighbors:
            break
        route.append(rng.choice(neighbors))
    return route


def _undirected_case(seed: int):
    """Deterministic network + workload script for one undirected seed."""
    rng = random.Random(1000 + seed)
    num_nodes = 30 + (seed % 3) * 10
    graph = build_random_graph(rng, num_nodes, num_nodes // 2,
                               int_weights=(seed % 2 == 0))
    node_pool = rng.sample(range(num_nodes), min(18, num_nodes))
    points = NodePointSet({pid: node
                           for pid, node in enumerate(node_pool[:8])})
    reference = NodePointSet({100 + i: node
                              for i, node in enumerate(node_pool[8:14])})
    queries = rng.sample(range(num_nodes), 4)
    route = _random_walk(graph, queries[0], 3 + seed % 3, rng)
    insert_at = _free_node(points, num_nodes, rng)
    delete_pid = rng.choice(sorted(pid for pid, _ in points.items()))
    radius = 2.0 + (seed % 5) * 2.0
    return graph, points, reference, queries, route, insert_at, delete_pid, radius


def _run_undirected_workload(db, queries, route, insert_at, delete_pid, radius):
    """One backend's answers for the scripted workload, as a flat list."""
    answers: list = []
    for k in (1, 2):
        for query in queries:
            answers.append(db.knn(query, k).neighbors)
            answers.append(db.range_nn(query, k, radius).neighbors)
            for method in UNDIRECTED_METHODS:
                answers.append(db.rknn(query, k, method=method).points)
            for method in BICHROMATIC_METHODS:
                answers.append(db.bichromatic_rknn(query, k, method=method).points)
        answers.append(db.continuous_rknn(route, k).points)
        # interleaved updates between the k = 1 and k = 2 rounds
        if k == 1:
            db.insert_point(900, insert_at)
            db.delete_point(delete_pid)
    return answers


@pytest.mark.parametrize("seed", UNDIRECTED_SEEDS, ids=lambda s: f"seed{s}")
def test_backends_agree_undirected(seed, tmp_path):
    (graph, points, reference, queries, route,
     insert_at, delete_pid, radius) = _undirected_case(seed)

    def build(factory, oracle=False):
        db = factory()
        db.attach_reference(reference)
        db.materialize(MATERIALIZE_K)
        db.materialize_reference(MATERIALIZE_K)
        if oracle:
            db.build_oracle(3 + seed % 3, seed=seed)
        return db

    def churned_overlay():
        # a net-zero edge insert + delete leaves pending delta ops, so
        # the whole workload reads through the merged overlay view
        # (and its point mutations stay pre-compaction log appends)
        db = CompactDatabase(graph, points)
        a, b = next(
            (a, b)
            for a in range(graph.num_nodes)
            for b in range(a + 1, graph.num_nodes)
            if not graph.has_edge(a, b)
        )
        db.insert_edge(a, b, 1.0)
        db.delete_edge(a, b)
        return db

    backends = {
        "disk": build(lambda: GraphDatabase(graph, points)),
        "sharded-K1": build(lambda: ShardedDatabase(graph, points, num_shards=1)),
        "sharded-K4": build(lambda: ShardedDatabase(graph, points, num_shards=4)),
        "compact": build(lambda: CompactDatabase(graph, points)),
        # the delta overlay, pre-compaction (merged view with a pending
        # edge log) and post-compaction (threshold 1 folds every append
        # into a fresh base immediately)
        "compact+overlay-pending": build(churned_overlay),
        "compact+overlay-compacted": build(
            lambda: CompactDatabase(graph, points, compact_threshold=1)
        ),
        # the serve fleet's worker boot path: the compact store saved
        # to an on-disk snapshot and reloaded over mmap'd CSR arrays
        "compact+snapshot-mmap": build(
            lambda: CompactDatabase.load_snapshot(
                CompactDatabase(graph, points).save_snapshot(
                    tmp_path / "snap"),
                mmap=True,
            )
        ),
        # the same trio with the landmark oracle attached: pruning must
        # never change an answer, on any backend
        "disk+oracle": build(lambda: GraphDatabase(graph, points),
                             oracle=True),
        "sharded-K4+oracle": build(
            lambda: ShardedDatabase(graph, points, num_shards=4), oracle=True
        ),
        "compact+oracle": build(lambda: CompactDatabase(graph, points),
                                oracle=True),
    }
    baseline = _run_undirected_workload(
        backends["disk"], queries, route, insert_at, delete_pid, radius
    )
    for name, db in backends.items():
        if name == "disk":
            continue
        answers = _run_undirected_workload(
            db, queries, route, insert_at, delete_pid, radius
        )
        assert answers == baseline, (
            f"seed={seed}: backend {name!r} diverges from the disk store "
            f"(reproduce with tests/conformance -k 'seed{seed}')"
        )


def _directed_case(seed: int):
    """Deterministic directed network + workload for one seed."""
    rng = random.Random(2000 + seed)
    num_nodes = 25 + (seed % 3) * 8
    arcs: list[tuple[int, int, float]] = []
    seen: set[tuple[int, int]] = set()
    # a random cycle keeps most nodes mutually reachable, extra arcs
    # add asymmetry
    order = list(range(num_nodes))
    rng.shuffle(order)
    for i, tail in enumerate(order):
        head = order[(i + 1) % num_nodes]
        seen.add((tail, head))
        arcs.append((tail, head, float(rng.randint(1, 9))))
    for _ in range(num_nodes * 3):
        tail, head = rng.sample(range(num_nodes), 2)
        if (tail, head) not in seen:
            seen.add((tail, head))
            arcs.append((tail, head, float(rng.randint(1, 9))))
    graph = DiGraph.from_arcs(arcs, num_nodes=num_nodes)
    points = NodePointSet({pid: node for pid, node in
                           enumerate(rng.sample(range(num_nodes), 7))})
    queries = rng.sample(range(num_nodes), 4)
    insert_at = _free_node(points, num_nodes, rng)
    delete_pid = rng.choice(sorted(pid for pid, _ in points.items()))
    radius = 3.0 + (seed % 4) * 2.0
    return graph, points, queries, insert_at, delete_pid, radius


def _run_directed_workload(db, queries, insert_at, delete_pid, radius):
    answers: list = []
    for k in (1, 2):
        for query in queries:
            answers.append(db.knn(query, k).neighbors)
            answers.append(db.range_nn(query, k, radius).neighbors)
            for method in DIRECTED_METHODS:
                answers.append(db.rknn(query, k, method=method).points)
        if k == 1:
            db.insert_point(900, insert_at)
            db.delete_point(delete_pid)
    return answers


@pytest.mark.parametrize("seed", DIRECTED_SEEDS, ids=lambda s: f"seed{s}")
def test_backends_agree_directed(seed):
    graph, points, queries, insert_at, delete_pid, radius = _directed_case(seed)

    def build(factory):
        db = factory()
        db.materialize(MATERIALIZE_K)
        return db

    backends = {
        "disk": build(lambda: DirectedGraphDatabase(graph, points)),
        "sharded-K1": build(
            lambda: ShardedDirectedDatabase(graph, points, num_shards=1)
        ),
        "sharded-K4": build(
            lambda: ShardedDirectedDatabase(graph, points, num_shards=4)
        ),
        "compact": build(lambda: CompactDirectedDatabase(graph, points)),
    }
    baseline = _run_directed_workload(
        backends["disk"], queries, insert_at, delete_pid, radius
    )
    for name, db in backends.items():
        if name == "disk":
            continue
        answers = _run_directed_workload(
            db, queries, insert_at, delete_pid, radius
        )
        assert answers == baseline, (
            f"seed={seed}: backend {name!r} diverges from the disk store "
            f"(reproduce with tests/conformance -k 'seed{seed}')"
        )


@pytest.mark.parametrize("oracle", (False, True), ids=("plain", "oracle"))
@pytest.mark.parametrize("seed", range(10), ids=lambda s: f"seed{s}")
def test_batch_kernel_agrees_across_backends(seed, oracle):
    """The vectorized batch kernel answers exactly like the scalar
    paths of every backend -- K in {1, 4}, every method, excludes and
    route specs, with and without the landmark oracle attached."""
    from repro import QuerySpec

    (graph, points, _, queries, route,
     _, delete_pid, _) = _undirected_case(seed)
    exclude = frozenset({delete_pid})
    specs = []
    for query in queries:
        for k in (1, 4):
            specs.append(QuerySpec("rknn", query=query, k=k, method="eager"))
            specs.append(QuerySpec("rknn", query=query, k=k, method="lazy",
                                   exclude=exclude))
            specs.append(QuerySpec("rknn", query=query, k=k, method="eager-m"))
    specs.append(QuerySpec("continuous", route=tuple(route), k=1,
                           method="eager"))

    def build(factory):
        db = factory()
        db.materialize(MATERIALIZE_K)
        if oracle:
            db.build_oracle(3 + seed % 3, seed=seed)
        return db

    def scalar_answers(db):
        answers = []
        for spec in specs:
            if spec.kind == "continuous":
                answers.append(
                    db.continuous_rknn(list(spec.route), spec.k,
                                       method=spec.method).points
                )
            else:
                answers.append(
                    db.rknn(spec.query, spec.k, method=spec.method,
                            exclude=spec.exclude).points
                )
        return answers

    baseline = scalar_answers(build(lambda: GraphDatabase(graph, points)))
    scalar_rows = {
        "sharded-K4": build(lambda: ShardedDatabase(graph, points,
                                                    num_shards=4)),
        "compact-scalar": build(lambda: CompactDatabase(graph, points)),
    }
    for name, db in scalar_rows.items():
        assert scalar_answers(db) == baseline, (
            f"seed={seed}: backend {name!r} diverges from the disk store "
            f"(reproduce with tests/conformance -k 'seed{seed}')"
        )

    kernel_db = build(lambda: CompactDatabase(graph, points))
    direct = [result.points for result in kernel_db.batch_rknn(specs)]
    assert direct == baseline, (
        f"seed={seed}: batch_rknn diverges from the scalar backends "
        f"(reproduce with tests/conformance -k 'seed{seed}')"
    )

    engine_db = build(lambda: CompactDatabase(graph, points))
    outcome = engine_db.engine().run_batch(specs)
    via_engine = [result.points for result in outcome.results]
    assert via_engine == baseline, (
        f"seed={seed}: engine batch-kernel dispatch diverges "
        f"(reproduce with tests/conformance -k 'seed{seed}')"
    )


@pytest.mark.parametrize("seed", range(6), ids=lambda s: f"seed{s}")
def test_batch_kernel_agrees_directed(seed):
    """The directed batch kernel (out-CSR expansion) matches the
    scalar directed backends for K in {1, 4} under every method."""
    from repro import QuerySpec

    graph, points, queries, _, _, _ = _directed_case(seed)
    specs = [
        QuerySpec("rknn", query=query, k=k, method=method)
        for query in queries
        for k in (1, 4)
        for method in DIRECTED_METHODS
    ]

    disk = DirectedGraphDatabase(graph, points)
    disk.materialize(MATERIALIZE_K)
    baseline = [
        disk.rknn(spec.query, spec.k, method=spec.method).points
        for spec in specs
    ]

    compact = CompactDirectedDatabase(graph, points)
    compact.materialize(MATERIALIZE_K)
    batched = [result.points for result in compact.batch_rknn(specs)]
    assert batched == baseline, (
        f"seed={seed}: directed batch_rknn diverges from the disk store "
        f"(reproduce with tests/conformance -k 'seed{seed}')"
    )


@pytest.mark.parametrize("oracle", (False, True), ids=("plain", "oracle"))
@pytest.mark.parametrize("seed", range(10), ids=lambda s: f"seed{s}")
def test_group_kinds_agree_across_backends(seed, oracle):
    """The expanded kinds -- ``topk_influence`` (plain, weighted,
    bichromatic), ``aggregate_nn`` (sum and max) and range-restricted
    RkNN (``within``) -- answer identically on every backend, K in
    {1, 4}, with and without the landmark oracle, through both the
    spec surface and compiled qlang statements."""
    from repro import QuerySpec

    (graph, points, reference, queries, _,
     _, delete_pid, radius) = _undirected_case(seed)
    group = tuple(sorted(queries[:3]))
    weighted_pid = sorted(pid for pid, _ in points.items())[0]
    specs = []
    for k in (1, 4):
        specs.append(QuerySpec("topk_influence", k=k, method="eager"))
        specs.append(QuerySpec("topk_influence", k=k, method="lazy", limit=3,
                               weights={weighted_pid: 2.5}))
        specs.append(QuerySpec("topk_influence", k=k, method="eager",
                               bichromatic=True, limit=4))
        specs.append(QuerySpec("aggregate_nn", group=group, k=k, agg="sum"))
        specs.append(QuerySpec("aggregate_nn", group=group, k=k, agg="max"))
        specs.append(QuerySpec("rknn", query=queries[0], k=k,
                               method="eager", within=radius))
        specs.append(QuerySpec("rknn", query=queries[1], k=k, method="lazy",
                               within=radius, exclude=frozenset({delete_pid})))
        specs.append(QuerySpec("bichromatic", query=queries[0], k=k,
                               method="eager", within=radius))
    statements = (
        "SELECT * FROM topk_influence(k=1) LIMIT 3",
        f"SELECT * FROM aggregate_nn(group={list(group)}, k=2, agg='max')",
        f"SELECT * FROM rknn(query={queries[0]}, k=2) "
        f"WHERE distance < {radius}",
    )

    def build(factory):
        db = factory()
        db.attach_reference(reference)
        db.materialize(MATERIALIZE_K)
        db.materialize_reference(MATERIALIZE_K)
        if oracle:
            db.build_oracle(3 + seed % 3, seed=seed)
        return db

    backends = {
        "disk": build(lambda: GraphDatabase(graph, points)),
        "sharded-K1": build(lambda: ShardedDatabase(graph, points,
                                                    num_shards=1)),
        "sharded-K4": build(lambda: ShardedDatabase(graph, points,
                                                    num_shards=4)),
        "compact": build(lambda: CompactDatabase(graph, points)),
    }

    def answers_of(db):
        outcome = db.engine().run_batch(specs)
        spec_answers = [
            result.points if hasattr(result, "points") else result.neighbors
            for result in outcome.results
        ]
        text_answers = [
            result.points if hasattr(result, "points") else result.neighbors
            for result in db.query(list(statements))
        ]
        return spec_answers + text_answers

    baseline = answers_of(backends["disk"])
    for name, db in backends.items():
        if name == "disk":
            continue
        assert answers_of(db) == baseline, (
            f"seed={seed}: backend {name!r} diverges on the group kinds "
            f"(reproduce with tests/conformance -k 'seed{seed}')"
        )


@pytest.mark.parametrize("seed", range(6), ids=lambda s: f"seed{s}")
def test_engine_batches_agree_across_backends(seed):
    """The batch engine returns identical answers on every backend,
    sequentially and with a worker pool."""
    from repro import QuerySpec

    (graph, points, _, queries, _, _, _, radius) = _undirected_case(seed)
    specs = []
    for query in queries:
        specs.append(QuerySpec("rknn", query=query, k=2, method="eager"))
        specs.append(QuerySpec("rknn", query=query, k=1, method="lazy"))
        specs.append(QuerySpec("knn", query=query, k=2))
        specs.append(QuerySpec("range", query=query, k=2, radius=radius))
    backends = {
        "disk": GraphDatabase(graph, points),
        "sharded-K4": ShardedDatabase(graph, points, num_shards=4),
        "compact": CompactDatabase(graph, points),
    }

    def answers_of(outcome):
        return [
            result.points if hasattr(result, "points") else result.neighbors
            for result in outcome.results
        ]

    baseline = answers_of(backends["disk"].engine().run_batch(specs))
    for name, db in backends.items():
        for workers in (1, 3):
            outcome = db.engine().run_batch(specs, workers=workers)
            assert answers_of(outcome) == baseline, (
                f"seed={seed}: engine over {name!r} with workers={workers} "
                f"diverges (reproduce with tests/conformance -k 'seed{seed}')"
            )
