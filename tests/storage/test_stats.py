"""Unit tests for cost tracking and the 10 ms/I-O cost model."""

import time

from repro.storage.stats import CostModel, CostTracker, QueryCost


class TestCostTracker:
    def test_snapshot_is_independent(self):
        tracker = CostTracker()
        tracker.page_reads = 5
        snap = tracker.snapshot()
        tracker.page_reads = 9
        assert snap.page_reads == 5

    def test_diff_subtracts_every_counter(self):
        tracker = CostTracker()
        before = tracker.snapshot()
        tracker.page_reads += 3
        tracker.page_writes += 1
        tracker.buffer_hits += 7
        tracker.nodes_visited += 11
        tracker.heap_pushes += 2
        tracker.heap_pops += 2
        tracker.range_nn_calls += 1
        tracker.verifications += 4
        diff = tracker.diff(before)
        assert diff.page_reads == 3
        assert diff.page_writes == 1
        assert diff.buffer_hits == 7
        assert diff.nodes_visited == 11
        assert diff.heap_pushes == 2
        assert diff.heap_pops == 2
        assert diff.range_nn_calls == 1
        assert diff.verifications == 4

    def test_io_operations_property(self):
        tracker = CostTracker(page_reads=4, page_writes=2)
        assert tracker.io_operations == 6
        assert tracker.logical_reads == 4

    def test_time_block_accumulates(self):
        tracker = CostTracker()
        with tracker.time_block():
            time.sleep(0.01)
        assert tracker.cpu_seconds >= 0.005

    def test_reset(self):
        tracker = CostTracker(page_reads=5, cpu_seconds=1.0)
        tracker.reset()
        assert tracker.page_reads == 0
        assert tracker.cpu_seconds == 0.0


class TestCostModel:
    def test_default_penalty_is_ten_ms(self):
        counters = CostTracker(page_reads=10, cpu_seconds=0.5)
        assert CostModel().total_seconds(counters) == 0.5 + 10 * 0.010

    def test_writes_charged_by_default(self):
        counters = CostTracker(page_reads=1, page_writes=2)
        assert CostModel().total_seconds(counters) == 3 * 0.010

    def test_writes_optional(self):
        counters = CostTracker(page_reads=1, page_writes=2)
        model = CostModel(charge_writes=False)
        assert model.total_seconds(counters) == 0.010

    def test_query_cost_wrapper(self):
        counters = CostTracker(page_reads=2, cpu_seconds=0.1)
        cost = QueryCost(io=2, cpu_seconds=0.1, counters=counters)
        assert cost.total_seconds() == 0.1 + 0.02
