"""Tests for the paged directed-network store."""

import random

import pytest

from repro.errors import StorageError
from repro.graph.digraph import DiGraph
from repro.storage.buffer import BufferManager
from repro.storage.disk_directed import DiskDiGraph, weak_bfs_order
from repro.storage.stats import CostTracker


def make_digraph(arcs, num_nodes=None):
    return DiGraph.from_arcs(arcs, num_nodes=num_nodes)


def make_store(graph, buffer_pages=16, **kwargs):
    tracker = CostTracker()
    buffer = BufferManager(buffer_pages, tracker)
    return DiskDiGraph(graph, buffer, **kwargs), tracker


class TestWeakBfsOrder:
    def test_is_a_permutation(self):
        graph = make_digraph([(0, 1, 1.0), (2, 1, 1.0), (3, 4, 1.0)], 5)
        order = weak_bfs_order(graph)
        assert sorted(order) == list(range(5))

    def test_crosses_arc_directions(self):
        # 0 -> 1 <- 2: node 2 is only reachable against arc direction
        graph = make_digraph([(0, 1, 1.0), (2, 1, 1.0)], 3)
        order = weak_bfs_order(graph, seed=0)
        assert order.index(2) <= 2  # found through the weak adjacency

    def test_covers_disconnected_components(self):
        graph = make_digraph([(0, 1, 1.0), (2, 3, 1.0)], 4)
        assert sorted(weak_bfs_order(graph)) == [0, 1, 2, 3]


class TestDiskDiGraph:
    def test_round_trips_both_directions(self):
        rng = random.Random(3)
        arcs = []
        seen = set()
        for _ in range(60):
            u, v = rng.sample(range(20), 2)
            if (u, v) not in seen:
                seen.add((u, v))
                arcs.append((u, v, float(rng.randint(1, 9))))
        graph = make_digraph(arcs, 20)
        store, _ = make_store(graph)
        for node in range(20):
            assert sorted(store.out_neighbors(node)) == sorted(
                graph.out_neighbors(node)
            )
            assert sorted(store.in_neighbors(node)) == sorted(
                graph.in_neighbors(node)
            )

    def test_reads_are_charged(self):
        graph = make_digraph([(0, 1, 1.0), (1, 2, 1.0)], 3)
        store, tracker = make_store(graph, buffer_pages=1)
        store.out_neighbors(0)
        store.in_neighbors(2)
        assert tracker.logical_reads >= 2

    def test_forward_and_backward_are_separate_files(self):
        graph = make_digraph([(0, 1, 1.0)], 2)
        store, _ = make_store(graph)
        assert store.out_neighbors(0) == ((1, 1.0),)
        assert store.in_neighbors(0) == ()
        assert store.out_neighbors(1) == ()
        assert store.in_neighbors(1) == ((0, 1.0),)

    def test_out_of_range_node_rejected(self):
        graph = make_digraph([(0, 1, 1.0)], 2)
        store, _ = make_store(graph)
        with pytest.raises(StorageError):
            store.out_neighbors(2)
        with pytest.raises(StorageError):
            store.in_neighbors(-1)

    def test_bad_order_rejected(self):
        graph = make_digraph([(0, 1, 1.0)], 2)
        tracker = CostTracker()
        buffer = BufferManager(4, tracker)
        with pytest.raises(StorageError):
            DiskDiGraph(graph, buffer, order=[0, 0])

    def test_num_pages_counts_both_directions(self):
        graph = make_digraph([(0, 1, 1.0), (1, 0, 2.0)], 2)
        store, _ = make_store(graph)
        assert store.num_pages >= 2
