"""Unit tests for the disk-resident stores."""

import pytest

from repro.errors import StorageError
from repro.graph.graph import Graph
from repro.points.points import EdgePointSet
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskGraph, EdgePointStore, KnnListStore
from repro.storage.stats import CostTracker


@pytest.fixture
def graph():
    return Graph(5, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0), (3, 4, 4.0), (0, 4, 9.0)])


@pytest.fixture
def tracker():
    return CostTracker()


@pytest.fixture
def buffer(tracker):
    return BufferManager(8, tracker)


class TestDiskGraph:
    def test_neighbors_match_graph(self, graph, buffer):
        disk = DiskGraph(graph, buffer)
        for node in graph.nodes():
            assert sorted(disk.neighbors(node)) == sorted(graph.neighbors(node))

    def test_reads_are_charged(self, graph, buffer, tracker):
        disk = DiskGraph(graph, buffer)
        disk.neighbors(0)
        assert tracker.page_reads >= 1

    def test_repeated_read_hits_buffer(self, graph, buffer, tracker):
        disk = DiskGraph(graph, buffer)
        disk.neighbors(0)
        reads = tracker.page_reads
        disk.neighbors(0)
        assert tracker.page_reads == reads
        assert tracker.buffer_hits >= 1

    def test_point_flags_stored(self, graph, buffer):
        disk = DiskGraph(graph, buffer, point_nodes=frozenset({2}))
        page = disk._load_page(disk.page_of(2))
        assert page[2].has_point is True
        assert page[3].has_point is False if 3 in page else True

    def test_small_graph_fits_one_page(self, graph, buffer):
        disk = DiskGraph(graph, buffer)
        assert disk.num_pages == 1

    def test_many_pages_with_tiny_page_size(self, graph, buffer):
        disk = DiskGraph(graph, buffer, page_size=64)
        assert disk.num_pages > 1
        # every node still readable
        for node in graph.nodes():
            assert sorted(disk.neighbors(node)) == sorted(graph.neighbors(node))

    def test_out_of_range_node_rejected(self, graph, buffer):
        disk = DiskGraph(graph, buffer)
        with pytest.raises(StorageError):
            disk.neighbors(99)

    def test_locality_of_bfs_packing(self, buffer):
        # a long path packed in BFS order keeps adjacent nodes together
        n = 200
        path = Graph(n, [(i, i + 1, 1.0) for i in range(n - 1)])
        disk = DiskGraph(path, buffer, page_size=256)
        jumps = sum(
            1
            for i in range(n - 1)
            if disk.page_of(i) != disk.page_of(i + 1)
        )
        assert jumps == disk.num_pages - 1  # consecutive nodes share pages


class TestEdgePointStore:
    def test_points_round_trip(self, graph, buffer):
        points = EdgePointSet({10: (0, 1, 0.5), 11: (0, 1, 1.5), 12: (2, 3, 0.25)})
        store = EdgePointStore(graph, points, buffer)
        assert store.points_on(0, 1) == ((10, 0.5), (11, 1.5))
        assert store.points_on(1, 0) == ((10, 0.5), (11, 1.5))  # either order
        assert store.points_on(2, 3) == ((12, 0.25),)

    def test_empty_edge_is_free(self, graph, buffer, tracker):
        points = EdgePointSet({10: (0, 1, 0.5)})
        store = EdgePointStore(graph, points, buffer)
        before = tracker.page_reads
        assert store.points_on(3, 4) == ()
        assert tracker.page_reads == before  # index-only look-up

    def test_insert_point(self, graph, buffer):
        points = EdgePointSet({10: (0, 1, 0.5)})
        store = EdgePointStore(graph, points, buffer)
        store.insert_point(11, 0, 1, 1.0)
        assert store.points_on(0, 1) == ((10, 0.5), (11, 1.0))

    def test_insert_on_fresh_edge(self, graph, buffer):
        store = EdgePointStore(graph, EdgePointSet({}), buffer)
        store.insert_point(5, 2, 3, 0.75)
        assert store.points_on(2, 3) == ((5, 0.75),)

    def test_delete_point(self, graph, buffer):
        points = EdgePointSet({10: (0, 1, 0.5), 11: (0, 1, 1.5)})
        store = EdgePointStore(graph, points, buffer)
        store.delete_point(10, 0, 1)
        assert store.points_on(0, 1) == ((11, 1.5),)

    def test_delete_last_point_clears_edge(self, graph, buffer):
        points = EdgePointSet({10: (0, 1, 0.5)})
        store = EdgePointStore(graph, points, buffer)
        store.delete_point(10, 0, 1)
        assert store.points_on(0, 1) == ()

    def test_delete_missing_point_rejected(self, graph, buffer):
        store = EdgePointStore(graph, EdgePointSet({10: (0, 1, 0.5)}), buffer)
        with pytest.raises(StorageError):
            store.delete_point(99, 0, 1)

    def test_writes_are_charged(self, graph, buffer, tracker):
        store = EdgePointStore(graph, EdgePointSet({10: (0, 1, 0.5)}), buffer)
        before = tracker.page_writes
        store.insert_point(11, 0, 1, 1.0)
        assert tracker.page_writes > before

    def test_offset_outside_edge_rejected(self, graph, buffer):
        store = EdgePointStore(graph, EdgePointSet({}), buffer)
        with pytest.raises(StorageError):
            store.insert_point(5, 0, 1, 100.0)


class TestKnnListStore:
    def test_round_trip(self, buffer):
        lists = {0: [(7, 1.0), (8, 2.0)], 2: [(9, 0.0)]}
        store = KnnListStore(3, 2, lists, buffer)
        assert store.get(0) == ((7, 1.0), (8, 2.0))
        assert store.get(1) == ()
        assert store.get(2) == ((9, 0.0),)

    def test_put_rewrites_in_place(self, buffer):
        store = KnnListStore(3, 2, {}, buffer)
        store.put(1, [(5, 3.0)])
        assert store.get(1) == ((5, 3.0),)
        store.put(1, [(5, 3.0), (6, 4.0)])
        assert store.get(1) == ((5, 3.0), (6, 4.0))

    def test_put_beyond_capacity_rejected(self, buffer):
        store = KnnListStore(2, 1, {}, buffer)
        with pytest.raises(StorageError):
            store.put(0, [(1, 1.0), (2, 2.0)])

    def test_reads_and_writes_charged(self, buffer, tracker):
        store = KnnListStore(4, 2, {0: [(7, 1.0)]}, buffer)
        store.get(0)
        assert tracker.page_reads >= 1
        store.put(0, [(7, 1.0), (8, 2.0)])
        assert tracker.page_writes >= 1

    def test_invalid_capacity_rejected(self, buffer):
        with pytest.raises(StorageError):
            KnnListStore(2, 0, {}, buffer)

    def test_distinct_stores_do_not_alias(self, buffer):
        first = KnnListStore(2, 1, {0: [(1, 1.0)]}, buffer)
        second = KnnListStore(2, 1, {0: [(2, 9.0)]}, buffer)
        assert first.get(0) == ((1, 1.0),)
        assert second.get(0) == ((2, 9.0),)
