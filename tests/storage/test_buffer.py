"""Unit tests for the LRU buffer manager."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferManager
from repro.storage.stats import CostTracker


def loader(value):
    return lambda: value


class TestBufferBasics:
    def test_miss_then_hit(self):
        tracker = CostTracker()
        buffer = BufferManager(4, tracker)
        assert buffer.get("a", loader(1)) == 1
        assert tracker.page_reads == 1
        assert buffer.get("a", loader(99)) == 1  # cached, loader unused
        assert tracker.buffer_hits == 1
        assert tracker.page_reads == 1

    def test_zero_capacity_always_faults(self):
        tracker = CostTracker()
        buffer = BufferManager(0, tracker)
        for _ in range(3):
            assert buffer.get("a", loader(1)) == 1
        assert tracker.page_reads == 3
        assert tracker.buffer_hits == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            BufferManager(-1)

    def test_bad_span_rejected(self):
        buffer = BufferManager(2)
        with pytest.raises(StorageError):
            buffer.get("a", loader(1), span=0)


class TestLruEviction:
    def test_lru_victim_is_least_recent(self):
        tracker = CostTracker()
        buffer = BufferManager(2, tracker)
        buffer.get("a", loader(1))
        buffer.get("b", loader(2))
        buffer.get("a", loader(1))      # touch a: b is now LRU
        buffer.get("c", loader(3))      # evicts b
        reads_before = tracker.page_reads
        buffer.get("a", loader(1))      # still cached
        assert tracker.page_reads == reads_before
        buffer.get("b", loader(2))      # faults again
        assert tracker.page_reads == reads_before + 1

    def test_capacity_respected(self):
        buffer = BufferManager(3)
        for key in range(10):
            buffer.get(key, loader(key))
        assert len(buffer) == 3
        assert buffer.used_slots == 3

    def test_oversized_page_occupies_multiple_slots(self):
        tracker = CostTracker()
        buffer = BufferManager(3, tracker)
        buffer.get("big", loader("B"), span=2)
        assert tracker.page_reads == 2  # charged per physical slot
        assert buffer.used_slots == 2
        buffer.get("a", loader(1))
        assert buffer.used_slots == 3
        buffer.get("b", loader(2))      # must evict something
        assert buffer.used_slots <= 3

    def test_page_larger_than_buffer_not_cached(self):
        tracker = CostTracker()
        buffer = BufferManager(1, tracker)
        buffer.get("huge", loader("H"), span=5)
        assert len(buffer) == 0
        buffer.get("huge", loader("H"), span=5)
        assert tracker.page_reads == 10  # faults both times


class TestInvalidation:
    def test_invalidate_forces_reload(self):
        tracker = CostTracker()
        buffer = BufferManager(4, tracker)
        buffer.get("a", loader(1))
        buffer.invalidate("a")
        assert buffer.get("a", loader(2)) == 2
        assert tracker.page_reads == 2

    def test_put_installs_without_read(self):
        tracker = CostTracker()
        buffer = BufferManager(4, tracker)
        buffer.put("a", 42)
        assert tracker.page_reads == 0
        assert buffer.get("a", loader(0)) == 42
        assert tracker.buffer_hits == 1

    def test_clear_empties_buffer(self):
        buffer = BufferManager(4)
        buffer.get("a", loader(1))
        buffer.get("b", loader(2))
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.used_slots == 0
