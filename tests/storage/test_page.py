"""Unit tests for page record serialization."""

import pytest

from repro.errors import StorageError
from repro.storage.page import (
    AdjacencyRecord,
    EdgePointRecord,
    KnnRecord,
    adjacency_record_size,
    decode_adjacency_page,
    decode_edge_point_page,
    decode_knn_page,
    edge_record_size,
    encode_adjacency_page,
    encode_edge_point_page,
    encode_knn_page,
    knn_record_size,
    pack_records,
)


class TestAdjacencyPages:
    def test_round_trip_single_record(self):
        record = AdjacencyRecord(7, True, ((1, 2.5), (3, 0.25)))
        decoded = decode_adjacency_page(encode_adjacency_page([record]))
        assert decoded == [record]

    def test_round_trip_multiple_records(self):
        records = [
            AdjacencyRecord(0, False, ((1, 1.0),)),
            AdjacencyRecord(1, True, ((0, 1.0), (2, 7.0))),
            AdjacencyRecord(2, False, ()),
        ]
        assert decode_adjacency_page(encode_adjacency_page(records)) == records

    def test_empty_page(self):
        assert decode_adjacency_page(encode_adjacency_page([])) == []

    def test_size_formula_matches_encoding(self):
        record = AdjacencyRecord(9, False, tuple((i, 1.0) for i in range(5)))
        payload = encode_adjacency_page([record])
        # page header (2 bytes) + the record itself
        assert len(payload) == 2 + adjacency_record_size(5)

    def test_weights_survive_exactly(self):
        record = AdjacencyRecord(0, False, ((1, 0.1 + 0.2),))
        (decoded,) = decode_adjacency_page(encode_adjacency_page([record]))
        assert decoded.neighbors[0][1] == 0.1 + 0.2


class TestEdgePointPages:
    def test_round_trip(self):
        records = [
            EdgePointRecord(0, 1, ((5, 0.5), (6, 2.5))),
            EdgePointRecord(1, 2, ()),
        ]
        assert decode_edge_point_page(encode_edge_point_page(records)) == records

    def test_size_formula(self):
        record = EdgePointRecord(3, 4, ((1, 1.0), (2, 2.0), (3, 3.0)))
        payload = encode_edge_point_page([record])
        assert len(payload) == 2 + edge_record_size(3)


class TestKnnPages:
    def test_round_trip_with_padding(self):
        records = [
            KnnRecord(0, ((9, 1.5),), capacity=3),
            KnnRecord(1, ((9, 0.5), (8, 2.5), (7, 3.5)), capacity=3),
            KnnRecord(2, (), capacity=3),
        ]
        decoded = decode_knn_page(encode_knn_page(records), capacity=3)
        assert decoded == records

    def test_fixed_record_size(self):
        payloads = [
            encode_knn_page([KnnRecord(0, entries, capacity=4)])
            for entries in ((), ((1, 1.0),), ((1, 1.0), (2, 2.0)))
        ]
        assert len({len(p) for p in payloads}) == 1
        assert len(payloads[0]) == 2 + knn_record_size(4)

    def test_overfull_record_rejected(self):
        with pytest.raises(StorageError):
            encode_knn_page([KnnRecord(0, ((1, 1.0), (2, 2.0)), capacity=1)])


class TestPackRecords:
    def test_groups_respect_page_size(self):
        pages = pack_records([30, 30, 30, 30], page_size=70)
        assert pages == [[0, 1], [2, 3]]

    def test_oversized_record_gets_own_page(self):
        pages = pack_records([10, 500, 10], page_size=100)
        assert pages == [[0], [1], [2]]

    def test_single_page_when_everything_fits(self):
        assert pack_records([10, 10, 10], page_size=4096) == [[0, 1, 2]]

    def test_preserves_order(self):
        pages = pack_records([40, 40, 40, 40, 40], page_size=100)
        flattened = [i for page in pages for i in page]
        assert flattened == [0, 1, 2, 3, 4]

    def test_non_positive_size_rejected(self):
        with pytest.raises(StorageError):
            pack_records([10, 0, 10])
