"""Every example script must run to completion.

``tests/test_docs.py`` compiles the examples and runs the quickstart;
this suite goes further and *executes* every ``examples/*.py`` in a
fresh subprocess (the same way a reader would), failing on a non-zero
exit and requiring at least some output.  Marked ``slow``: the full
sweep costs tens of seconds, so CI runs it on the full-matrix job.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))

def test_examples_are_discovered():
    assert len(EXAMPLES) >= 12


@pytest.mark.fast
def test_no_bytecode_directories_committed():
    """No ``__pycache__`` directory or ``.pyc`` file may be tracked.

    ``examples/__pycache__/`` kept reappearing in working trees; the
    ignore rules cover it, but a force-add (or a rule regression)
    would silently commit interpreter bytecode.  Guard the whole tree
    by asking git for its tracked paths.
    """
    proc = subprocess.run(
        ["git", "ls-files"], capture_output=True, text=True, cwd=str(ROOT)
    )
    if proc.returncode != 0:
        pytest.skip("not a git checkout")
    offenders = [
        path for path in proc.stdout.splitlines()
        if "__pycache__" in path or path.endswith((".pyc", ".pyo"))
    ]
    assert not offenders, f"bytecode committed to the repo: {offenders}"


@pytest.mark.fast
def test_gitignore_covers_bytecode_everywhere():
    """The ignore rules must match ``__pycache__`` at any depth."""
    rules = (ROOT / ".gitignore").read_text().splitlines()
    assert "__pycache__/" in rules  # unanchored: applies to every directory
    assert "*.pyc" in rules


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_to_completion(script):
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(ROOT),
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited with {proc.returncode}:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
