"""Every example script must run to completion.

``tests/test_docs.py`` compiles the examples and runs the quickstart;
this suite goes further and *executes* every ``examples/*.py`` in a
fresh subprocess (the same way a reader would), failing on a non-zero
exit and requiring at least some output.  Marked ``slow``: the full
sweep costs tens of seconds, so CI runs it on the full-matrix job.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))

pytestmark = pytest.mark.slow


def test_examples_are_discovered():
    assert len(EXAMPLES) >= 12


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_to_completion(script):
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(ROOT),
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited with {proc.returncode}:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
