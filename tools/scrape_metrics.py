"""CI scrape step: validate a live server's observability surfaces.

Given a running server's address, the script

1. fetches HTTP ``GET /metrics`` (JSON) and checks the payload shape,
2. fetches ``GET /metrics?format=prometheus`` and validates the text
   exposition with the repo's own parser
   (:func:`repro.obs.metrics.parse_prometheus_text` -- no external
   ``promtool`` needed), and
3. runs one ``EXPLAIN`` statement over the protocol and writes the
   full response (plan + executed span tree) to ``--trace-out``, which
   the workflow uploads as an artifact.

Any missing sample, malformed exposition line or failed EXPLAIN exits
non-zero, failing the build::

    PYTHONPATH=src python tools/scrape_metrics.py \\
        --address 127.0.0.1:8750 --trace-out explain_trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import parse_prometheus_text, render_trace  # noqa: E402
from repro.serve.client import ServeClient, http_get, http_get_text  # noqa: E402

#: Samples every server must expose, whatever its mode.
REQUIRED_SAMPLES = (
    "repro_queries_served_total",
    "repro_mutations_applied_total",
    "repro_admission_admitted_total",
    "repro_batch_seconds_count",
    'repro_batch_seconds_bucket{le="+Inf"}',
)

#: The statement whose trace the workflow archives.
EXPLAIN_STATEMENT = "EXPLAIN SELECT * FROM rknn(query=17, k=2)"


def scrape(host: str, port: int, trace_out: str | None) -> int:
    """Validate one server's /metrics surfaces; return failure count."""
    failures = 0

    body = http_get(host, port, "/metrics")
    for key in ("backend", "queries_served", "latency"):
        if key not in body:
            print(f"FAIL  JSON /metrics missing {key!r}")
            failures += 1
    print(f"ok    JSON /metrics: backend={body.get('backend')} "
          f"mode={body.get('mode', 'single')} "
          f"queries_served={body.get('queries_served')}")

    text = http_get_text(host, port, "/metrics?format=prometheus")
    try:
        samples = parse_prometheus_text(text)
    except ValueError as exc:
        print(f"FAIL  prometheus exposition does not parse: {exc}")
        return failures + 1
    print(f"ok    prometheus exposition parses: {len(samples)} samples")
    for name in REQUIRED_SAMPLES:
        if name not in samples:
            print(f"FAIL  exposition missing sample {name!r}")
            failures += 1
    inf = samples.get('repro_batch_seconds_bucket{le="+Inf"}')
    count = samples.get("repro_batch_seconds_count")
    if inf != count:
        print(f"FAIL  +Inf bucket ({inf}) != histogram count ({count})")
        failures += 1

    with ServeClient(host, port) as client:
        response = client.request({"op": "query",
                                   "statement": EXPLAIN_STATEMENT})
    if response.get("status") != "ok" or not response.get("explain"):
        print(f"FAIL  EXPLAIN did not answer with a plan: {response}")
        failures += 1
    else:
        spans = response["trace"]["spans"]
        print(f"ok    EXPLAIN answered: {len(spans)} spans, "
              f"method={response['plan']['method']}")
        for line in render_trace(response["trace"]):
            print(f"      {line}")
        if trace_out:
            Path(trace_out).write_text(
                json.dumps(response, indent=2, sort_keys=True) + "\n"
            )
            print(f"ok    wrote EXPLAIN trace to {trace_out}")
    return failures


def main(argv=None) -> int:
    """CLI entry point (see module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--address", required=True, metavar="HOST:PORT",
                        help="running server, e.g. 127.0.0.1:8750")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the captured EXPLAIN response here")
    args = parser.parse_args(argv)
    host, _, port = args.address.rpartition(":")
    failures = scrape(host, int(port), args.trace_out)
    if failures:
        print(f"{failures} scrape failure(s)")
        return 1
    print("metrics scrape clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
