#!/usr/bin/env python3
"""Fail when a public API surface is missing docstrings.

A dependency-free stand-in for ``interrogate``/``pydocstyle`` that CI
and the test suite can both run: walks the given files/directories and
requires a docstring on

* every module,
* every public class (name not starting with ``_``), and
* every public function/method, including properties and classmethods
  (dunder methods and ``_private`` names are exempt, as are nested
  functions).

Usage::

    python tools/check_docstrings.py src/repro/api.py src/repro/shard

Exit status 0 when everything is documented; 1 with a per-symbol
report otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _walk_module(path: Path) -> list[str]:
    """Return the undocumented public symbols of one python file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    missing: list[str] = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{path}: module")
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                missing.append(f"{path}: class {node.name}")
            for member in node.body:
                if (isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and _is_public(member.name)
                        and ast.get_docstring(member) is None):
                    missing.append(
                        f"{path}: method {node.name}.{member.name} "
                        f"(line {member.lineno})"
                    )
        elif (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
              and _is_public(node.name)
              and ast.get_docstring(node) is None):
            missing.append(f"{path}: function {node.name} (line {node.lineno})")
    return missing


def collect_files(targets: list[str]) -> list[Path]:
    """Expand file and directory arguments into python files."""
    files: list[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise SystemExit(f"not a python file or directory: {target}")
    return files


def main(argv: list[str]) -> int:
    """Check every target; print missing symbols; return an exit code."""
    if not argv:
        print("usage: check_docstrings.py FILE_OR_DIR [...]", file=sys.stderr)
        return 2
    missing: list[str] = []
    files = collect_files(argv)
    for path in files:
        missing.extend(_walk_module(path))
    if missing:
        print(f"{len(missing)} public symbol(s) missing docstrings:")
        for entry in missing:
            print(f"  {entry}")
        return 1
    print(f"docstring coverage OK: {len(files)} file(s), "
          "every public symbol documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
