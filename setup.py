"""Legacy setuptools shim.

The execution environment has no `wheel` package and no network, so
PEP 660 editable installs (which need bdist_wheel) are unavailable;
this shim lets `pip install -e .` fall back to `setup.py develop`.
Project metadata lives in pyproject.toml / setup.cfg.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reverse nearest neighbor (RkNN) query processing in large graphs "
        "(reproduction of Yiu, Papadias, Mamoulis, Tao; ICDE 2005 / TKDE 2006)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
